//! The posterior-inference contract, differentially tested.
//!
//! * **Marginals**: `Engine::marginals` (one backward sweep) must agree —
//!   within 1e-9 — with per-fact conditioned WMC on all four
//!   representations (TID, pc-, pcc-instances, PrXML).
//! * **Sampling**: seeded empirical frequencies must converge to the exact
//!   marginals, and every sampled world must satisfy the query lineage.
//! * **MPE**: the most-probable-world weight must equal the maximum over
//!   exhaustively enumerated worlds on small instances.
//! * All of it must also hold on circuits patched by `rewire_inputs` /
//!   `extend_or` (the incremental-update paths re-derive the plan).

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use stuc::circuit::builder;
use stuc::circuit::circuit::VarId;
use stuc::circuit::compiled::CompiledCircuit;
use stuc::circuit::weights::Weights;
use stuc::core::workloads;
use stuc::graph::elimination::EliminationHeuristic;
use stuc::infer::{self, World};
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{Engine, Representation, StucError};

const BUDGET: usize = 22;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// Reference posterior by conditioned WMC: `p(v) * P(φ | v:=1) / P(φ)`,
/// computed through the engine's re-weighting path (one counting sweep per
/// fact — exactly what the backward sweep replaces).
fn conditioned_marginal<R: Representation + ?Sized>(
    engine: &Engine,
    representation: &R,
    query: &R::Query,
    weights: &Weights,
    evidence: f64,
    v: VarId,
) -> f64 {
    let prior = weights.weight(v, true).unwrap();
    if prior == 0.0 {
        return 0.0;
    }
    let mut fixed = weights.clone();
    fixed.fix(v, true);
    let conditioned = engine
        .reevaluate_with_weights(representation, query, &fixed)
        .unwrap()
        .probability;
    prior * conditioned / evidence
}

/// Asserts the all-fact marginals of `(representation, query)` against the
/// per-fact conditioned reference, covering every weighted variable.
fn assert_marginals_agree<R: Representation + ?Sized>(
    engine: &Engine,
    representation: &R,
    query: &R::Query,
) -> Result<(), TestCaseError> {
    let weights = representation.weights().unwrap();
    let marginals = match engine.marginals(representation, query) {
        Ok(marginals) => marginals,
        Err(StucError::Infer(infer::InferError::ImpossibleEvidence)) => {
            let p = engine.evaluate(representation, query).unwrap().probability;
            prop_assert!(close(p, 0.0), "refused only for zero evidence, got {p}");
            return Ok(());
        }
        Err(other) => panic!("{other}"),
    };
    let evidence = engine.evaluate(representation, query).unwrap().probability;
    prop_assert!(close(marginals.evidence_probability, evidence));
    for (v, prior) in weights.iter() {
        let reference = conditioned_marginal(engine, representation, query, &weights, evidence, v);
        let got = marginals.get(v).expect("every weighted variable covered");
        prop_assert!(
            close(got, reference),
            "{v}: backward sweep {got} vs conditioned {reference} (prior {prior})"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TID instances: one backward sweep equals n conditioned sweeps.
    #[test]
    fn tid_marginals_agree_with_conditioned_wmc(n in 3usize..9, p in 0.2f64..0.8, seed in 0u64..500) {
        let tid = workloads::path_tid(n, p, seed);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        assert_marginals_agree(&Engine::new(), &tid, &query)?;
    }

    /// pc-instances (annotated events): same contract.
    #[test]
    fn pc_marginals_agree_with_conditioned_wmc(n in 3usize..8, seed in 0u64..500) {
        let pc = workloads::path_tid(n, 0.5, seed).to_pc_instance();
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        assert_marginals_agree(&Engine::new(), &pc, &query)?;
    }

    /// pcc-instances (shared annotation circuit, Theorem 2): same contract.
    #[test]
    fn pcc_marginals_agree_with_conditioned_wmc(
        claims in 2usize..5,
        contributors in 1usize..3,
        seed in 0u64..500,
    ) {
        let pcc = workloads::contributor_pcc(claims, contributors, 0.8, 0.6, seed);
        let query = ConjunctiveQuery::parse("Claim(x, y), Claim(x, z)").unwrap();
        assert_marginals_agree(&Engine::new(), &pcc, &query)?;
    }

    /// PrXML documents: same contract on the presence-circuit events.
    #[test]
    fn prxml_marginals_agree_with_conditioned_wmc(seed in 0u64..4) {
        let doc = PrXmlDocument::figure1_example();
        let query = match seed % 2 {
            0 => PrxmlQuery::LabelExists("musician".into()),
            _ => PrxmlQuery::LabelExists("surname".into()),
        };
        assert_marginals_agree(&Engine::new(), &doc, &query)?;
    }

    /// Sampling: seeded empirical frequencies converge to the exact
    /// marginals, and every draw satisfies the lineage.
    #[test]
    fn sampler_frequencies_converge_to_exact_marginals(n in 3usize..7, seed in 0u64..200) {
        let tid = workloads::path_tid(n, 0.5, seed);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        let marginals = engine.marginals(&tid, &query).unwrap();
        let lineage = engine.lineage(&tid, &query).unwrap();
        let draws = 4000;
        let sampled = engine.sample_worlds(&tid, &query, draws, seed ^ 0xBEEF).unwrap();
        prop_assert_eq!(sampled.worlds.len(), draws);
        let mut hits: BTreeMap<VarId, usize> = BTreeMap::new();
        for world in &sampled.worlds {
            prop_assert!(world.satisfies(&lineage).unwrap(), "sampled world must satisfy the query");
            for v in world.present() {
                *hits.entry(v).or_insert(0) += 1;
            }
        }
        for (v, exact) in marginals.iter() {
            let frequency = *hits.get(&v).unwrap_or(&0) as f64 / draws as f64;
            // 4000 exact i.i.d. draws: 5 sigma of a Bernoulli(1/2) is ~0.04.
            prop_assert!(
                (frequency - exact).abs() < 0.05,
                "{v}: empirical {frequency} vs exact {exact}"
            );
        }
        // Replaying the seed replays the worlds.
        let replay = engine.sample_worlds(&tid, &query, draws, seed ^ 0xBEEF).unwrap();
        prop_assert_eq!(&sampled.worlds, &replay.worlds);
    }

    /// MPE equals the maximum over exhaustively enumerated worlds.
    #[test]
    fn mpe_weight_equals_enumerated_maximum(n in 3usize..7, seed in 0u64..300) {
        let tid = workloads::path_tid(n, 0.4, seed);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        let mpe = engine.most_probable_world(&tid, &query).unwrap();
        let lineage = engine.lineage(&tid, &query).unwrap();
        let weights = tid.fact_weights();
        let vars: Vec<VarId> = weights.iter().map(|(v, _)| v).collect();
        let mut best = 0.0f64;
        for mask in 0u64..(1 << vars.len()) {
            let world = World::from_values(
                vars.iter().enumerate().map(|(i, &v)| (v, (mask >> i) & 1 == 1)),
            );
            if world.satisfies(&lineage).unwrap() {
                best = best.max(world.probability(&weights).unwrap());
            }
        }
        prop_assert!(close(mpe.probability, best), "{} vs {best}", mpe.probability);
        prop_assert!(mpe.world.satisfies(&lineage).unwrap());
        prop_assert!(close(mpe.world.probability(&weights).unwrap(), mpe.probability));
    }

    /// All three inference modes stay correct on circuits patched by
    /// `rewire_inputs` (deletion path): the re-derived plan serves
    /// marginals, sampling and MPE against enumeration ground truth.
    #[test]
    fn inference_agrees_on_rewired_circuits(
        vars in 3usize..7,
        internal in 3usize..12,
        seed in 0u64..300,
        pin_stride in 2usize..4,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let compiled = CompiledCircuit::compile(
            Arc::new(circuit.clone()),
            EliminationHeuristic::MinDegree,
        ).unwrap();
        let _ = compiled.width(); // force the decomposition so the patch carries it

        let all_vars: Vec<VarId> = circuit.variables().into_iter().collect();
        let pins: BTreeSet<VarId> = all_vars
            .iter()
            .enumerate()
            .filter(|(i, _)| i % pin_stride == 0)
            .map(|(_, &v)| v)
            .collect();
        let mut remap: BTreeMap<VarId, VarId> = BTreeMap::new();
        let mut next = 0usize;
        for &v in &all_vars {
            if !pins.contains(&v) {
                remap.insert(v, VarId(next));
                next += 1;
            }
        }
        let (patched, _) = compiled.rewire_inputs(&pins, &remap);
        let weights = Weights::uniform(patched.variables().iter().copied(), 0.45);
        assert_patched_inference_agrees(&patched, &weights)?;
    }

    /// Same on circuits patched by `extend_or` (insertion path).
    #[test]
    fn inference_agrees_on_extended_circuits(
        vars in 2usize..5,
        internal in 2usize..8,
        seed in 0u64..300,
        delta_seed in 0u64..300,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let compiled = CompiledCircuit::compile(
            Arc::new(circuit.clone()),
            EliminationHeuristic::MinDegree,
        ).unwrap();
        let _ = compiled.width();
        let delta = builder::random_circuit(vars + 1, internal.min(5), delta_seed);
        let (patched, _) = match compiled.extend_or(&delta, BUDGET) {
            Ok(result) => result,
            Err(_) => return Ok(()), // repair over budget: rebuild path, not this test
        };
        let weights = Weights::uniform(patched.variables().iter().copied(), 0.35);
        assert_patched_inference_agrees(&patched, &weights)?;
    }
}

/// Ground-truth check of all three inference modes on a compiled (possibly
/// patched) circuit, by enumerating every world of its source lineage.
fn assert_patched_inference_agrees(
    patched: &CompiledCircuit,
    weights: &Weights,
) -> Result<(), TestCaseError> {
    let source = patched.source().as_ref().clone();
    let vars: Vec<VarId> = weights.iter().map(|(v, _)| v).collect();
    prop_assert!(vars.len() <= 16, "enumeration stays small");

    // Enumerate: evidence mass, per-variable numerators, best world.
    let mut evidence = 0.0f64;
    let mut numerators: BTreeMap<VarId, f64> = vars.iter().map(|&v| (v, 0.0)).collect();
    let mut best = 0.0f64;
    for mask in 0u64..(1 << vars.len()) {
        let world = World::from_values(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, (mask >> i) & 1 == 1)),
        );
        if !world.satisfies(&source).unwrap() {
            continue;
        }
        let p = world.probability(weights).unwrap();
        evidence += p;
        best = best.max(p);
        for v in world.present() {
            *numerators.get_mut(&v).unwrap() += p;
        }
    }

    match infer::marginals(patched, weights, BUDGET) {
        Ok(marginals) => {
            prop_assert!(close(marginals.evidence_probability, evidence));
            for (&v, &numerator) in &numerators {
                let got = marginals.get(v).unwrap();
                prop_assert!(
                    close(got, numerator / evidence),
                    "{v}: {got} vs {}",
                    numerator / evidence
                );
            }
        }
        Err(infer::InferError::ImpossibleEvidence) => {
            prop_assert!(close(evidence, 0.0));
            return Ok(());
        }
        Err(other) => panic!("{other}"),
    }

    let mpe = infer::most_probable_world(patched, weights, BUDGET).unwrap();
    prop_assert!(
        close(mpe.probability, best),
        "{} vs {best}",
        mpe.probability
    );
    prop_assert!(mpe.world.satisfies(&source).unwrap());

    let sampled = infer::sample_worlds(patched, weights, BUDGET, 64, 7).unwrap();
    for world in &sampled.worlds {
        prop_assert!(world.satisfies(&source).unwrap());
    }
    Ok(())
}

/// The inference modes share the engine's lineage cache: a query evaluated
/// first (or inferred twice) reports `lineage_cached` on later calls.
#[test]
fn inference_modes_share_the_lineage_cache() {
    let tid = workloads::path_tid(6, 0.5, 3);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    let cold = engine.marginals(&tid, &query).unwrap();
    assert!(!cold.report.lineage_cached, "first call compiles");
    assert_eq!(engine.cached_lineages(), 1);
    let warm = engine.marginals(&tid, &query).unwrap();
    assert!(warm.report.lineage_cached, "second call reuses the lineage");
    let sampled = engine.sample_worlds(&tid, &query, 5, 1).unwrap();
    assert!(sampled.report.lineage_cached, "sampling shares the cache");
    let mpe = engine.most_probable_world(&tid, &query).unwrap();
    assert!(mpe.report.lineage_cached, "MPE shares the cache");
    assert_eq!(engine.cached_lineages(), 1, "still one compiled lineage");
    // Counting also reuses the very same entry.
    let eval = engine.evaluate(&tid, &query).unwrap();
    assert!(eval.lineage_cached);
}

/// A fixed safe-plan engine has no circuit to infer on: all three modes
/// refuse with `BackendUnsupported`.
#[test]
fn fixed_safe_plan_policy_refuses_inference() {
    let tid = workloads::rst_star_tid(4, 0.4, 3);
    let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
    let engine = Engine::builder()
        .backend(stuc::BackendKind::SafePlan)
        .build();
    assert!(matches!(
        engine.marginals(&tid, &query),
        Err(StucError::BackendUnsupported { .. })
    ));
    assert!(matches!(
        engine.sample_worlds(&tid, &query, 1, 0),
        Err(StucError::BackendUnsupported { .. })
    ));
    assert!(matches!(
        engine.most_probable_world(&tid, &query),
        Err(StucError::BackendUnsupported { .. })
    ));
}

/// Impossible evidence (a query that holds in no world) is refused by all
/// three modes rather than dividing by zero.
#[test]
fn impossible_evidence_is_refused_through_the_engine() {
    let tid = workloads::path_tid(4, 0.5, 1);
    let query = ConjunctiveQuery::parse("Missing(x)").unwrap();
    let engine = Engine::new();
    assert!(matches!(
        engine.marginals(&tid, &query),
        Err(StucError::Infer(infer::InferError::ImpossibleEvidence))
    ));
    assert!(matches!(
        engine.sample_worlds(&tid, &query, 10, 0),
        Err(StucError::Infer(infer::InferError::ImpossibleEvidence))
    ));
    assert!(matches!(
        engine.most_probable_world(&tid, &query),
        Err(StucError::Infer(infer::InferError::ImpossibleEvidence))
    ));
}

/// The streaming sampler keeps drawing without the engine and replays its
/// seed deterministically.
#[test]
fn streaming_world_sampler_is_deterministic() {
    let tid = workloads::path_tid(6, 0.5, 9);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    let mut a = engine.world_sampler(&tid, &query, 123).unwrap();
    let mut b = engine.world_sampler(&tid, &query, 123).unwrap();
    assert!(b.report().lineage_cached, "second sampler hits the cache");
    let from_a: Vec<World> = a.sample_many(20);
    let from_b: Vec<World> = (0..20).map(|_| b.sample()).collect();
    assert_eq!(from_a, from_b);
    assert!(a.evidence_probability() > 0.0);
}
