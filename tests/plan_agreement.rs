//! Differential tests for the compiled sweep plan: the dense-table planned
//! sweep, the legacy interpreted HashMap sweep and DPLL must agree (within
//! 1e-9) on random circuits — including zero-weight variables, bags at the
//! width-budget boundary, and circuits patched by `rewire_inputs` /
//! `extend_or` — and `run_many` scenario lanes must equal per-scenario
//! `run` results exactly (bitwise).

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use stuc::circuit::builder;
use stuc::circuit::circuit::{Circuit, VarId};
use stuc::circuit::compiled::CompiledCircuit;
use stuc::circuit::dpll::DpllCounter;
use stuc::circuit::weights::Weights;
use stuc::graph::elimination::EliminationHeuristic;

const BUDGET: usize = 22;

fn compile(circuit: &Circuit) -> CompiledCircuit {
    CompiledCircuit::compile(Arc::new(circuit.clone()), EliminationHeuristic::MinDegree)
        .expect("circuit compiles")
}

/// Weights for every variable of `circuit`: pseudo-random in [0, 1], with
/// every `zero_stride`-th variable pinned to probability 0 (the planned
/// sweep's zero-skipping must not change results).
fn weights_for(circuit: &Circuit, seed: u64, zero_stride: usize) -> Weights {
    let mut weights = Weights::new();
    for (i, v) in circuit.variables().into_iter().enumerate() {
        let p = if zero_stride > 0 && i % zero_stride == 0 {
            0.0
        } else {
            // Cheap deterministic pseudo-randomness, good enough to vary.
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        weights.set(v, p);
    }
    weights
}

fn assert_three_way_agreement(circuit: &Circuit, weights: &Weights) {
    let compiled = compile(circuit);
    let planned = compiled.run(weights, BUDGET).expect("planned sweep runs");
    let interpreted = compiled
        .run_interpreted(weights, BUDGET)
        .expect("interpreted sweep runs");
    let dpll = DpllCounter::default()
        .probability(circuit, weights)
        .expect("dpll runs");
    assert!(
        (planned.probability - interpreted.probability).abs() < 1e-9,
        "planned {} vs interpreted {}",
        planned.probability,
        interpreted.probability
    );
    assert!(
        (planned.probability - dpll).abs() < 1e-9,
        "planned {} vs dpll {dpll}",
        planned.probability
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense plan, interpreted sweep and DPLL agree on random circuits,
    /// including zero-weight variables.
    #[test]
    fn plan_interpreted_and_dpll_agree(
        vars in 2usize..9,
        internal in 2usize..18,
        seed in 0u64..1000,
        zero_stride in 0usize..4,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let weights = weights_for(&circuit, seed ^ 0xa5a5, zero_stride);
        assert_three_way_agreement(&circuit, &weights);
    }

    /// Agreement holds right at the width-budget boundary: a budget of
    /// exactly `width + 1` (the smallest that runs) answers like DPLL, and
    /// one below refuses on both sweep paths.
    #[test]
    fn width_budget_boundary_bags_agree(
        vars in 3usize..8,
        internal in 4usize..16,
        seed in 0u64..500,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let weights = weights_for(&circuit, seed, 0);
        let compiled = compile(&circuit);
        let boundary = compiled.width() + 1;
        let at = compiled.run(&weights, boundary).expect("boundary budget runs");
        let interpreted = compiled
            .run_interpreted(&weights, boundary)
            .expect("boundary budget runs interpreted");
        let dpll = DpllCounter::default().probability(&circuit, &weights).unwrap();
        prop_assert!((at.probability - interpreted.probability).abs() < 1e-9);
        prop_assert!((at.probability - dpll).abs() < 1e-9);
        if boundary > 1 {
            prop_assert!(compiled.run(&weights, boundary - 1).is_err());
            prop_assert!(compiled.run_interpreted(&weights, boundary - 1).is_err());
        }
    }

    /// Circuits patched by `rewire_inputs` (deletion: pin + renumber) keep
    /// the three-way agreement; the plan cell is re-derived for the patched
    /// gates while the decomposition is carried over.
    #[test]
    fn rewired_circuits_agree(
        vars in 3usize..8,
        internal in 3usize..14,
        seed in 0u64..500,
        pin_stride in 2usize..4,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let compiled = compile(&circuit);
        let _ = compiled.width(); // force the decomposition so it is carried over

        let all_vars: Vec<VarId> = circuit.variables().into_iter().collect();
        let pins: BTreeSet<VarId> = all_vars
            .iter()
            .enumerate()
            .filter(|(i, _)| i % pin_stride == 0)
            .map(|(_, &v)| v)
            .collect();
        let mut remap: BTreeMap<VarId, VarId> = BTreeMap::new();
        let mut next = 0usize;
        for &v in &all_vars {
            if !pins.contains(&v) {
                remap.insert(v, VarId(next));
                next += 1;
            }
        }
        let (patched, _) = compiled.rewire_inputs(&pins, &remap);

        let weights = {
            let mut w = Weights::new();
            for (i, &v) in patched.variables().iter().enumerate() {
                w.set(v, 0.1 + 0.8 * (i as f64 % 5.0) / 5.0);
            }
            w
        };
        let planned = patched.run(&weights, BUDGET).expect("patched plan runs");
        let interpreted = patched
            .run_interpreted(&weights, BUDGET)
            .expect("patched interpreted runs");
        let dpll = DpllCounter::default()
            .probability(patched.source(), &weights)
            .expect("dpll on patched source");
        prop_assert!((planned.probability - interpreted.probability).abs() < 1e-9);
        prop_assert!((planned.probability - dpll).abs() < 1e-9);
    }

    /// Circuits patched by `extend_or` (insertion: append the dirty cone,
    /// repair the decomposition) keep the three-way agreement.
    #[test]
    fn extended_circuits_agree(
        vars in 2usize..6,
        internal in 2usize..10,
        seed in 0u64..500,
        delta_seed in 0u64..500,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let compiled = compile(&circuit);
        let _ = compiled.width(); // force the decomposition so the patch repairs it
        let delta = builder::random_circuit(vars + 1, internal.min(6), delta_seed);
        let (patched, _) = match compiled.extend_or(&delta, BUDGET) {
            Ok(result) => result,
            Err(_) => return Ok(()), // repair over budget: fresh-compile fallback path
        };
        let weights = weights_for(patched.source(), seed ^ delta_seed, 3);
        let planned = patched.run(&weights, BUDGET).expect("patched plan runs");
        let interpreted = patched
            .run_interpreted(&weights, BUDGET)
            .expect("patched interpreted runs");
        let dpll = DpllCounter::default()
            .probability(patched.source(), &weights)
            .expect("dpll on patched source");
        prop_assert!((planned.probability - interpreted.probability).abs() < 1e-9);
        prop_assert!((planned.probability - dpll).abs() < 1e-9);
    }

    /// `run_many` scenario lanes are bitwise identical to per-scenario
    /// `run` calls, at any lane count.
    #[test]
    fn run_many_equals_per_scenario_runs_exactly(
        vars in 2usize..8,
        internal in 2usize..14,
        seed in 0u64..500,
        lanes in 1usize..9,
    ) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let compiled = compile(&circuit);
        let scenarios: Vec<Weights> = (0..lanes)
            .map(|k| weights_for(&circuit, seed.wrapping_add(k as u64 * 77), k % 3))
            .collect();
        let many = compiled.run_many(&scenarios, BUDGET).expect("lane sweep runs");
        prop_assert_eq!(many.probabilities.len(), lanes);
        for (weights, &lane) in scenarios.iter().zip(&many.probabilities) {
            let single = compiled.run(weights, BUDGET).expect("single run");
            prop_assert!(
                single.probability.to_bits() == lane.to_bits(),
                "run_many lane {} != run {}",
                lane,
                single.probability
            );
        }
    }
}

/// Steady-state arena reuse is observable through the public report: the
/// first planned run warms the arena, later runs (single and lanes at the
/// same width) allocate nothing.
#[test]
fn steady_state_reports_zero_table_allocations() {
    let circuit = builder::conjunction_of_disjunctions(6, 3);
    let weights = Weights::uniform(circuit.variables(), 0.4);
    let compiled = compile(&circuit);
    let first = compiled.run(&weights, BUDGET).unwrap();
    assert!(first.table_allocations > 0, "first run warms the arena");
    for _ in 0..4 {
        let again = compiled.run(&weights, BUDGET).unwrap();
        assert_eq!(again.table_allocations, 0, "steady state must not allocate");
        assert_eq!(again.probability.to_bits(), first.probability.to_bits());
    }
    let scenarios = vec![weights.clone(), weights.clone(), weights];
    let lanes_first = compiled.run_many(&scenarios, BUDGET).unwrap();
    assert!(lanes_first.table_allocations > 0, "wider lanes regrow once");
    let lanes_again = compiled.run_many(&scenarios, BUDGET).unwrap();
    assert_eq!(lanes_again.table_allocations, 0);
}
