//! The incremental-update contract: `Engine::apply_update` is semantically
//! invisible.
//!
//! For random update sequences on every representation (TID, pc-, pcc-
//! instances, PrXML), applying a delta through the engine and then
//! evaluating must agree — within 1e-9 — with a cold engine evaluating the
//! mutated instance from scratch. This must hold on the patch paths
//! (weights-only rekey, deletion rewiring, insertion extension) *and* on
//! every forced-fallback path (tiny width budgets, opaque structural
//! changes, rebuild-class deltas).

use proptest::prelude::*;
use stuc::core::workloads;
use stuc::data::instance::FactId;
use stuc::data::tid::TidInstance;
use stuc::graph::generators::SplitMix64;
use stuc::incr::{Delta, Updatable};
use stuc::prxml::document::{NodeId, PrXmlDocument};
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{Engine, Representation};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// Evaluates on a fresh engine: no cache, no patching — the ground truth.
fn cold_probability<R: Representation + ?Sized>(representation: &R, query: &R::Query) -> f64 {
    Engine::new()
        .evaluate(representation, query)
        .unwrap()
        .probability
}

/// A random delta over the current TID state: inserts into a small constant
/// domain (so new facts actually join existing ones), deletes and
/// re-weights existing facts.
fn random_tid_delta(rng: &mut SplitMix64, tid: &TidInstance) -> Delta {
    let mut delta = Delta::new();
    for _ in 0..1 + rng.next_below(3) {
        match rng.next_below(3) {
            0 => {
                let a = format!("c{}", rng.next_below(8));
                let b = format!("c{}", rng.next_below(8));
                let p = 0.05 + 0.9 * rng.next_f64();
                delta = delta.insert("R", &[&a, &b], p);
            }
            1 if tid.fact_count() > 1 => {
                delta = delta.delete(FactId(rng.next_below(tid.fact_count())));
            }
            _ if tid.fact_count() > 0 => {
                let p = 0.05 + 0.9 * rng.next_f64();
                delta = delta.set_probability(FactId(rng.next_below(tid.fact_count())), p);
            }
            _ => {}
        }
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// TID: random update sequences through a warm engine agree with cold
    /// evaluation after every step, on both the circuit path (self-join)
    /// and the safe-plan path (hierarchical query).
    #[test]
    fn tid_updates_agree_with_cold_evaluation(n in 3usize..9, p in 0.2f64..0.8, seed in 0u64..500) {
        let mut live = workloads::path_tid(n, p, seed);
        let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let single = ConjunctiveQuery::parse("R(x, y)").unwrap();
        let engine = Engine::new();
        engine.evaluate(&live, &chain).unwrap(); // warm the caches

        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9));
        for _ in 0..4 {
            let delta = random_tid_delta(&mut rng, &live);
            let report = engine.apply_update(&mut live, &delta).unwrap();
            prop_assert_eq!(report.inserted, delta.insert_count());
            prop_assert_eq!(report.reweighted, delta.reweight_count());
            // Duplicate delete targets collapse into one deletion.
            prop_assert!(report.deleted <= delta.delete_count());
            let warm = engine.evaluate(&live, &chain).unwrap().probability;
            prop_assert!(
                close(warm, cold_probability(&live, &chain)),
                "chain query diverged after {:?}: warm {} vs cold {}",
                delta, warm, cold_probability(&live, &chain)
            );
            let warm = engine.evaluate(&live, &single).unwrap().probability;
            prop_assert!(close(warm, cold_probability(&live, &single)));
        }
    }

    /// The forced-fallback regime: a width budget of 1 makes every repair
    /// refuse, so updates constantly fall back — and must stay correct.
    #[test]
    fn tid_updates_agree_under_forced_fallback(n in 3usize..7, seed in 0u64..500) {
        let mut live = workloads::path_tid(n, 0.5, seed);
        let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::builder().width_budget(1).build();
        engine.evaluate(&live, &chain).unwrap();

        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let mut fell_back_once = false;
        for _ in 0..3 {
            let delta = random_tid_delta(&mut rng, &live);
            let report = engine.apply_update(&mut live, &delta).unwrap();
            fell_back_once |= report.fell_back;
            let warm = engine.evaluate(&live, &chain).unwrap().probability;
            prop_assert!(close(warm, cold_probability(&live, &chain)));
        }
        let _ = fell_back_once;
    }

    /// pc-instances: insertions extend, deletions rebuild, re-weights rekey
    /// — all of it must agree with cold evaluation.
    #[test]
    fn pc_updates_agree_with_cold_evaluation(n in 3usize..7, seed in 0u64..500) {
        let mut live = workloads::path_tid(n, 0.5, seed).to_pc_instance();
        let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        engine.evaluate(&live, &chain).unwrap();

        let mut rng = SplitMix64::new(seed ^ 0x1234);
        for _ in 0..3 {
            let mut delta = Delta::new();
            match rng.next_below(3) {
                0 => {
                    let a = format!("c{}", rng.next_below(n + 2));
                    let b = format!("c{}", rng.next_below(n + 2));
                    delta = delta.insert("R", &[&a, &b], 0.05 + 0.9 * rng.next_f64());
                }
                1 if live.instance().fact_count() > 1 => {
                    delta = delta.delete(FactId(rng.next_below(live.instance().fact_count())));
                }
                _ => {
                    let f = FactId(rng.next_below(live.instance().fact_count()));
                    delta = delta.set_probability(f, 0.05 + 0.9 * rng.next_f64());
                }
            }
            engine.apply_update(&mut live, &delta).unwrap();
            let warm = engine.evaluate(&live, &chain).unwrap().probability;
            prop_assert!(close(warm, cold_probability(&live, &chain)), "{:?}", delta);
        }
    }

    /// pcc-instances: the joint graph renumbers its gate vertices on
    /// insertion — the remap + repair + extension pipeline must agree.
    #[test]
    fn pcc_updates_agree_with_cold_evaluation(claims in 2usize..5, contributors in 1usize..3, seed in 0u64..500) {
        let mut live = workloads::contributor_pcc(claims, contributors, 0.8, 0.6, seed);
        let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
        let join = ConjunctiveQuery::parse("Claim(x, y), Claim(x, z)").unwrap();
        let engine = Engine::new();
        engine.evaluate(&live, &query).unwrap();
        engine.evaluate(&live, &join).unwrap();

        let mut rng = SplitMix64::new(seed ^ 0x77);
        for step in 0..3 {
            let delta = match rng.next_below(2) {
                0 => Delta::new().insert(
                    "Claim",
                    &[&format!("entity{}", rng.next_below(claims)), &format!("newv{step}")],
                    0.05 + 0.9 * rng.next_f64(),
                ),
                _ if live.fact_count() > 1 => {
                    Delta::new().delete(FactId(rng.next_below(live.fact_count())))
                }
                _ => Delta::new().insert("Claim", &["entity0", "solo"], 0.4),
            };
            engine.apply_update(&mut live, &delta).unwrap();
            let warm = engine.evaluate(&live, &query).unwrap().probability;
            prop_assert!(close(warm, cold_probability(&live, &query)), "{:?}", delta);
            let warm = engine.evaluate(&live, &join).unwrap().probability;
            prop_assert!(close(warm, cold_probability(&live, &join)), "{:?}", delta);
        }
    }

    /// PrXML: structural edits are opaque (full rebuild path), re-weights
    /// rekey — both must agree with cold evaluation.
    #[test]
    fn prxml_updates_agree_with_cold_evaluation(seed in 0u64..500) {
        let mut live = PrXmlDocument::figure1_example();
        let musician = PrxmlQuery::LabelExists("musician".into());
        let surname = PrxmlQuery::LabelExists("surname".into());
        let engine = Engine::new();
        engine.evaluate(&live, &musician).unwrap();

        let mut rng = SplitMix64::new(seed);
        let occupation = (0..live.len())
            .find(|&i| live.label(NodeId(i)) == "occupation")
            .unwrap();
        for step in 0..3 {
            let delta = match rng.next_below(3) {
                0 => Delta::new().set_probability(FactId(occupation), 0.05 + 0.9 * rng.next_f64()),
                1 => {
                    let root = live.root().unwrap().0;
                    Delta::new().insert(&format!("extra{step}"), &[&root.to_string()], 0.5)
                }
                _ => {
                    // Detach some non-root leaf if one survives, else reweight.
                    match (0..live.len()).find(|&i| {
                        live.label(NodeId(i)).starts_with("extra")
                    }) {
                        Some(node) => Delta::new().delete(FactId(node)),
                        None => Delta::new().set_probability(FactId(occupation), 0.5),
                    }
                }
            };
            engine.apply_update(&mut live, &delta).unwrap();
            for q in [&musician, &surname] {
                let warm = engine.evaluate(&live, q).unwrap().probability;
                prop_assert!(close(warm, cold_probability(&live, q)), "{:?}", delta);
            }
        }
    }
}

#[test]
fn weights_only_update_reuses_everything() {
    let mut tid = workloads::path_tid(10, 0.5, 3);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();
    assert_eq!(engine.cached_lineages(), 1);

    let delta = Delta::new()
        .set_probability(FactId(0), 0.9)
        .set_probability(FactId(5), 0.1);
    let report = engine.apply_update(&mut tid, &delta).unwrap();
    assert_eq!(report.reweighted, 2);
    assert_eq!(report.gates_rebuilt, 0, "weights-only: nothing rebuilt");
    assert_eq!(report.bags_touched, 0);
    assert_eq!(report.lineages_patched, 1);
    assert_eq!(report.lineages_dropped, 0);
    assert!(!report.fell_back);
    assert_eq!(report.width_drift(), Some(0));

    // The patched entry is a real cache hit for the *mutated* instance.
    let after = engine.evaluate(&tid, &query).unwrap();
    assert!(after.lineage_cached);
    assert!(close(after.probability, cold_probability(&tid, &query)));
}

#[test]
fn insertion_patches_instead_of_recompiling() {
    let mut tid = workloads::path_tid(12, 0.5, 9);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();

    // Extend the path: the new fact joins the chain at both ends.
    let delta = Delta::new().insert("R", &["c12", "c13"], 0.4);
    let report = engine.apply_update(&mut tid, &delta).unwrap();
    assert_eq!(report.inserted, 1);
    assert!(!report.fell_back, "a path extension fits every budget");
    assert!(report.gates_rebuilt > 0, "the dirty cone was appended");
    assert!(
        report.bags_touched > 0,
        "decomposition repaired, not rebuilt"
    );
    assert_eq!(report.lineages_patched, 1);

    let after = engine.evaluate(&tid, &query).unwrap();
    assert!(after.lineage_cached, "patched lineage must serve the hit");
    assert!(close(after.probability, cold_probability(&tid, &query)));
}

#[test]
fn deletion_rewires_the_compiled_lineage() {
    let mut tid = workloads::path_tid(10, 0.5, 5);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();

    let report = engine
        .apply_update(&mut tid, &Delta::new().delete(FactId(4)))
        .unwrap();
    assert_eq!(report.deleted, 1);
    assert!(report.gates_rebuilt > 0, "input gates were rewired");
    assert_eq!(report.lineages_patched, 1);
    assert!(!report.fell_back);

    let after = engine.evaluate(&tid, &query).unwrap();
    assert!(after.lineage_cached);
    assert!(close(after.probability, cold_probability(&tid, &query)));
}

#[test]
fn insertion_with_no_new_matches_keeps_the_circuit() {
    let mut tid = workloads::path_tid(6, 0.5, 2);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();
    // An isolated fact in a fresh relation adds no chain match.
    let report = engine
        .apply_update(&mut tid, &Delta::new().insert("S", &["z0", "z1"], 0.5))
        .unwrap();
    assert_eq!(report.gates_rebuilt, 0, "no new matches, no new gates");
    assert_eq!(report.lineages_patched, 1);
    let after = engine.evaluate(&tid, &query).unwrap();
    assert!(after.lineage_cached);
    assert!(close(after.probability, cold_probability(&tid, &query)));
}

#[test]
fn sustained_churn_stays_correct_and_triggers_compacting_rebuilds() {
    // Alternately insert and delete on the same instance for many rounds:
    // every patch only grows the compiled circuit, so the engine must
    // eventually *drop* patched entries and recompile compactly (either the
    // circuit-bloat watermark or the width budget trips) instead of letting
    // every sweep degrade forever — and stay correct throughout.
    let mut tid = workloads::path_tid(8, 0.5, 21);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();

    let mut saw_bounded_degradation_drop = false;
    for round in 0..30 {
        let delta = if round % 2 == 0 {
            Delta::new().insert("R", &["c3", &format!("b{round}")], 0.5)
        } else {
            Delta::new().delete(FactId(tid.fact_count() - 1))
        };
        let report = engine.apply_update(&mut tid, &delta).unwrap();
        saw_bounded_degradation_drop |= report.lineages_dropped > 0;
        let warm = engine.evaluate(&tid, &query).unwrap().probability;
        assert!(
            close(warm, cold_probability(&tid, &query)),
            "round {round} diverged"
        );
    }
    assert!(
        saw_bounded_degradation_drop,
        "30 churn rounds must drop a patched lineage for a compacting rebuild at least once"
    );
}

#[test]
fn rejected_deltas_leave_engine_and_instance_intact() {
    let mut tid = workloads::path_tid(5, 0.5, 1);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    let before = engine.evaluate(&tid, &query).unwrap().probability;
    let snapshot = tid.clone();

    let bad = Delta::new()
        .set_probability(FactId(0), 0.9)
        .insert("R", &["a", "b"], f64::NAN);
    assert!(engine.apply_update(&mut tid, &bad).is_err());
    assert_eq!(tid, snapshot, "rejected delta must not mutate");
    let report = engine.evaluate(&tid, &query).unwrap();
    assert!(report.lineage_cached, "caches survive a rejected delta");
    assert!(close(report.probability, before));
}

#[test]
fn evict_instance_is_targeted() {
    let tid_a = workloads::path_tid(6, 0.5, 1);
    let tid_b = workloads::path_tid(7, 0.4, 2);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid_a, &query).unwrap();
    engine.evaluate(&tid_b, &query).unwrap();
    assert_eq!(engine.cached_decompositions(), 2);
    assert_eq!(engine.cached_lineages(), 2);

    let evicted = engine.evict_instance(Representation::fingerprint(&tid_a));
    assert_eq!(evicted, 2, "one decomposition + one lineage");
    assert_eq!(engine.cached_decompositions(), 1);
    assert_eq!(engine.cached_lineages(), 1);
    // The other instance's entries still serve hits.
    assert!(engine.evaluate(&tid_b, &query).unwrap().lineage_cached);
    // Evicting an unknown fingerprint is a no-op.
    assert_eq!(engine.evict_instance(0xDEAD_BEEF), 0);
}

#[test]
fn update_log_replay_matches_live_instance_probabilities() {
    use stuc::incr::UpdateLog;
    let mut live = workloads::path_tid(6, 0.5, 11);
    let replica_base = live.clone();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&live, &query).unwrap();

    let mut log = UpdateLog::new();
    for delta in [
        Delta::new().insert("R", &["c6", "c7"], 0.3),
        Delta::new()
            .delete(FactId(2))
            .set_probability(FactId(0), 0.8),
    ] {
        // Record through the trait (the engine path applies the same delta
        // semantics; the log captures the raw application).
        let mut shadow = live.clone();
        let application = shadow.apply_delta(&delta).unwrap();
        log.record(delta.clone(), &application);
        engine.apply_update(&mut live, &delta).unwrap();
        assert_eq!(shadow, live, "engine and trait application agree");
    }
    let mut replica = replica_base;
    log.replay(&mut replica).unwrap();
    assert_eq!(replica, live);
    assert!(close(
        cold_probability(&replica, &query),
        engine.evaluate(&live, &query).unwrap().probability
    ));
}

#[test]
fn update_reports_surface_width_drift_and_fallbacks() {
    // A long-range insert on a path forces real bag growth.
    let mut tid = workloads::path_tid(12, 0.5, 4);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();
    engine.evaluate(&tid, &query).unwrap();
    let report = engine
        .apply_update(&mut tid, &Delta::new().insert("R", &["c0", "c12"], 0.5))
        .unwrap();
    assert!(report.width_before.is_some());
    assert!(report.width_after.is_some());
    assert!(report.width_drift().unwrap() >= 0);
    assert!(!report.notes.is_empty());
    assert!(close(
        engine.evaluate(&tid, &query).unwrap().probability,
        cold_probability(&tid, &query)
    ));

    // With a width budget of 1 the same update cannot be repaired.
    let mut tid = workloads::path_tid(12, 0.5, 4);
    let strict = Engine::builder().width_budget(1).build();
    strict.evaluate(&tid, &query).unwrap();
    let report = strict
        .apply_update(&mut tid, &Delta::new().insert("R", &["c0", "c12"], 0.5))
        .unwrap();
    assert!(report.fell_back, "budget 1 must force the fallback path");
    assert!(close(
        strict.evaluate(&tid, &query).unwrap().probability,
        cold_probability(&tid, &query)
    ));
}
