//! Semantic coherence tests for the order-uncertainty stack: PosRA operators
//! against their possible-world semantics, the uniform linear-extension
//! distribution against enumeration, numeric orders, set semantics, and
//! annotated (fact + order uncertain) relations.

use std::collections::BTreeSet;

use stuc::circuit::circuit::VarId;
use stuc::circuit::weights::Weights;
use stuc::data::formula::Formula;
use stuc::order::annotated::AnnotatedPoRelation;
use stuc::order::numeric::NumericPoRelation;
use stuc::order::porelation::PoRelation;
use stuc::order::posra::{project, select, union_concat, union_parallel};
use stuc::order::probability::LinearExtensionDistribution;
use stuc::order::setops::{distinct_certain, union_distinct};

fn worlds(relation: &PoRelation) -> BTreeSet<Vec<Vec<String>>> {
    relation
        .linear_extensions()
        .unwrap()
        .into_iter()
        .map(|extension| {
            extension
                .iter()
                .map(|&e| relation.tuple(e).to_vec())
                .collect()
        })
        .collect()
}

fn list(items: &[(&str, &str)]) -> PoRelation {
    PoRelation::totally_ordered(
        items
            .iter()
            .map(|(a, b)| vec![a.to_string(), b.to_string()])
            .collect(),
    )
}

/// Selection commutes with the possible-world semantics: filtering the
/// representation and filtering each possible world give the same worlds.
#[test]
fn selection_commutes_with_possible_worlds() {
    let logs = union_parallel(
        &list(&[("boot", "m1"), ("error", "m1"), ("halt", "m1")]),
        &list(&[("error", "m2"), ("ok", "m2")]),
    );
    let predicate = |tuple: &[String]| tuple[0] == "error" || tuple[0] == "halt";
    let on_representation = worlds(&select(&logs, predicate));
    let on_worlds: BTreeSet<Vec<Vec<String>>> = worlds(&logs)
        .into_iter()
        .map(|world| world.into_iter().filter(|t| predicate(t)).collect())
        .collect();
    assert_eq!(on_representation, on_worlds);
}

/// Projection commutes with the possible-world semantics.
#[test]
fn projection_commutes_with_possible_worlds() {
    let logs = union_parallel(
        &list(&[("boot", "m1"), ("halt", "m1")]),
        &list(&[("error", "m2")]),
    );
    let on_representation = worlds(&project(&logs, &[1]));
    let on_worlds: BTreeSet<Vec<Vec<String>>> = worlds(&logs)
        .into_iter()
        .map(|world| world.into_iter().map(|t| vec![t[1].clone()]).collect())
        .collect();
    assert_eq!(on_representation, on_worlds);
}

/// Concatenation union has exactly the worlds "every world of the left, then
/// every world of the right".
#[test]
fn concatenation_union_concatenates_worlds() {
    let left = union_parallel(&list(&[("a", "x")]), &list(&[("b", "x")]));
    let right = list(&[("c", "y"), ("d", "y")]);
    let combined = worlds(&union_concat(&left, &right));
    let mut expected = BTreeSet::new();
    for l in worlds(&left) {
        for r in worlds(&right) {
            let mut world = l.clone();
            world.extend(r.clone());
            expected.insert(world);
        }
    }
    assert_eq!(combined, expected);
}

/// The expected ranks of all elements sum to n(n−1)/2 (each position is
/// occupied exactly once), and top-k probabilities are monotone in k.
#[test]
fn rank_expectations_are_a_permutation_average() {
    let merged = union_parallel(
        &list(&[("a1", "s"), ("a2", "s"), ("a3", "s")]),
        &list(&[("b1", "t"), ("b2", "t")]),
    );
    let distribution = LinearExtensionDistribution::new(&merged).unwrap();
    let n = merged.len();
    let total_rank: f64 = (0..n)
        .map(|i| distribution.expected_rank(stuc::order::porelation::ElementId(i)))
        .sum();
    assert!((total_rank - (n * (n - 1)) as f64 / 2.0).abs() < 1e-9);
    let element = stuc::order::porelation::ElementId(0);
    let mut previous = 0.0;
    for k in 0..=n {
        let current = distribution.top_k_probability(element, k);
        assert!(current + 1e-12 >= previous);
        previous = current;
    }
    assert!((previous - 1.0).abs() < 1e-9);
}

/// When the numeric intervals certify an order, the uniform-value precedence
/// probability is 1 and the induced po-relation agrees.
#[test]
fn numeric_certain_orders_are_consistent() {
    let mut numeric = NumericPoRelation::new();
    let low = numeric.add_interval(vec!["low".into()], 0.0, 1.0).unwrap();
    let high = numeric.add_interval(vec!["high".into()], 2.0, 3.0).unwrap();
    let overlapping = numeric.add_interval(vec!["mid".into()], 0.5, 2.5).unwrap();
    assert!((numeric.precedence_probability_uniform(low, high) - 1.0).abs() < 1e-12);
    let induced = numeric.induced_order();
    assert!(induced.precedes(
        stuc::order::porelation::ElementId(low.0),
        stuc::order::porelation::ElementId(high.0)
    ));
    // The overlapping element is comparable to neither.
    assert!(!induced.precedes(
        stuc::order::porelation::ElementId(overlapping.0),
        stuc::order::porelation::ElementId(high.0)
    ));
    let p = numeric.precedence_probability_uniform(overlapping, high);
    assert!(p > 0.0 && p < 1.0);
}

/// Duplicate elimination is idempotent at the representation level.
#[test]
fn distinct_certain_is_idempotent() {
    let merged = union_parallel(
        &list(&[("x", "a"), ("y", "a")]),
        &list(&[("x", "a"), ("z", "a")]),
    );
    let once = distinct_certain(&merged);
    let twice = distinct_certain(&once);
    assert_eq!(worlds(&once), worlds(&twice));
    let via_union = union_distinct(
        &list(&[("x", "a"), ("y", "a")]),
        &list(&[("x", "a"), ("z", "a")]),
    );
    assert_eq!(worlds(&once), worlds(&via_union));
}

/// An annotated po-relation with all-certain annotations behaves exactly like
/// the underlying po-relation, and PosRA on annotated relations commutes with
/// fixing a valuation.
#[test]
fn annotated_operators_commute_with_world_selection() {
    let mut left = AnnotatedPoRelation::new();
    let a = left.add_tuple(vec!["a".into()], Formula::Var(VarId(0)));
    let b = left.add_tuple(vec!["b".into()], Formula::True);
    left.add_order(a, b).unwrap();
    let mut right = AnnotatedPoRelation::new();
    right.add_tuple(vec!["c".into()], Formula::Var(VarId(1)));

    let union = left.union_parallel(&right);
    let valuation: std::collections::BTreeMap<VarId, bool> =
        [(VarId(0), false), (VarId(1), true)].into_iter().collect();
    // Route 1: combine, then fix the valuation.
    let combined_world = union.world_under(&valuation);
    // Route 2: fix the valuation on each side, then combine plain relations.
    let left_world = left.world_under(&valuation);
    let right_world = right.world_under(&valuation);
    let expected = union_parallel(&left_world, &right_world);
    assert_eq!(worlds(&combined_world), worlds(&expected));

    // Selection commutes as well.
    let selected = union.select(|t| t[0] != "c").world_under(&valuation);
    let expected_selected = select(&combined_world, |t| t[0] != "c");
    assert_eq!(worlds(&selected), worlds(&expected_selected));
}

/// The probability-weighted possible-sequence masses of an annotated relation
/// sum to 1 when summed over all (sequence, valuation) combinations — checked
/// here on a small example by summing over the distinct achievable sequences
/// of each valuation class.
#[test]
fn annotated_sequence_masses_partition_the_space() {
    let mut relation = AnnotatedPoRelation::new();
    relation.add_tuple(vec!["claim".into()], Formula::Var(VarId(0)));
    relation.add_tuple(vec!["review".into()], Formula::True);
    let mut weights = Weights::new();
    weights.set(VarId(0), 0.25);
    // Worlds: {review} with mass 0.75, {claim, review} (unordered) with 0.25.
    let review_only = relation
        .sequence_possibility_probability(&weights, &[vec!["review".into()]])
        .unwrap();
    let claim_then_review = relation
        .sequence_possibility_probability(&weights, &[vec!["claim".into()], vec!["review".into()]])
        .unwrap();
    let review_then_claim = relation
        .sequence_possibility_probability(&weights, &[vec!["review".into()], vec!["claim".into()]])
        .unwrap();
    assert!((review_only - 0.75).abs() < 1e-12);
    assert!((claim_then_review - 0.25).abs() < 1e-12);
    assert!((review_then_claim - 0.25).abs() < 1e-12);
    assert!(
        (relation
            .label_presence_probability(&weights, &["claim".to_string()])
            .unwrap()
            - 0.25)
            .abs()
            < 1e-12
    );
}
