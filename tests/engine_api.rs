//! Integration tests for the unified engine: `Engine::evaluate` works on
//! every uncertain representation (TID, c-instance, pc-instance,
//! pcc-instance, PrXML), the `EvaluationReport` names the back-end that
//! actually ran, and every per-crate error converts into `StucError`.

use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::circuit::weights::Weights;
use stuc::core::workloads;
use stuc::data::cinstance::CInstance;
use stuc::data::worlds;
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::{query_probability_by_enumeration, PrxmlQuery};
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::lineage::cinstance_lineage;
use stuc::{BackendKind, Engine, ReprKind, Representation, StucError};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn engine_evaluates_tid_instances_and_names_the_backend() {
    let engine = Engine::new();
    let tid = workloads::path_tid(8, 0.5, 11);

    // Self-join query: the safe plan is impossible, treewidth WMC runs.
    let self_join = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let report = engine.evaluate(&tid, &self_join).unwrap();
    assert_eq!(report.backend, BackendKind::TreewidthWmc);
    assert_eq!(report.backend_name(), "treewidth-wmc");
    assert!(report.decomposition_width.is_some());
    assert!(report.circuit_gates > 0);
    let brute = Engine::builder()
        .backend(BackendKind::Enumeration)
        .build()
        .evaluate(&tid, &self_join)
        .unwrap();
    assert_eq!(brute.backend, BackendKind::Enumeration);
    assert!(close(report.probability, brute.probability));

    // Hierarchical query: the extensional safe plan runs, no circuit at all.
    let hierarchical = ConjunctiveQuery::parse("R(x, y)").unwrap();
    let fast = engine.evaluate(&tid, &hierarchical).unwrap();
    assert_eq!(fast.backend, BackendKind::SafePlan);
    assert_eq!(fast.backend_name(), "safe-plan");
    assert_eq!(fast.circuit_gates, 0);
    assert_eq!(fast.decomposition_width, None);
    let reference = Engine::builder()
        .backend(BackendKind::Dpll)
        .build()
        .evaluate(&tid, &hierarchical)
        .unwrap();
    assert_eq!(reference.backend, BackendKind::Dpll);
    assert!(close(fast.probability, reference.probability));
}

#[test]
fn engine_evaluates_cinstances_under_the_uniform_distribution() {
    // A plain c-instance has no probabilities: the engine evaluates the
    // fraction of event valuations satisfying the query (possibility /
    // certainty semantics — every event uniform at 1/2).
    let ci = CInstance::table1_example();
    let query = ConjunctiveQuery::parse("Trip(x, \"Paris_CDG\")").unwrap();
    let report = Engine::new().evaluate(&ci, &query).unwrap();
    assert_eq!(Representation::kind(&ci), ReprKind::CInstance);

    let lineage = cinstance_lineage(&ci, &query);
    let uniform = Weights::uniform(lineage.variables(), 0.5);
    let reference = probability_by_enumeration(&lineage, &uniform).unwrap();
    assert!(close(report.probability, reference));
    assert!(report.is_possible());
    assert!(!report.is_certain());
}

#[test]
fn engine_evaluates_pc_instances_with_real_probabilities() {
    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);
    let pc = ci.with_probabilities(weights);

    let query = ConjunctiveQuery::parse(
        "Trip(\"Paris_CDG\", \"Melbourne_MEL\"), Trip(\"Melbourne_MEL\", \"Paris_CDG\")",
    )
    .unwrap();
    let report = Engine::new().evaluate(&pc, &query).unwrap();
    // Round trip needs pods (outbound) and pods ∧ ¬stoc (return).
    assert!(close(report.probability, 0.8 * 0.7));

    // Cross-check against explicit possible-world enumeration.
    let cdg = pc.instance().find_constant("Paris_CDG").unwrap();
    let mel = pc.instance().find_constant("Melbourne_MEL").unwrap();
    let reference = worlds::query_probability(&pc, |facts| {
        let has = |a, b| {
            facts.iter().any(|&f| {
                let fact = pc.instance().fact(f);
                fact.args.first() == Some(&a) && fact.args.get(1) == Some(&b)
            })
        };
        has(cdg, mel) && has(mel, cdg)
    })
    .unwrap();
    assert!(close(report.probability, reference));
}

#[test]
fn engine_evaluates_pcc_instances_with_correlated_annotations() {
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
    for seed in 0..3 {
        let pcc = workloads::contributor_pcc(6, 3, 0.8, 0.9, seed);
        let report = engine.evaluate(&pcc, &query).unwrap();
        assert!(
            matches!(
                report.backend,
                BackendKind::TreewidthWmc | BackendKind::Dpll
            ),
            "unexpected backend {}",
            report.backend_name()
        );
        assert!(report.decomposition_width.is_some());
        let reference = workloads::pcc_query_probability_by_enumeration(&pcc, &query);
        assert!(close(report.probability, reference), "seed {seed}");
    }
}

#[test]
fn engine_evaluates_prxml_documents() {
    let doc = PrXmlDocument::figure1_example();
    let engine = Engine::new();
    for query in [
        PrxmlQuery::LabelExists("musician".into()),
        PrxmlQuery::LabelExists("Crescent".into()),
        PrxmlQuery::AncestorDescendant {
            ancestor: "occupation".into(),
            descendant: "musician".into(),
        },
    ] {
        let report = engine.evaluate(&doc, &query).unwrap();
        let reference = query_probability_by_enumeration(&doc, &query).unwrap();
        assert!(
            close(report.probability, reference),
            "{query:?}: {} vs {reference}",
            report.probability
        );
        assert!(
            matches!(
                report.backend,
                BackendKind::TreewidthWmc | BackendKind::Dpll
            ),
            "unexpected backend {}",
            report.backend_name()
        );
    }
}

#[test]
fn one_engine_serves_all_four_representations() {
    // The acceptance scenario spelled out: a single engine value evaluates
    // four different formalisms, and each report names the back-end that ran.
    let engine = Engine::new();

    let tid = workloads::path_tid(5, 0.5, 1);
    let cq = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let tid_report = engine.evaluate(&tid, &cq).unwrap();

    let ci = CInstance::table1_example();
    let ci_report = engine
        .evaluate(&ci, &ConjunctiveQuery::parse("Trip(x, y)").unwrap())
        .unwrap();

    let pcc = workloads::contributor_pcc(5, 2, 0.7, 0.9, 9);
    let pcc_report = engine
        .evaluate(&pcc, &ConjunctiveQuery::parse("Claim(x, y)").unwrap())
        .unwrap();

    let doc = PrXmlDocument::figure1_example();
    let doc_report = engine
        .evaluate(&doc, &PrxmlQuery::LabelExists("Manning".into()))
        .unwrap();

    for report in [&tid_report, &ci_report, &pcc_report, &doc_report] {
        assert!(!report.backend_name().is_empty());
        assert!((0.0..=1.0 + 1e-12).contains(&report.probability));
    }
    // Four structure decompositions cached (one per representation).
    assert_eq!(engine.cached_decompositions(), 4);
}

#[test]
fn every_layer_error_converts_into_stuc_error() {
    // Query parse error (stuc-query).
    let parse_error: StucError = ConjunctiveQuery::parse("not a query!!").unwrap_err().into();
    assert!(matches!(parse_error, StucError::QueryParse(_)));

    // Safe-plan refusal (stuc-query) through a fixed-backend engine.
    let tid = workloads::rst_path_tid(4, 0.5, 5);
    let unsafe_query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
    let engine = Engine::builder().backend(BackendKind::SafePlan).build();
    assert!(matches!(
        engine.evaluate(&tid, &unsafe_query),
        Err(StucError::SafePlan(_))
    ));

    // Width refusal (stuc-circuit) through a fixed treewidth engine with a
    // budget nothing fits into.
    let wide = workloads::rst_bipartite_tid(4, 0.5, 3);
    let engine = Engine::builder()
        .backend(BackendKind::TreewidthWmc)
        .width_budget(1)
        .build();
    assert!(matches!(
        engine.evaluate(&wide, &unsafe_query),
        Err(StucError::Wmc(_))
    ));

    // Enumeration refusal (stuc-circuit): too many variables.
    let big = workloads::path_tid(40, 0.5, 1);
    let engine = Engine::builder().backend(BackendKind::Enumeration).build();
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    assert!(matches!(
        engine.evaluate(&big, &query),
        Err(StucError::Enumeration(_))
    ));
}

#[test]
fn missing_probabilities_are_reported_not_miscomputed() {
    let ci = CInstance::table1_example();
    // A pc-instance with *no* weights at all: evaluating must fail loudly.
    let pc = ci.with_probabilities(Weights::new());
    let query = ConjunctiveQuery::parse("Trip(x, y)").unwrap();
    match Engine::new().evaluate(&pc, &query) {
        Err(StucError::MissingProbabilities { representation }) => {
            assert_eq!(representation, "pc-instance");
        }
        other => panic!("expected MissingProbabilities, got {other:?}"),
    }
}

#[test]
fn tid_backends_all_agree_on_the_paper_hard_query() {
    let tid = workloads::rst_path_tid(6, 0.5, 7);
    let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
    let auto = Engine::new().evaluate(&tid, &query).unwrap();
    for kind in [
        BackendKind::TreewidthWmc,
        BackendKind::Dpll,
        BackendKind::Enumeration,
    ] {
        let pinned = Engine::builder().backend(kind).build();
        let report = pinned.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, kind);
        assert!(
            close(auto.probability, report.probability),
            "{}: {} vs {}",
            kind,
            report.probability,
            auto.probability
        );
    }
}
