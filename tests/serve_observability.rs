//! Parse-based checks of `stuc-serve`'s live observability surfaces:
//! `GET /metrics`, `GET /debug/slow` and the `?timings=1` switch on
//! `POST /query`.
//!
//! These responses carry live counters and wall times, so — unlike the
//! byte-exact transcript of `tests/serve_golden.rs` — they are asserted
//! structurally: the metric families the service promises must be present
//! and well-formed, and the values must be consistent with the requests
//! this test just made. The registry is process-cumulative, so every bound
//! is a `>=`, never an `==` against another test's traffic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use stuc::obs::slowlog;
use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::Engine;

const PROGRAM: &str = "\
0.9 :: Train(\"paris\", \"lyon\").\n\
0.8 :: Train(\"lyon\", \"nice\").\n\
Hop(x, y) :- Train(x, y).\n";

fn spawn_server() -> Server {
    let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
    Server::spawn(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        state,
    )
    .unwrap()
}

fn exchange(addr: SocketAddr, payload: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn get(addr: SocketAddr, path: &str) -> String {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\n\r\n"))
}

fn post_query(addr: SocketAddr, path: &str, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// The body of a response (after the blank line).
fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

/// The value of a single-sample metric line (`name value`) in a
/// Prometheus text exposition body.
fn sample(prometheus: &str, name: &str) -> Option<f64> {
    prometheus.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

#[test]
fn the_metrics_endpoint_exposes_engine_cache_and_serve_families() {
    let server = spawn_server();
    let addr = server.addr();

    // Three goals: two safe-plan, one circuit-bound (exercises the caches).
    assert!(post_query(addr, "/query", "?- Train(x, y).").contains("200 OK"));
    assert!(post_query(addr, "/query", "?- Hop(x, y), Hop(y, z).").contains("200 OK"));
    assert!(post_query(addr, "/query", "?- Hop(x, y), Hop(y, z).").contains("200 OK"));

    let response = get(addr, "/metrics");
    server.shutdown();
    assert!(response.contains("200 OK"), "{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus exposition is text, not JSON: {response}"
    );
    let body = body_of(&response);

    // Every family the service promises, with its declared type.
    for (name, kind) in [
        ("stuc_serve_requests_total", "counter"),
        ("stuc_serve_request_errors_total", "counter"),
        ("stuc_serve_rejected_overload_total", "counter"),
        ("stuc_serve_queue_depth", "gauge"),
        ("stuc_serve_in_flight", "gauge"),
        ("stuc_serve_request_seconds", "histogram"),
        ("stuc_engine_evaluate_goal_total", "counter"),
        ("stuc_engine_evaluate_goal_seconds", "histogram"),
        ("stuc_cache_decomposition_hits_total", "counter"),
        ("stuc_cache_lineage_hits_total", "counter"),
        ("stuc_cache_lineage_entries", "gauge"),
    ] {
        assert!(
            body.contains(&format!("# TYPE {name} {kind}")),
            "missing {kind} family {name} in:\n{body}"
        );
    }

    // Values consistent with the traffic above (>=: the registry is
    // process-cumulative and other tests in this binary run concurrently).
    let served = sample(body, "stuc_serve_requests_total").expect("serve counter sample");
    assert!(served >= 3.0, "served {served} < the 3 queries just posted");
    let goals = sample(body, "stuc_engine_evaluate_goal_total").expect("goal counter sample");
    assert!(goals >= 3.0, "goals {goals} < the 3 goals just evaluated");
    let hits = sample(body, "stuc_cache_lineage_hits_total").expect("hit counter sample");
    assert!(hits >= 1.0, "the repeated circuit goal must hit the cache");

    // Histogram samples render as cumulative buckets plus _sum/_count.
    assert!(
        body.contains("stuc_serve_request_seconds_bucket{le=\"+Inf\"}"),
        "histogram must end with an +Inf bucket:\n{body}"
    );
    // The /metrics request renders its body before observing itself, so
    // only the three queries are certain to be in the histogram.
    let count = sample(body, "stuc_serve_request_seconds_count").expect("histogram count");
    assert!(count >= 3.0, "request histogram missed requests: {count}");
}

#[test]
fn the_timings_switch_adds_a_stage_breakdown() {
    let server = spawn_server();
    let addr = server.addr();

    let plain = post_query(addr, "/query", "?- Hop(x, y), Hop(y, z).");
    let timed = post_query(addr, "/query?timings=1", "?- Hop(x, y), Hop(y, z).");
    server.shutdown();

    assert!(
        !plain.contains("wall_micros"),
        "timings must be opt-in (the golden transcript depends on it): {plain}"
    );
    let body = body_of(&timed);
    assert!(body.contains("\"trace_id\":"), "{body}");
    assert!(body.contains("\"wall_micros\":"), "{body}");
    // The circuit route runs the full pipeline; the lineage sweep must
    // appear as a named stage with a parseable lap.
    assert!(
        body.contains("\"stages\":[{\"stage\":\""),
        "no stage array in: {body}"
    );
    assert!(body.contains("\"stage\":\"sweep\""), "{body}");
    let micros = body
        .split("\"wall_micros\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|digits| digits.parse::<u64>().ok())
        .expect("wall_micros must be a bare integer");
    let _ = micros; // any u64 parses; the point is the field is well-formed
}

#[test]
fn the_slow_log_retains_queries_above_the_threshold() {
    // Zero threshold: every operation qualifies. The log is process-global,
    // so this only ever adds entries for concurrently-running tests.
    slowlog::global().set_threshold(Duration::ZERO);
    let server = spawn_server();
    let addr = server.addr();

    assert!(post_query(addr, "/query", "?- Train(x, y).").contains("200 OK"));
    let response = get(addr, "/debug/slow");
    server.shutdown();

    assert!(response.contains("200 OK"), "{response}");
    let body = body_of(&response);
    assert!(
        body.starts_with("{\"threshold_micros\":0,\"entries\":["),
        "{body}"
    );
    assert!(
        body.contains("\"what\":\"serve-query\""),
        "the query just posted must be retained: {body}"
    );
    assert!(body.contains("\"outcome\":\"slow\""), "{body}");
    assert!(body.contains("\"wall_micros\":"), "{body}");
}

#[test]
fn the_slow_log_retains_failed_evaluations_regardless_of_threshold() {
    // A huge threshold: no *success* would ever be retained…
    slowlog::global().set_threshold(Duration::from_secs(3600));
    let server = spawn_server();
    let addr = server.addr();

    // …but a request whose deadline expired in the queue is a failed
    // outlier and must land in the log no matter how fast it died.
    // (`deadline_ms=0` is anchored at accept time, so the trip is certain.)
    let response = post_query(addr, "/query?deadline_ms=0", "?- Train(x, y).");
    assert!(response.contains("504"), "{response}");

    let slow = get(addr, "/debug/slow");
    server.shutdown();
    slowlog::global().set_threshold(slowlog::DEFAULT_THRESHOLD);

    let body = body_of(&slow);
    assert!(
        body.contains("\"outcome\":\"deadline-exceeded\""),
        "failed evaluation missing from the slow log: {body}"
    );
    assert!(body.contains("\"what\":\"serve-queue\""), "{body}");
}
