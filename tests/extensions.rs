//! Cross-crate integration tests for the extension modules: order
//! probabilities and set semantics, combined fact+order uncertainty, Datalog
//! provenance, rule mining / hard constraints / truncation, and PrXML
//! constraint conditioning.

use stuc::circuit::circuit::VarId;
use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::circuit::weights::Weights;
use stuc::data::formula::Formula;
use stuc::data::tid::TidInstance;
use stuc::order::annotated::AnnotatedPoRelation;
use stuc::order::porelation::PoRelation;
use stuc::order::probability::LinearExtensionDistribution;
use stuc::order::setops::{distinct_certain, set_possible_worlds};
use stuc::prxml::constraints::{
    conditioned_query_probability, constraint_probability, PrxmlConstraint,
};
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::{query_probability, PrxmlQuery};
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::datalog::DatalogProgram;
use stuc::query::datalog_provenance::DatalogProvenance;
use stuc::rules::constraints::HardConstraints;
use stuc::rules::mining::RuleMiner;
use stuc::rules::truncation::TruncatedChase;
use stuc::rules::ProbabilisticChase;
use stuc::Engine;

/// The non-recursive part of Datalog provenance must agree with the
/// structurally tractable pipeline of Theorem 1 on the equivalent CQ.
#[test]
fn datalog_provenance_agrees_with_the_tractable_pipeline() {
    let mut tid = TidInstance::new();
    for (i, p) in [0.9, 0.4, 0.7, 0.2].iter().enumerate() {
        tid.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)], *p);
    }
    // Two-hop reachability as a non-recursive Datalog program …
    let program = DatalogProgram::parse("TwoHop(x, z) :- Edge(x, y), Edge(y, z)").unwrap();
    let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
    let query = ConjunctiveQuery::parse("TwoHop(x, z)").unwrap();
    let lineage = provenance.query_lineage(&query);
    let from_datalog = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
    // … and as the CQ evaluated by the automaton pipeline.
    let cq = ConjunctiveQuery::parse("Edge(x, y), Edge(y, z)").unwrap();
    let report = Engine::new().evaluate(&tid, &cq).unwrap();
    assert!((from_datalog - report.probability).abs() < 1e-9);
}

/// Precedence probabilities from the distribution match the ratio of
/// augmented to total linear-extension counts.
#[test]
fn precedence_probability_matches_counting() {
    let mut po = PoRelation::new();
    let a = po.add_tuple(vec!["a".into()]);
    let b = po.add_tuple(vec!["b".into()]);
    let c = po.add_tuple(vec!["c".into()]);
    let d = po.add_tuple(vec!["d".into()]);
    po.add_order(a, b).unwrap();
    po.add_order(c, d).unwrap();
    let total = po.count_linear_extensions().unwrap();
    let mut augmented = po.clone();
    augmented.add_order(a, d).unwrap();
    let with_constraint = augmented.count_linear_extensions().unwrap();
    let distribution = LinearExtensionDistribution::new(&po).unwrap();
    let expected = with_constraint as f64 / total as f64;
    assert!((distribution.precedence_probability(a, d) - expected).abs() < 1e-12);
}

/// The certain-order distinct operator over-approximates the exact set
/// semantics: every exact world is a linear extension of the operator's
/// output.
#[test]
fn distinct_certain_over_approximates_exact_set_worlds() {
    let ranking_a =
        PoRelation::totally_ordered(vec![vec!["x".into()], vec!["y".into()], vec!["z".into()]]);
    let ranking_b = PoRelation::totally_ordered(vec![vec!["y".into()], vec!["x".into()]]);
    let merged = stuc::order::posra::union_parallel(&ranking_a, &ranking_b);
    let exact = set_possible_worlds(&merged).unwrap();
    let approximated = distinct_certain(&merged);
    for world in &exact {
        assert!(
            approximated.is_possible_world(world),
            "exact world {world:?} missing from the certain-order approximation"
        );
    }
}

/// Combined fact and order uncertainty: the annotated po-relation built from
/// two correlated log entries behaves like the c-instance semantics on the
/// fact side and like the po-relation semantics on the order side.
#[test]
fn annotated_po_relations_combine_fact_and_order_uncertainty() {
    let mut log = AnnotatedPoRelation::new();
    let source = VarId(0);
    let boot = log.add_tuple(vec!["boot".into()], Formula::Var(source));
    let crash = log.add_tuple(vec!["crash".into()], Formula::Var(source));
    let audit = log.add_tuple(vec!["audit".into()], Formula::True);
    log.add_order(boot, crash).unwrap();
    log.add_order(boot, audit).unwrap();
    let mut weights = Weights::new();
    weights.set(source, 0.5);
    // When the source is trusted all three entries are present, and the two
    // orderings of {crash, audit} after boot are both possible.
    let full = log
        .sequence_possibility_probability(
            &weights,
            &[
                vec!["boot".into()],
                vec!["crash".into()],
                vec!["audit".into()],
            ],
        )
        .unwrap();
    assert!((full - 0.5).abs() < 1e-12);
    // When the source is untrusted only the audit entry survives.
    let audit_only = log
        .sequence_possibility_probability(&weights, &[vec!["audit".into()]])
        .unwrap();
    assert!((audit_only - 0.5).abs() < 1e-12);
    assert!((log.expected_size(&weights).unwrap() - 2.0).abs() < 1e-12);
}

/// Rule mining feeds the probabilistic chase: the mined confidence becomes
/// the derived-fact probability for a certain premise, and the truncated
/// chase brackets the same value.
#[test]
fn mined_rules_drive_chase_and_truncation_consistently() {
    let mut training = stuc::data::instance::Instance::new();
    for (person, country, lives) in [
        ("alice", "france", true),
        ("bob", "france", true),
        ("carol", "japan", true),
        ("dave", "japan", false),
    ] {
        training.add_fact_named("Citizen", &[person, country]);
        if lives {
            training.add_fact_named("Lives", &[person, country]);
        } else {
            training.add_fact_named("Lives", &[person, "elsewhere"]);
        }
    }
    let miner = RuleMiner {
        min_support: 2,
        min_confidence: 0.5,
        mine_path_rules: false,
    };
    let mined = miner.mine(&training);
    let lives_rule = mined
        .iter()
        .find(|m| {
            m.rule.head[0].relation == "Lives"
                && m.rule.body[0].relation == "Citizen"
                && m.rule.head[0].args == m.rule.body[0].args
        })
        .expect("the Lives rule should be mined");
    assert!((lives_rule.confidence() - 0.75).abs() < 1e-9);

    let mut fresh = TidInstance::new();
    fresh.add_fact_named("Citizen", &["erin", "france"], 1.0);
    let query = ConjunctiveQuery::parse("Lives(\"erin\", \"france\")").unwrap();
    let chase = ProbabilisticChase::new(vec![lives_rule.rule.clone()]);
    let probability = chase
        .run(&fresh)
        .unwrap()
        .query_probability(&query)
        .unwrap();
    assert!((probability - 0.75).abs() < 1e-9);

    let truncated = TruncatedChase::new(vec![lives_rule.rule.clone()]);
    let report = truncated.evaluate(&fresh, &query, 2).unwrap();
    assert!(report.converged);
    assert!((report.lower_bound - 0.75).abs() < 1e-9);
    assert!((report.upper_bound - 0.75).abs() < 1e-9);
}

/// Open-world certain answering under hard rules is the degenerate case the
/// probabilistic chase must agree with when every confidence is 1 and every
/// fact is certain.
#[test]
fn hard_constraints_agree_with_confidence_one_chase() {
    let rule = stuc::rules::Rule::parse("LocatedIn(x, z) :- LocatedIn(x, y), LocatedIn(y, z)", 1.0)
        .unwrap();
    let mut tid = TidInstance::new();
    tid.add_fact_named("LocatedIn", &["paris", "france"], 1.0);
    tid.add_fact_named("LocatedIn", &["france", "europe"], 1.0);
    let query = ConjunctiveQuery::parse("LocatedIn(\"paris\", \"europe\")").unwrap();

    let hard = HardConstraints::new(vec![rule.clone()]);
    let certain = hard.certain(tid.instance(), &query).unwrap();
    let probabilistic = ProbabilisticChase::new(vec![rule])
        .run(&tid)
        .unwrap()
        .query_probability(&query)
        .unwrap();
    assert!(certain);
    assert!((probabilistic - 1.0).abs() < 1e-9);
}

/// PrXML constraint conditioning obeys the law of total probability on the
/// Figure 1 document.
#[test]
fn prxml_conditioning_obeys_total_probability() {
    let doc = PrXmlDocument::figure1_example();
    let query = PrxmlQuery::LabelExists("Chelsea".into());
    let evidence = PrxmlQuery::LabelExists("musician".into());
    let p_query = query_probability(&doc, &query).unwrap();
    let p_evidence =
        constraint_probability(&doc, &PrxmlConstraint::Holds(evidence.clone())).unwrap();
    let p_given =
        conditioned_query_probability(&doc, &query, &PrxmlConstraint::Holds(evidence.clone()))
            .unwrap();
    let p_given_not =
        conditioned_query_probability(&doc, &query, &PrxmlConstraint::Violated(evidence)).unwrap();
    let reconstructed = p_given * p_evidence + p_given_not * (1.0 - p_evidence);
    assert!((reconstructed - p_query).abs() < 1e-9);
}

/// Conditioning on a correlated observation shifts probabilities exactly as
/// the shared event dictates; a world-enumeration cross-check over the
/// document's variables confirms it.
#[test]
fn prxml_conditioning_tracks_shared_events() {
    let doc = PrXmlDocument::figure1_example();
    // Observing the place of birth is equivalent to observing eJane = true,
    // so the surname becomes certain.
    let conditioned = conditioned_query_probability(
        &doc,
        &PrxmlQuery::LabelExists("Manning".into()),
        &PrxmlConstraint::Holds(PrxmlQuery::LabelExists("Crescent".into())),
    )
    .unwrap();
    assert!((conditioned - 1.0).abs() < 1e-9);
    // The cheap event-conditioning route gives the same number.
    let mut fixed = doc.clone();
    stuc::prxml::constraints::condition_on_event(&mut fixed, "eJane", true).unwrap();
    let via_event = query_probability(&fixed, &PrxmlQuery::LabelExists("Manning".into())).unwrap();
    assert!((conditioned - via_event).abs() < 1e-9);
}

/// The uniform-linear-extension model and the world enumeration agree on a
/// first-position query for a merged pair of rankings.
#[test]
fn rank_distribution_matches_world_enumeration() {
    let first = PoRelation::totally_ordered(vec![vec!["a1".into()], vec!["a2".into()]]);
    let second = PoRelation::totally_ordered(vec![vec!["b1".into()], vec!["b2".into()]]);
    let merged = stuc::order::posra::union_parallel(&first, &second);
    let distribution = LinearExtensionDistribution::new(&merged).unwrap();
    let extensions = merged.linear_extensions().unwrap();
    let a1 = merged.elements().find(|(_, t)| t[0] == "a1").unwrap().0;
    let by_enumeration =
        extensions.iter().filter(|ext| ext[0] == a1).count() as f64 / extensions.len() as f64;
    let by_distribution = distribution.rank_distribution(a1)[0];
    assert!((by_enumeration - by_distribution).abs() < 1e-12);
    // And both agree with the symmetric answer: each chain's head is equally
    // likely to open the merged ranking.
    assert!((by_distribution - 0.5).abs() < 1e-12);
}

/// A Datalog query over derived relations agrees with brute-force possible
/// world enumeration of the TID instance.
#[test]
fn datalog_provenance_matches_world_enumeration() {
    let mut tid = TidInstance::new();
    let probabilities = [0.5, 0.8, 0.3];
    for (i, p) in probabilities.iter().enumerate() {
        tid.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)], *p);
    }
    let program = DatalogProgram::parse(
        "Reach(x, y) :- Edge(x, y)\n\
         Reach(x, z) :- Reach(x, y), Edge(y, z)",
    )
    .unwrap();
    let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
    let lineage = provenance.fact_lineage("Reach", &["v0", "v3"]).unwrap();
    let exact = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();

    // Brute force: enumerate the 2³ worlds and run certain Datalog on each.
    let mut brute_force = 0.0;
    for world in 0u32..8 {
        let mut mass = 1.0;
        let mut instance = stuc::data::instance::Instance::new();
        for (i, p) in probabilities.iter().enumerate() {
            if world & (1 << i) != 0 {
                mass *= p;
                instance.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)]);
            } else {
                mass *= 1.0 - p;
            }
        }
        let saturated = program.evaluate(&instance).unwrap();
        let query = ConjunctiveQuery::parse("Reach(\"v0\", \"v3\")").unwrap();
        if stuc::query::eval::query_holds(&saturated, &query) {
            brute_force += mass;
        }
    }
    assert!((exact - brute_force).abs() < 1e-9);
}

/// Conditioning valuations: the annotated po-relation's possibility
/// probability of the empty sequence plus the probability that something
/// survives must be 1.
#[test]
fn annotated_po_relation_possibility_masses_are_consistent() {
    let mut relation = AnnotatedPoRelation::new();
    relation.add_tuple(vec!["claim".into()], Formula::Var(VarId(0)));
    relation.add_tuple(
        vec!["counter-claim".into()],
        Formula::Var(VarId(0)).negate(),
    );
    let mut weights = Weights::new();
    weights.set(VarId(0), 0.3);
    let empty = relation
        .sequence_possibility_probability(&weights, &[])
        .unwrap();
    // Exactly one of the two tuples survives in every world: the empty
    // sequence is never a possible world.
    assert!(empty.abs() < 1e-12);
    let claim = relation
        .sequence_possibility_probability(&weights, &[vec!["claim".into()]])
        .unwrap();
    let counter = relation
        .sequence_possibility_probability(&weights, &[vec!["counter-claim".into()]])
        .unwrap();
    assert!((claim - 0.3).abs() < 1e-12);
    assert!((counter - 0.7).abs() < 1e-12);
    assert!((relation.expected_size(&weights).unwrap() - 1.0).abs() < 1e-12);
}
