//! Golden protocol check of `stuc-serve`: a fixed request sequence against
//! a fixed program must reproduce `ci/serve_session.golden` byte-exactly —
//! response lines, headers and JSON bodies included.
//!
//! Every response is deterministic by construction: the header set is fixed
//! (no `Date`), probabilities use `{:.9}`, the route/back-end strings are
//! float-free, and the overload message depends only on the configured
//! capacity. The transcript covers the protocol outcomes the service
//! promises: a safe-plan goal, a circuit-bound goal, a typed parse error,
//! a typed `504` for a deadline that expired in the queue, and a typed
//! `503 overload` rejection (with `Retry-After`) from admission control.
//!
//! When a legitimate change alters the transcript, regenerate it with
//! `STUC_GOLDEN_WRITE=1 cargo test --test serve_golden`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::Engine;

const PROGRAM: &str = "\
0.9 :: Train(\"paris\", \"lyon\").\n\
0.8 :: Train(\"lyon\", \"nice\").\n\
Hop(x, y) :- Train(x, y).\n";

fn exchange(addr: SocketAddr, payload: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn post_query(addr: SocketAddr, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// Holds a worker (or queue slot) hostage: declares a body it never sends,
/// so the server blocks reading until the stream is dropped.
fn stall(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 64\r\n\r\npartial")
        .unwrap();
    stream
}

/// The deterministic `503 overload` from a saturated 1-worker/1-slot
/// server: one stalled connection occupies the worker, a second fills the
/// queue, and only then is the probe sent — its rejection is certain, not
/// a race.
fn overload_response() -> String {
    let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
    let server = Server::spawn(
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
        state,
    )
    .unwrap();
    let addr = server.addr();

    let wait_until = |what: &str, ready: &dyn Fn(&stuc::serve::ServeSnapshot) -> bool| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let stats = server.stats();
            if ready(&stats) {
                break;
            }
            assert!(Instant::now() < deadline, "server never {what}: {stats:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    // Two steps, each confirmed before the next, so neither hostage is
    // itself rejected: the worker must hold the first before the second
    // occupies the queue's only slot.
    let hostage_worker = stall(addr);
    wait_until("picked up the first hostage", &|s| {
        s.in_flight == 1 && s.queued == 0
    });
    let hostage_queue = stall(addr);
    wait_until("queued the second hostage", &|s| s.queued == 1);

    let rejected = post_query(addr, "?- Train(x, y).");
    drop(hostage_worker);
    drop(hostage_queue);
    server.shutdown();
    rejected
}

#[test]
fn scripted_session_matches_the_golden_transcript() {
    let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
    let server = Server::spawn(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        state,
    )
    .unwrap();
    let addr = server.addr();

    let mut transcript = String::new();
    let mut record = |label: &str, response: String| {
        transcript.push_str(&format!(">>> {label}\n{response}\n\n"));
    };
    record(
        "GET /health",
        exchange(addr, "GET /health HTTP/1.1\r\n\r\n"),
    );
    record(
        "POST /query ?- Train(x, y).  (safe plan)",
        post_query(addr, "?- Train(x, y)."),
    );
    record(
        "POST /query ?- Hop(x, y), Hop(y, z).  (circuit)",
        post_query(addr, "?- Hop(x, y), Hop(y, z)."),
    );
    // The explanation is evaluated *after* the query it annotates, so it
    // reports the cache the run just warmed — the same provenance a warm
    // re-run would see. The previous exchange compiled this goal's
    // lineage, making the whole explain body deterministic.
    record(
        "POST /query?explain=1 ?- Hop(x, y), Hop(y, z).  (explain)",
        {
            let body = "?- Hop(x, y), Hop(y, z).";
            exchange(
                addr,
                &format!(
                    "POST /query?explain=1 HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                ),
            )
        },
    );
    record(
        "POST /query ?- Train(x  (parse error)",
        post_query(addr, "?- Train(x"),
    );
    // A zero deadline, anchored at accept time, has always expired by the
    // time a worker dequeues the connection — the typed 504 is certain.
    record(
        "POST /query?deadline_ms=0 ?- Train(x, y).  (deadline expired in queue)",
        exchange(
            addr,
            "POST /query?deadline_ms=0 HTTP/1.1\r\nContent-Length: 15\r\n\r\n?- Train(x, y).",
        ),
    );
    record(
        "GET /nope  (unknown endpoint)",
        exchange(addr, "GET /nope HTTP/1.1\r\n\r\n"),
    );
    server.shutdown();
    record(
        "POST /query against a saturated server  (overload)",
        overload_response(),
    );

    let path = format!("{}/ci/serve_session.golden", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("STUC_GOLDEN_WRITE").is_some() {
        std::fs::write(&path, &transcript).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("read ci/serve_session.golden");
    assert_eq!(
        transcript, golden,
        "serve transcript diverged from ci/serve_session.golden; regenerate it if the change is intended"
    );
}

#[test]
fn the_serve_binary_help_flag_prints_usage() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_stuc-serve"))
        .arg("--help")
        .output()
        .expect("run stuc-serve --help");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("usage: stuc-serve"));
    assert!(text.contains("--queue"));
}

#[test]
fn the_serve_binary_serves_a_program_file_end_to_end() {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_stuc-serve"))
        .args(["--addr", "127.0.0.1:0", "examples/trips.stuc"])
        .current_dir(root)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn stuc-serve");

    // The banner carries the bound address (port 0 = ephemeral).
    let mut stdout = child.stdout.take().unwrap();
    let mut banner = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).unwrap() == 1 && byte[0] != b'\n' {
        banner.push(byte[0]);
    }
    let banner = String::from_utf8(banner).unwrap();
    let addr: SocketAddr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|addr| addr.parse().ok())
        .unwrap_or_else(|| panic!("no address in banner: {banner}"));

    let answer = post_query(addr, "?- Hop(x, y).");
    child.kill().unwrap();
    let _ = child.wait();
    assert!(answer.contains("200 OK"), "{answer}");
    assert!(answer.contains("\"probability\":0.960000000"), "{answer}");
}
