//! The concurrency contract of the shared engine: one `Arc<Engine>` hammered
//! by many threads returns exactly the same probabilities as a fresh
//! single-threaded engine, on every representation and every entry point.
//!
//! The engine's caches are sharded and published first-writer-wins, so
//! concurrent evaluation involves real races (two threads compiling the same
//! lineage, a hit validating against an entry another thread just published).
//! These tests drive those races on a time-sliced scheduler and check the
//! only observable that matters: answers never change, and the cache-hit
//! counters prove the threads actually shared compiled state rather than
//! each working in isolation.
//!
//! CI runs this suite with `--test-threads=8` in release mode so the tests
//! themselves also overlap.

use std::sync::Arc;
use stuc::circuit::weights::Weights;
use stuc::core::workloads;
use stuc::data::cinstance::CInstance;
use stuc::data::instance::FactId;
use stuc::data::pcc::PccInstance;
use stuc::data::tid::TidInstance;
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

const THREADS: usize = 8;
const ROUNDS: usize = 12;

/// Everything the worker threads share, plus the single-threaded oracle
/// answer for each operation, computed on a fresh engine up front.
struct Fixture {
    tid: TidInstance,
    chain: ConjunctiveQuery,
    chain3: ConjunctiveQuery,
    scan: ConjunctiveQuery,
    what_if: Weights,
    pc: stuc::data::cinstance::PcInstance,
    pc_query: ConjunctiveQuery,
    pcc: PccInstance,
    pcc_query: ConjunctiveQuery,
    doc: PrXmlDocument,
    doc_query: PrxmlQuery,
    program: &'static str,
    oracle: OracleAnswers,
}

struct OracleAnswers {
    tid_chain: f64,
    tid_chain3: f64,
    tid_scan: f64,
    tid_what_if: f64,
    pc: f64,
    pcc: f64,
    prxml: f64,
    text: f64,
}

const PROGRAM: &str = "Hop(x, y) :- R(x, y).  ?- Hop(x, y), Hop(y, z).";

fn fixture() -> Fixture {
    let tid = workloads::path_tid(8, 0.5, 11);
    let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    // A second circuit-bound query on the *same* instance: its lineage key
    // differs from `chain`'s, so evaluating it misses the lineage cache but
    // hits the shared per-instance decomposition — the sharing the final
    // counter assertions pin down.
    let chain3 = ConjunctiveQuery::parse("R(x, y), R(y, z), R(z, w)").unwrap();
    let scan = ConjunctiveQuery::parse("R(x, y)").unwrap();
    let mut certain = tid.clone();
    for i in 0..certain.fact_count() {
        certain.set_probability(FactId(i), 0.9);
    }
    let what_if = certain.fact_weights();

    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut pc_weights = Weights::new();
    pc_weights.set(pods, 0.8);
    pc_weights.set(stoc, 0.3);
    let pc = ci.with_probabilities(pc_weights);
    let pc_query = ConjunctiveQuery::parse("Trip(x, \"Paris_CDG\")").unwrap();

    let pcc = workloads::contributor_pcc(6, 3, 0.8, 0.9, 7);
    let pcc_query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();

    let doc = PrXmlDocument::figure1_example();
    let doc_query = PrxmlQuery::LabelExists("musician".into());

    // Single-threaded oracle: a fresh engine per answer, no shared caches.
    let oracle = OracleAnswers {
        tid_chain: Engine::new().evaluate(&tid, &chain).unwrap().probability,
        tid_chain3: Engine::new().evaluate(&tid, &chain3).unwrap().probability,
        tid_scan: Engine::new().evaluate(&tid, &scan).unwrap().probability,
        tid_what_if: Engine::new()
            .reevaluate_with_weights(&tid, &chain, &what_if)
            .unwrap()
            .probability,
        pc: Engine::new().evaluate(&pc, &pc_query).unwrap().probability,
        pcc: Engine::new()
            .evaluate(&pcc, &pcc_query)
            .unwrap()
            .probability,
        prxml: Engine::new()
            .evaluate(&doc, &doc_query)
            .unwrap()
            .probability,
        text: Engine::new().evaluate_text(&tid, PROGRAM).unwrap().goals[0].probability,
    };

    Fixture {
        tid,
        chain,
        chain3,
        scan,
        what_if,
        pc,
        pc_query,
        pcc,
        pcc_query,
        doc,
        doc_query,
        program: PROGRAM,
        oracle,
    }
}

/// One operation of the mix; returns `(observed, expected, label)`.
fn run_op(engine: &Engine, fx: &Fixture, op: usize) -> (f64, f64, &'static str) {
    match op % 8 {
        0 => (
            engine.evaluate(&fx.tid, &fx.chain).unwrap().probability,
            fx.oracle.tid_chain,
            "tid/chain",
        ),
        7 => (
            engine.evaluate(&fx.tid, &fx.chain3).unwrap().probability,
            fx.oracle.tid_chain3,
            "tid/chain3",
        ),
        1 => (
            engine.evaluate(&fx.tid, &fx.scan).unwrap().probability,
            fx.oracle.tid_scan,
            "tid/scan",
        ),
        2 => (
            engine
                .reevaluate_with_weights(&fx.tid, &fx.chain, &fx.what_if)
                .unwrap()
                .probability,
            fx.oracle.tid_what_if,
            "tid/what-if",
        ),
        3 => (
            engine.evaluate(&fx.pc, &fx.pc_query).unwrap().probability,
            fx.oracle.pc,
            "pc-instance",
        ),
        4 => (
            engine.evaluate(&fx.pcc, &fx.pcc_query).unwrap().probability,
            fx.oracle.pcc,
            "pcc-instance",
        ),
        5 => (
            engine.evaluate(&fx.doc, &fx.doc_query).unwrap().probability,
            fx.oracle.prxml,
            "prxml",
        ),
        _ => (
            engine.evaluate_text(&fx.tid, fx.program).unwrap().goals[0].probability,
            fx.oracle.text,
            "text",
        ),
    }
}

#[test]
fn shared_engine_agrees_with_single_threaded_oracle_under_contention() {
    let fx = Arc::new(fixture());
    let engine = Arc::new(Engine::new());
    // Warm the TID decomposition once: the first concurrent `chain3`
    // evaluation then *deterministically* misses the lineage cache while
    // hitting this shared decomposition, whatever the schedule — the
    // counters below rely on it.
    engine.evaluate(&fx.tid, &fx.chain).unwrap();

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let fx = Arc::clone(&fx);
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger the starting op per thread so every round has
                    // several threads inside the *same* operation (same cache
                    // keys, racing) and several in different ones.
                    let (observed, expected, label) = run_op(&engine, &fx, thread + round);
                    assert!(
                        (observed - expected).abs() < 1e-9,
                        "thread {thread} round {round} {label}: {observed} vs oracle {expected}"
                    );
                }
            });
        }
    });

    // The point of sharing one engine: later threads must have been served
    // from caches populated by earlier ones. 8 threads x 12 rounds touch the
    // lineage cache far more often than the handful of distinct keys in the
    // mix, so hits must dominate.
    let stats = engine.cache_stats();
    assert!(
        stats.lineages.hits > 0,
        "no lineage-cache sharing happened: {stats:?}"
    );
    assert!(
        stats.decompositions.hits > 0,
        "no decomposition-cache sharing happened: {stats:?}"
    );
    assert!(
        stats.lineages.hits > stats.lineages.misses,
        "threads mostly recompiled instead of sharing: {stats:?}"
    );
}

#[test]
fn evaluate_batch_through_a_shared_reference_matches_oracle() {
    let fx = fixture();
    let engine = Engine::new();
    // 32 queries, only 2 distinct — the batch path dedups and the racing
    // workers publish first-writer-wins.
    let queries: Vec<ConjunctiveQuery> = (0..32)
        .map(|i| {
            if i % 2 == 0 {
                fx.chain.clone()
            } else {
                fx.scan.clone()
            }
        })
        .collect();
    let batch = engine.evaluate_batch(&fx.tid, &queries);
    assert_eq!(batch.reports.len(), 32);
    for (i, report) in batch.reports.iter().enumerate() {
        let report = report.as_ref().unwrap();
        let expected = if i % 2 == 0 {
            fx.oracle.tid_chain
        } else {
            fx.oracle.tid_scan
        };
        assert!(
            (report.probability - expected).abs() < 1e-9,
            "batch slot {i}: {} vs oracle {expected}",
            report.probability
        );
    }
}

#[test]
fn concurrent_first_evaluations_race_cleanly_on_a_cold_engine() {
    // Every thread starts on the same key of a cold engine: the maximal
    // publish race. All must return the oracle answer, and afterwards the
    // cache holds exactly one entry per distinct key.
    let fx = Arc::new(fixture());
    let engine = Arc::new(Engine::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let fx = Arc::clone(&fx);
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let report = engine.evaluate(&fx.tid, &fx.chain).unwrap();
                assert!((report.probability - fx.oracle.tid_chain).abs() < 1e-9);
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.lineages.entries, 1,
        "racing publishes must collapse to one resident entry: {stats:?}"
    );
}
