//! Cache capacity bounds under churn.
//!
//! The engine's two caches (structure decompositions, compiled lineages)
//! promise to stay within `cache_capacity` no matter how many distinct
//! instances and queries stream through, and to evict oldest-first (FIFO) —
//! churn must never evict the entry that was just inserted.

use proptest::prelude::*;
use stuc::core::workloads;
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

fn chain_query(length: usize) -> ConjunctiveQuery {
    let atoms: Vec<String> = (0..length)
        .map(|i| format!("R(x{i}, x{})", i + 1))
        .collect();
    ConjunctiveQuery::parse(&atoms.join(", ")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Neither cache ever exceeds its capacity while distinct instances and
    /// queries churn through the engine.
    #[test]
    fn caches_never_exceed_capacity_under_churn(capacity in 1usize..6, rounds in 4usize..16, seed in 0u64..300) {
        let engine = Engine::builder().cache_capacity(capacity).build();
        let query = chain_query(2);
        for round in 0..rounds {
            // Distinct instance per round (size and seed vary), so every
            // evaluation is a fresh fingerprint.
            let tid = workloads::path_tid(3 + (round % 5), 0.5, seed + round as u64);
            engine.evaluate(&tid, &query).unwrap();
            prop_assert!(engine.cached_decompositions() <= capacity,
                "decomposition cache {} exceeds capacity {}", engine.cached_decompositions(), capacity);
            prop_assert!(engine.cached_lineages() <= capacity,
                "lineage cache {} exceeds capacity {}", engine.cached_lineages(), capacity);
        }
    }

    /// Same bound when one instance churns through many distinct queries
    /// (the lineage cache is keyed per query).
    #[test]
    fn lineage_cache_bounded_across_queries(capacity in 1usize..5, queries in 3usize..10) {
        let engine = Engine::builder().cache_capacity(capacity).build();
        let tid = workloads::path_tid(12, 0.5, 7);
        for len in 2..2 + queries {
            engine.evaluate(&tid, &chain_query(len)).unwrap();
            prop_assert!(engine.cached_lineages() <= capacity);
        }
        prop_assert!(engine.cached_decompositions() <= capacity);
    }
}

#[test]
fn eviction_is_oldest_first() {
    // Capacity 2: after evaluating instances A, B, C, the survivor set must
    // be {B, C} — the newest entries — never contain A.
    let engine = Engine::builder().cache_capacity(2).build();
    let query = chain_query(2);
    let a = workloads::path_tid(4, 0.5, 100);
    let b = workloads::path_tid(5, 0.5, 200);
    let c = workloads::path_tid(6, 0.5, 300);
    engine.evaluate(&a, &query).unwrap();
    engine.evaluate(&b, &query).unwrap();
    engine.evaluate(&c, &query).unwrap();
    assert_eq!(engine.cached_decompositions(), 2);
    assert_eq!(engine.cached_lineages(), 2);

    // The two newest instances hit; the oldest was the one evicted.
    assert!(engine.evaluate(&c, &query).unwrap().lineage_cached);
    assert!(engine.evaluate(&b, &query).unwrap().lineage_cached);
    assert!(!engine.evaluate(&a, &query).unwrap().lineage_cached);
}

#[test]
fn newest_entry_survives_every_insertion() {
    // FIFO sanity: immediately after inserting an entry, it must be
    // resident — churn may never evict the entry it just added.
    let engine = Engine::builder().cache_capacity(1).build();
    let query = chain_query(2);
    for seed in 0..6 {
        let tid = workloads::path_tid(5, 0.5, seed);
        let first = engine.evaluate(&tid, &query).unwrap();
        assert!(!first.lineage_cached);
        let second = engine.evaluate(&tid, &query).unwrap();
        assert!(
            second.lineage_cached,
            "the just-inserted entry must still be resident (seed {seed})"
        );
    }
}

#[test]
fn capacity_zero_disables_caching_entirely() {
    let engine = Engine::builder().cache_capacity(0).build();
    let tid = workloads::path_tid(6, 0.5, 3);
    let query = chain_query(2);
    engine.evaluate(&tid, &query).unwrap();
    engine.evaluate(&tid, &query).unwrap();
    assert_eq!(engine.cached_decompositions(), 0);
    assert_eq!(engine.cached_lineages(), 0);
}

#[test]
fn updates_respect_capacity_bounds() {
    use stuc::data::instance::FactId;
    use stuc::incr::Delta;
    // Patched entries re-enter through the same bounded insert: capacity
    // holds across an update storm.
    let engine = Engine::builder().cache_capacity(2).build();
    let query = chain_query(2);
    let mut tid = workloads::path_tid(6, 0.5, 17);
    engine.evaluate(&tid, &query).unwrap();
    for i in 0..8 {
        let delta =
            Delta::new().set_probability(FactId(i % tid.fact_count()), 0.1 + 0.1 * (i % 9) as f64);
        engine.apply_update(&mut tid, &delta).unwrap();
        assert!(engine.cached_decompositions() <= 2);
        assert!(engine.cached_lineages() <= 2);
        assert!(engine.evaluate(&tid, &query).unwrap().lineage_cached);
    }
}
