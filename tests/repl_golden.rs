//! Golden-output check of the `stuc-repl` binary: the scripted session in
//! `ci/repl_session.in` must reproduce `ci/repl_session.golden` exactly.
//!
//! Everything the REPL prints without `--timing` is deterministic by
//! construction — probabilities use fixed-width `{:.9}` formatting, the
//! cost-model summaries are float-free, and gate/width counts come from
//! deterministic compilation — so byte equality is the right bar. When a
//! legitimate change alters the transcript, regenerate it with
//! `./target/debug/stuc-repl < ci/repl_session.in > ci/repl_session.golden`.

use std::io::Write;
use std::process::{Command, Stdio};

#[test]
fn scripted_session_matches_the_golden_transcript() {
    let root = env!("CARGO_MANIFEST_DIR");
    let script = std::fs::read_to_string(format!("{root}/ci/repl_session.in")).unwrap();
    let golden = std::fs::read_to_string(format!("{root}/ci/repl_session.golden")).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_stuc-repl"))
        .current_dir(root) // `:load examples/trips.stuc` is root-relative
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stuc-repl");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let output = child.wait_with_output().expect("wait for stuc-repl");

    assert!(
        output.status.success(),
        "stuc-repl exited with {:?}; stderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let transcript = String::from_utf8(output.stdout).expect("transcript is UTF-8");
    assert_eq!(
        transcript, golden,
        "REPL transcript diverged from ci/repl_session.golden; regenerate it if the change is intended"
    );
}

#[test]
fn the_help_flag_prints_usage_and_exits_cleanly() {
    let output = Command::new(env!("CARGO_BIN_EXE_stuc-repl"))
        .arg("--help")
        .output()
        .expect("run stuc-repl --help");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("usage: stuc-repl"));
    assert!(text.contains(":load"));
}

#[test]
fn a_program_file_argument_is_loaded_before_the_loop() {
    let root = env!("CARGO_MANIFEST_DIR");
    let mut child = Command::new(env!("CARGO_BIN_EXE_stuc-repl"))
        .arg("examples/trips.stuc")
        .current_dir(root)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn stuc-repl");
    child.stdin.take().unwrap(); // closing stdin ends the loop
    let output = child.wait_with_output().expect("wait for stuc-repl");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("loading examples/trips.stuc"));
    assert!(text.contains("= 0.480000000"));
}
