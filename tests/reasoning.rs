//! Cross-crate coherence tests for the reasoning stack: Datalog versus the
//! certain chase, Datalog provenance versus CQ lineage, truncation versus the
//! exact chase, rule mining on saturated data, and PrXML constraint algebra.

use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::data::instance::Instance;
use stuc::data::tid::TidInstance;
use stuc::prxml::constraints::{
    conditioned_query_probability, constraint_probability, PrxmlConstraint,
};
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::datalog::DatalogProgram;
use stuc::query::datalog_provenance::DatalogProvenance;
use stuc::query::eval::query_holds;
use stuc::query::lineage::tid_lineage;
use stuc::rules::constraints::HardConstraints;
use stuc::rules::mining::RuleMiner;
use stuc::rules::truncation::TruncatedChase;
use stuc::rules::{ProbabilisticChase, Rule};

fn flight_edges() -> Vec<(&'static str, &'static str)> {
    vec![
        ("CDG", "MEL"),
        ("MEL", "PDX"),
        ("CDG", "JFK"),
        ("JFK", "PDX"),
    ]
}

/// The Datalog fixpoint and the hard-constraint chase compute the same
/// completion for existential-free rules.
#[test]
fn datalog_and_certain_chase_agree_on_transitive_closure() {
    let mut instance = Instance::new();
    for (from, to) in flight_edges() {
        instance.add_fact_named("Edge", &[from, to]);
    }
    let program = DatalogProgram::parse(
        "Reach(x, y) :- Edge(x, y)\n\
         Reach(x, z) :- Reach(x, y), Edge(y, z)",
    )
    .unwrap();
    let by_datalog = program.evaluate(&instance).unwrap();

    let rules = vec![
        Rule::parse("Reach(x, y) :- Edge(x, y)", 1.0).unwrap(),
        Rule::parse("Reach(x, z) :- Reach(x, y), Edge(y, z)", 1.0).unwrap(),
    ];
    let by_chase = HardConstraints::new(rules).saturate(&instance).unwrap();

    assert_eq!(by_datalog.fact_count(), by_chase.fact_count());
    for (from, to) in [("CDG", "PDX"), ("CDG", "MEL"), ("MEL", "PDX")] {
        let query = ConjunctiveQuery::parse(&format!("Reach(\"{from}\", \"{to}\")")).unwrap();
        assert_eq!(
            query_holds(&by_datalog, &query),
            query_holds(&by_chase, &query)
        );
    }
    let absent = ConjunctiveQuery::parse("Reach(\"PDX\", \"CDG\")").unwrap();
    assert!(!query_holds(&by_datalog, &absent));
    assert!(!query_holds(&by_chase, &absent));
}

/// For a non-recursive program whose single rule mirrors a CQ, the Datalog
/// provenance of the goal equals the classical CQ lineage.
#[test]
fn datalog_provenance_equals_cq_lineage_for_nonrecursive_programs() {
    let mut tid = TidInstance::new();
    for (i, (from, to)) in flight_edges().into_iter().enumerate() {
        tid.add_fact_named("Edge", &[from, to], 0.3 + 0.1 * i as f64);
    }
    let program = DatalogProgram::parse("TwoHop(x, z) :- Edge(x, y), Edge(y, z)").unwrap();
    let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
    let goal = ConjunctiveQuery::parse("TwoHop(x, z)").unwrap();
    let via_datalog =
        probability_by_enumeration(&provenance.query_lineage(&goal), &tid.fact_weights()).unwrap();
    let cq = ConjunctiveQuery::parse("Edge(x, y), Edge(y, z)").unwrap();
    let via_lineage =
        probability_by_enumeration(&tid_lineage(&tid, &cq), &tid.fact_weights()).unwrap();
    assert!((via_datalog - via_lineage).abs() < 1e-9);
}

/// On a terminating rule set, the truncated chase driven to convergence
/// reports exactly the untruncated probability with zero certified error.
#[test]
fn truncation_converges_to_the_exact_chase() {
    let rules = vec![
        Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap(),
        Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.7).unwrap(),
    ];
    let mut tid = TidInstance::new();
    tid.add_fact_named("Citizen", &["alice", "france"], 0.9);
    tid.add_fact_named("Citizen", &["bob", "japan"], 0.5);
    tid.add_fact_named("OfficialLanguage", &["france", "french"], 1.0);
    tid.add_fact_named("OfficialLanguage", &["japan", "japanese"], 1.0);
    let query = ConjunctiveQuery::parse("Speaks(x, l)").unwrap();

    let exact = ProbabilisticChase::new(rules.clone())
        .run(&tid)
        .unwrap()
        .query_probability(&query)
        .unwrap();
    let report = TruncatedChase::new(rules)
        .evaluate_until(&tid, &query, 1e-9, 10)
        .unwrap();
    assert!(report.converged);
    assert!(report.error() < 1e-9);
    assert!((report.lower_bound - exact).abs() < 1e-9);
}

/// Mining on a Datalog-saturated instance discovers the rule that produced
/// the derived relation, with confidence 1.
#[test]
fn mining_rediscovers_the_saturating_rule() {
    let mut instance = Instance::new();
    for (from, to) in flight_edges() {
        instance.add_fact_named("Edge", &[from, to]);
    }
    let program = DatalogProgram::parse("Reach(x, y) :- Edge(x, y)").unwrap();
    let saturated = program.evaluate(&instance).unwrap();
    let miner = RuleMiner {
        min_support: 2,
        min_confidence: 0.9,
        mine_path_rules: false,
    };
    let mined = miner.mine(&saturated);
    let rediscovered = mined.iter().find(|m| {
        m.rule.head[0].relation == "Reach"
            && m.rule.body[0].relation == "Edge"
            && m.rule.head[0].args == m.rule.body[0].args
    });
    let rediscovered = rediscovered.expect("Reach(x, y) :- Edge(x, y) should be mined back");
    assert!((rediscovered.confidence() - 1.0).abs() < 1e-9);
    assert_eq!(rediscovered.support, flight_edges().len());
}

/// The PrXML constraint algebra is coherent: conjunction of observations via
/// `All` equals conditioning on the conjunction query, and chained Bayes
/// factors multiply.
#[test]
fn prxml_constraint_conjunction_is_coherent() {
    let doc = PrXmlDocument::figure1_example();
    let musician = PrxmlQuery::LabelExists("musician".into());
    let manning = PrxmlQuery::LabelExists("Manning".into());
    let both_constraint = PrxmlConstraint::All(vec![
        PrxmlConstraint::Holds(musician.clone()),
        PrxmlConstraint::Holds(manning.clone()),
    ]);
    let p_both = constraint_probability(&doc, &both_constraint).unwrap();
    let p_and_query = constraint_probability(
        &doc,
        &PrxmlConstraint::Holds(PrxmlQuery::And(
            Box::new(musician.clone()),
            Box::new(manning.clone()),
        )),
    )
    .unwrap();
    // The two facts are independent (ind edge versus eJane): 0.4 · 0.9.
    assert!((p_both - 0.36).abs() < 1e-9);
    assert!((p_both - p_and_query).abs() < 1e-9);

    // Conditioning the Chelsea query on both observations at once equals
    // conditioning on either one alone (all three are mutually independent).
    let chelsea = PrxmlQuery::LabelExists("Chelsea".into());
    let conditioned_on_both =
        conditioned_query_probability(&doc, &chelsea, &both_constraint).unwrap();
    let unconditioned = conditioned_query_probability(
        &doc,
        &chelsea,
        &PrxmlConstraint::AtLeast {
            label: "Q298423".into(),
            min: 1,
        },
    )
    .unwrap();
    assert!((conditioned_on_both - unconditioned).abs() < 1e-9);
    assert!((conditioned_on_both - 0.6).abs() < 1e-9);
}

/// Soft completion with mined rules never reports a probability above the
/// hard-rule certainty judgement: if the soft chase gives probability 1, the
/// hard chase must agree that the fact is certain.
#[test]
fn soft_and_hard_completions_are_consistent_at_the_extremes() {
    let rule = Rule::parse("Lives(x, y) :- Citizen(x, y)", 1.0).unwrap();
    let mut tid = TidInstance::new();
    tid.add_fact_named("Citizen", &["alice", "france"], 1.0);
    let query = ConjunctiveQuery::parse("Lives(\"alice\", \"france\")").unwrap();
    let soft = ProbabilisticChase::new(vec![rule.clone()])
        .run(&tid)
        .unwrap()
        .query_probability(&query)
        .unwrap();
    let hard = HardConstraints::new(vec![rule])
        .certain(tid.instance(), &query)
        .unwrap();
    assert!((soft - 1.0).abs() < 1e-9);
    assert!(hard);
}
