//! `/metrics` under fault injection: arming every named failpoint — panics,
//! injected errors, slow-downs — must never poison the metrics registry.
//! After each fault scenario the full Prometheus exposition must still
//! render, parse, and contain every metric family it contained before the
//! fault (families only ever accumulate; a fault must not wedge a registry
//! lock or tear a family mid-registration).
//!
//! Runs only with `--features fault-injection` (the registry does not exist
//! otherwise); CI's chaos job picks it up alongside `tests/chaos.rs`.

#![cfg(feature = "fault-injection")]

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use stuc::fault::failpoint::{self, FailAction};
use stuc::obs::registry;
use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::Engine;

/// An 8-hop train line: long enough that every scenario below can use a
/// structurally distinct chain query (distinct lineage cache keys), so the
/// compile/decompose/publish failpoints are actually reached every time.
fn program() -> String {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("0.9 :: Train(\"n{}\", \"n{}\").\n", i, i + 1));
    }
    src.push_str("Hop(x, y) :- Train(x, y).\n");
    src
}

/// A chain goal of `len` hops — each length is a different query structure.
fn chain_goal(len: usize) -> String {
    let atoms: Vec<String> = (0..len)
        .map(|i| format!("Hop(x{}, x{})", i, i + 1))
        .collect();
    format!("?- {}.", atoms.join(", "))
}

fn exchange(addr: SocketAddr, payload: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    let mut response = String::new();
    // A fault may close the connection without a response; empty is fine.
    let _ = stream.read_to_string(&mut response);
    response
}

fn post_query(addr: SocketAddr, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// Strict-enough Prometheus text-format check: every line is a `# HELP`,
/// a `# TYPE` with a known kind, or a `name[{labels}] value` sample whose
/// value parses as a float. Returns the set of declared families.
fn parse_prometheus(text: &str) -> BTreeSet<String> {
    let mut families = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("TYPE line names a family");
            let kind = parts.next().expect("TYPE line names a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric kind in {line:?}"
            );
            families.insert(family.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line {line:?}");
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line {line:?} has no value");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "sample value does not parse in {line:?}"
        );
        let name = name_part.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "malformed sample name in {line:?}"
        );
        // The sample must belong to some declared family (histograms emit
        // `_bucket`/`_sum`/`_count` suffixes on the family name).
        let belongs = families.iter().any(|f| {
            name == f
                || name == format!("{f}_bucket")
                || name == format!("{f}_sum")
                || name == format!("{f}_count")
        });
        assert!(belongs, "sample {name:?} precedes/lacks its # TYPE family");
    }
    families
}

#[test]
fn every_failpoint_leaves_the_metrics_registry_parseable() {
    let server = Server::spawn(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        ServiceState::from_program(Engine::new(), &program()).unwrap(),
    )
    .unwrap();
    let addr = server.addr();

    // Warm one query through so the engine/serve families all exist.
    let warm = post_query(addr, &chain_goal(2));
    assert!(warm.contains("200 OK"), "warm-up failed: {warm}");
    let scrape = exchange(addr, "GET /metrics HTTP/1.1\r\n\r\n");
    let baseline = parse_prometheus(scrape.split("\r\n\r\n").nth(1).unwrap_or(""));
    assert!(
        !baseline.is_empty(),
        "warm-up registered no metric families"
    );

    // Every planted failpoint, with an action that actually exercises its
    // failure path where the isolation contract allows it: injected errors
    // at fallible sites, panics where a boundary catches them, a sleep on
    // the acceptor (an acceptor panic would kill the listener for the
    // rest of the test).
    let scenarios: &[(&str, FailAction)] = &[
        ("graph-repair", FailAction::Error("injected".into())),
        ("graph-decompose", FailAction::Panic),
        ("circuit-plan-build", FailAction::Error("injected".into())),
        ("circuit-sweep", FailAction::Error("injected".into())),
        ("lineage-compile", FailAction::Error("injected".into())),
        ("cache-publish", FailAction::Panic),
        ("cache-evict", FailAction::Panic),
        ("serve-accept", FailAction::SleepMs(1)),
        ("serve-read", FailAction::Error("injected".into())),
        ("serve-write", FailAction::Panic),
    ];

    let mut seen = baseline;
    for (round, (name, action)) in scenarios.iter().enumerate() {
        {
            let _armed = failpoint::arm_guard(name, action.clone());
            // A structurally fresh chain per scenario: nothing is cached,
            // so decomposition/compilation/publish all run (and trip).
            let _ = post_query(addr, &chain_goal(3 + round));
        }
        // Disarmed again: the metrics endpoint itself must work, the text
        // must parse, and no family may have vanished.
        let text = exchange(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(text.contains("200 OK"), "/metrics failed after {name}");
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
        let families = parse_prometheus(body);
        for family in &seen {
            assert!(
                families.contains(family),
                "family {family} vanished after failpoint {name}"
            );
        }
        seen = families;
    }

    // And the server still answers exact probabilities after all that.
    let after = post_query(addr, &chain_goal(2));
    assert!(after.contains("200 OK"), "post-chaos query failed: {after}");
    server.shutdown();

    // Direct registry render agrees with what the endpoint served.
    let direct = parse_prometheus(&registry().render_prometheus());
    for family in &seen {
        assert!(direct.contains(family));
    }
}
