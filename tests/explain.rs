//! Integration tests for the EXPLAIN subsystem: `Engine::explain` must
//! *agree* with the `EvaluationReport` of an actual run — same back-end,
//! same decomposition width, same gate count, same cache provenance — on
//! every representation and on all three outcomes (safe-plan, circuit,
//! refused). The text rendering is pinned byte-for-byte so that downstream
//! goldens (REPL session, serve transcript) stay stable.

use stuc::circuit::weights::Weights;
use stuc::core::workloads;
use stuc::data::cinstance::CInstance;
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{BackendKind, Engine, ExplainOutcome, QueryExplanation, StucError};

/// Asserts the explanation and a report of an actual run tell one story.
fn assert_agreement(
    explanation: &QueryExplanation,
    report: &stuc::EvaluationReport,
    context: &str,
) {
    assert_eq!(explanation.backend, report.backend, "{context}: backend");
    match &explanation.circuit {
        Some(circuit) => {
            assert_eq!(circuit.gates, report.circuit_gates, "{context}: gates");
            assert_eq!(
                circuit.decomposition_width, report.decomposition_width,
                "{context}: width"
            );
        }
        None => {
            assert_eq!(
                report.circuit_gates, 0,
                "{context}: safe plan builds no circuit"
            );
            assert_eq!(
                report.decomposition_width, None,
                "{context}: no decomposition"
            );
        }
    }
    let expected_lineage = if explanation.outcome == ExplainOutcome::SafePlan {
        "untouched"
    } else if report.lineage_cached {
        "hit"
    } else {
        "miss"
    };
    assert_eq!(
        explanation.cache.lineage.provenance, expected_lineage,
        "{context}: lineage provenance"
    );
}

#[test]
fn explanations_agree_with_reports_on_all_four_representations() {
    let engine = Engine::new();

    // TID, hierarchical query → safe plan (no circuit, caches untouched).
    let tid = workloads::path_tid(8, 0.5, 11);
    let hierarchical = ConjunctiveQuery::parse("R(x, y)").unwrap();
    let explanation = engine.explain(&tid, &hierarchical).unwrap();
    assert_eq!(explanation.outcome, ExplainOutcome::SafePlan);
    assert_eq!(explanation.stages, vec!["safe-plan"]);
    let report = engine.evaluate(&tid, &hierarchical).unwrap();
    assert_eq!(report.backend, BackendKind::SafePlan);
    assert_agreement(&explanation, &report, "tid safe plan");

    // TID, self-join → circuit. The explain warms the lineage cache, so
    // the evaluation that follows is a cache hit — and a *re*-explain
    // after the run reports that hit, matching the warm report.
    let self_join = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let cold = engine.explain(&tid, &self_join).unwrap();
    assert_eq!(cold.outcome, ExplainOutcome::Circuit);
    assert_eq!(cold.cache.lineage.provenance, "miss");
    let report = engine.evaluate(&tid, &self_join).unwrap();
    assert!(
        report.lineage_cached,
        "explain should have warmed the cache"
    );
    let warm = engine.explain(&tid, &self_join).unwrap();
    assert_eq!(warm.cache.lineage.provenance, "hit");
    assert_eq!(warm.stages, vec!["cache-lookup", "sweep"]);
    assert_agreement(&warm, &report, "tid self-join");

    // pc-instance (Table 1 with real probabilities) → circuit route.
    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);
    let pc = ci.with_probabilities(weights);
    let trip = ConjunctiveQuery::parse("Trip(x, \"Paris_CDG\")").unwrap();
    let explanation = engine.explain(&pc, &trip).unwrap();
    assert!(!explanation.safe_plan.extensional, "pc offers no safe plan");
    let report = engine.evaluate(&pc, &trip).unwrap();
    let warm = engine.explain(&pc, &trip).unwrap();
    assert_agreement(&warm, &report, "pc instance");

    // pcc-instance → circuit route.
    let pcc = workloads::contributor_pcc(5, 2, 0.7, 0.9, 9);
    let claim = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
    engine.explain(&pcc, &claim).unwrap();
    let report = engine.evaluate(&pcc, &claim).unwrap();
    let warm = engine.explain(&pcc, &claim).unwrap();
    assert_agreement(&warm, &report, "pcc instance");

    // PrXML document → circuit route.
    let doc = PrXmlDocument::figure1_example();
    let query = PrxmlQuery::LabelExists("musician".into());
    engine.explain(&doc, &query).unwrap();
    let report = engine.evaluate(&doc, &query).unwrap();
    let warm = engine.explain(&doc, &query).unwrap();
    assert_eq!(warm.representation, "prxml-document");
    assert_agreement(&warm, &report, "prxml document");
}

#[test]
fn refused_explanations_carry_the_exact_error_evaluate_returns() {
    // A pinned safe plan on a self-join: refusal, and the refusal string
    // is byte-identical to the error the evaluation raises.
    let engine = Engine::builder().backend(BackendKind::SafePlan).build();
    let tid = workloads::path_tid(6, 0.5, 3);
    let self_join = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let explanation = engine.explain(&tid, &self_join).unwrap();
    assert_eq!(explanation.outcome, ExplainOutcome::Refused);
    let error = engine.evaluate(&tid, &self_join).unwrap_err();
    assert_eq!(
        explanation.refusal.as_deref(),
        Some(error.to_string().as_str())
    );

    // A pinned safe plan on a representation with no extensional side.
    let doc = PrXmlDocument::figure1_example();
    let query = PrxmlQuery::LabelExists("musician".into());
    let explanation = engine.explain(&doc, &query).unwrap();
    assert_eq!(explanation.outcome, ExplainOutcome::Refused);
    assert!(!explanation.safe_plan.extensional);
    let error = engine.evaluate(&doc, &query).unwrap_err();
    assert_eq!(
        explanation.refusal.as_deref(),
        Some(error.to_string().as_str())
    );

    // A pinned treewidth back-end with an impossible width budget: explain
    // predicts the WidthTooLarge refusal with the same width and limit the
    // evaluation reports.
    let tight = Engine::builder()
        .backend(BackendKind::TreewidthWmc)
        .width_budget(1)
        .build();
    let explanation = tight.explain(&tid, &self_join).unwrap();
    assert_eq!(explanation.outcome, ExplainOutcome::Refused);
    assert_eq!(
        explanation.stages,
        vec!["cache-lookup", "decompose", "compile-lineage"],
        "the sweep never happens on a predicted refusal"
    );
    let error = tight.evaluate(&tid, &self_join).unwrap_err();
    assert!(
        matches!(error, StucError::Wmc(_)),
        "unexpected error {error}"
    );
    assert_eq!(
        explanation.refusal.as_deref(),
        Some(error.to_string().as_str())
    );
}

#[test]
fn the_text_rendering_is_deterministic_and_pinned() {
    // Fresh engine, fixed instance: the rendering must come out the same
    // every run — it feeds the REPL and serve goldens.
    let engine = Engine::new();
    let tid = workloads::path_tid(4, 0.5, 7);
    let src = "?- R(x, y), R(y, z).";
    let first = engine
        .explain_text(&tid, src)
        .unwrap()
        .pop()
        .unwrap()
        .render_text();
    let again = engine
        .explain_text(&tid, src)
        .unwrap()
        .pop()
        .unwrap()
        .render_text();
    assert_ne!(first, again, "the second explain sees the warmed cache");
    let third = engine
        .explain_text(&tid, src)
        .unwrap()
        .pop()
        .unwrap()
        .render_text();
    assert_eq!(again, third, "warm explains are a fixed point");

    // The warm rendering, pinned byte-for-byte. `path_tid(4, ..)` has 4
    // facts and a width-1 structure graph; the self-join lineage compiles
    // to a 10-gate circuit of width 3, well inside the default budget.
    let expected = "\
explain: R(x, y), R(y, z)
representation: tid-instance (4 facts)
policy: auto
plan: circuit — backend treewidth-wmc (circuit width 3 fits the budget 22)
safe plan: extensional=yes hierarchical=yes self-join-free=no
route: route=circuit (some term is non-hierarchical or has self-joins; safe plan inapplicable)
lowering: lowered to 1 inclusion-exclusion term(s) over 1 conjunct(s)
circuit: 10 gates (10 cold), 4 variables, 9 bags, width 3 within budget 22
structure width: 1
sweep plan: 27 nodes, 181 table entries, 3 arena slots
cache: lineage=hit decomposition=hit
stages: lower, route, cache-lookup, sweep
notes:
  - route=circuit (some term is non-hierarchical or has self-joins; safe plan inapplicable)
  - lowered to 1 inclusion-exclusion term(s) over 1 conjunct(s)
  - compiled lineage served from cache
  - lineage width estimate 3 within budget 22; treewidth WMC selected
";
    assert_eq!(again, expected);
}

#[test]
fn goal_explanations_agree_with_text_evaluation_reports() {
    // The text front-end route (cost model + lowering) must match what
    // `evaluate_text` actually does, per goal, on a warmed engine.
    let engine = Engine::new();
    let tid = workloads::path_tid(6, 0.5, 13);
    let src = "?- R(x, y), R(y, z).\n?- R(x, y).";
    let reports = engine.evaluate_text(&tid, src).unwrap();
    let explanations = engine.explain_text(&tid, src).unwrap();
    assert_eq!(reports.len(), explanations.len());
    for (index, (goal, explanation)) in reports.goals.iter().zip(&explanations).enumerate() {
        assert_eq!(
            explanation.route.as_ref().map(|r| r.route),
            goal.report.route,
            "goal {index}: route"
        );
    }
    // Re-evaluate warm so the cache-provenance comparison is meaningful.
    let warm_reports = engine.evaluate_text(&tid, src).unwrap();
    let warm = engine.explain_text(&tid, src).unwrap();
    for (index, (goal, explanation)) in warm_reports.goals.iter().zip(&warm).enumerate() {
        assert_agreement(explanation, &goal.report, &format!("goal {index}"));
    }
}
