//! Property test for the back-end contract: on small random TID workloads
//! from `stuc_core::workloads`, the automatically selected strategy and
//! every explicitly pinned back-end (`TreewidthWmc`, `Dpll`, `Enumeration`)
//! return the same probability within 1e-9. The enumeration back-end is the
//! ground truth (it sums the worlds directly), so this pins both the lineage
//! constructions and the counting algorithms to the semantics.

use proptest::prelude::*;
use stuc::circuit::wmc::WmcError;
use stuc::core::workloads;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{BackendKind, Engine, StucError};

fn agreement(tid: &stuc::data::tid::TidInstance, query: &ConjunctiveQuery) -> Result<(), String> {
    let auto = Engine::new()
        .evaluate(tid, query)
        .map_err(|e| format!("auto failed: {e}"))?;
    for kind in [
        BackendKind::TreewidthWmc,
        BackendKind::Dpll,
        BackendKind::Enumeration,
    ] {
        let pinned = Engine::builder().backend(kind).build();
        let report = match pinned.evaluate(tid, query) {
            // A pinned treewidth back-end may legitimately *refuse* a circuit
            // wider than its budget (Auto falls back to DPLL in that case);
            // the agreement contract only covers answers it actually gives.
            Err(StucError::Wmc(WmcError::WidthTooLarge { .. }))
                if kind == BackendKind::TreewidthWmc =>
            {
                continue;
            }
            other => other.map_err(|e| format!("{kind} failed: {e}"))?,
        };
        if report.backend != kind {
            return Err(format!("pinned {kind} but {} ran", report.backend));
        }
        if (report.probability - auto.probability).abs() > 1e-9 {
            return Err(format!(
                "{kind} disagrees with auto ({}): {} vs {}",
                auto.backend, report.probability, auto.probability
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Path-shaped TIDs: every back-end agrees on the self-join path query
    /// (auto picks treewidth WMC here) and on the single-atom query (auto
    /// picks the safe plan, which the circuit back-ends must match).
    #[test]
    fn backends_agree_on_random_paths(
        n in 2usize..10,
        p in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let tid = workloads::path_tid(n, p, seed);
        for query in ["R(x, y), R(y, z)", "R(x, y)"] {
            let query = ConjunctiveQuery::parse(query).unwrap();
            if let Err(message) = agreement(&tid, &query) {
                prop_assert!(false, "n={n} p={p:.3} seed={seed}: {message}");
            }
        }
    }

    /// Random sparse TIDs (arbitrary shape, possibly cyclic Gaifman graphs):
    /// the same agreement holds with no structural guarantees at all.
    #[test]
    fn backends_agree_on_random_sparse_instances(
        facts in 1usize..12,
        domain in 2usize..6,
        seed in 0u64..1000,
    ) {
        let tid = workloads::random_sparse_tid(facts, domain, seed);
        for query in ["R(x, y), R(y, z)", "R(x, x)", "R(x, y), R(y, x)"] {
            let query = ConjunctiveQuery::parse(query).unwrap();
            if let Err(message) = agreement(&tid, &query) {
                prop_assert!(false, "facts={facts} domain={domain} seed={seed}: {message}");
            }
        }
    }

    /// The paper's hard query on star-shaped data: hierarchical, so auto
    /// takes the extensional safe plan — which must match the intensional
    /// circuit back-ends exactly.
    #[test]
    fn safe_plan_agrees_with_circuit_backends_on_stars(
        hubs in 1usize..5,
        p in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let tid = workloads::rst_star_tid(hubs, p, seed);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let auto = Engine::new().evaluate(&tid, &query).unwrap();
        prop_assert_eq!(auto.backend, BackendKind::SafePlan);
        if let Err(message) = agreement(&tid, &query) {
            prop_assert!(false, "hubs={hubs} p={p:.3} seed={seed}: {message}");
        }
    }
}
