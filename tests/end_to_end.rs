//! Cross-crate integration tests: the full pipelines of the paper exercised
//! through the public façade, with all back-ends cross-checked against each
//! other and against explicit possible-world semantics.

use stuc::circuit::weights::Weights;
use stuc::circuit::wmc::TreewidthWmc;
use stuc::cond::conditioning::conditioned_query_probability;
use stuc::core::workloads;
use stuc::data::cinstance::CInstance;
use stuc::data::instance::FactId;
use stuc::data::tid::TidInstance;
use stuc::data::worlds;
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::{query_probability, query_probability_by_enumeration, PrxmlQuery};
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::lineage::cinstance_lineage;
use stuc::rules::chase::ProbabilisticChase;
use stuc::rules::rule::Rule;
use stuc::{BackendKind, Engine};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

#[test]
fn figure1_probabilities_match_paper_annotations() {
    // The three headline numbers implied by Figure 1: 0.4 (ind occupation),
    // 0.6 / 0.4 (mux given name), 0.9 (eJane correlating two facts).
    let doc = PrXmlDocument::figure1_example();
    let cases = [
        (PrxmlQuery::LabelExists("musician".into()), 0.4),
        (PrxmlQuery::LabelExists("Chelsea".into()), 0.6),
        (PrxmlQuery::LabelExists("Bradley".into()), 0.4),
        (
            PrxmlQuery::And(
                Box::new(PrxmlQuery::LabelExists("place of birth".into())),
                Box::new(PrxmlQuery::LabelExists("surname".into())),
            ),
            0.9,
        ),
    ];
    for (query, expected) in cases {
        let tractable = query_probability(&doc, &query).unwrap();
        let naive = query_probability_by_enumeration(&doc, &query).unwrap();
        assert!(
            close(tractable, expected),
            "{query:?}: {tractable} vs {expected}"
        );
        assert!(close(tractable, naive));
    }
}

#[test]
fn table1_full_workflow_possibility_certainty_probability() {
    let ci = CInstance::table1_example();
    // Possibility / certainty through explicit worlds.
    assert!(worlds::is_possible(&ci, |facts| facts.is_empty()).unwrap());
    assert!(!worlds::is_certain(&ci, |facts| !facts.is_empty()).unwrap());

    // Probability through the lineage + treewidth back-end, cross-checked
    // against world enumeration.
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);
    let query = ConjunctiveQuery::parse("Trip(\"Paris_CDG\", x)").unwrap();
    let lineage = cinstance_lineage(&ci, &query);
    let p = TreewidthWmc::default()
        .probability(&lineage, &weights)
        .unwrap();

    let pc = ci.clone().with_probabilities(weights);
    let cdg = pc.instance().find_constant("Paris_CDG").unwrap();
    let reference = worlds::query_probability(&pc, |facts| {
        facts
            .iter()
            .any(|&f| pc.instance().fact(f).args.first() == Some(&cdg))
    })
    .unwrap();
    assert!(close(p, reference));
    assert!(close(p, 0.86));
}

#[test]
fn theorem1_pipeline_agrees_with_all_baselines() {
    let engine = Engine::new();
    let dpll = Engine::builder().backend(BackendKind::Dpll).build();
    let brute_force = Engine::builder().backend(BackendKind::Enumeration).build();
    let queries = [
        ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap(),
        ConjunctiveQuery::parse("R(x, y)").unwrap(),
    ];
    for seed in 0..3 {
        let tid = workloads::path_tid(10, 0.4, seed);
        for query in &queries {
            let exact = engine.evaluate(&tid, query).unwrap().probability;
            let dpll = dpll.evaluate(&tid, query).unwrap().probability;
            let brute = brute_force.evaluate(&tid, query).unwrap().probability;
            assert!(close(exact, dpll), "seed {seed}: {exact} vs {dpll}");
            assert!(close(exact, brute), "seed {seed}: {exact} vs {brute}");
        }
    }
}

#[test]
fn unsafe_query_tractable_on_tree_data_and_matches_ground_truth() {
    let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
    let tid = workloads::rst_path_tid(5, 0.5, 2);
    // The safe-plan back-end refuses; the engine still answers exactly.
    let safe_plan = Engine::builder().backend(BackendKind::SafePlan).build();
    assert!(safe_plan.evaluate(&tid, &query).is_err());
    let report = Engine::new().evaluate(&tid, &query).unwrap();
    assert_eq!(report.backend, BackendKind::TreewidthWmc);
    let brute = Engine::builder()
        .backend(BackendKind::Enumeration)
        .build()
        .evaluate(&tid, &query)
        .unwrap()
        .probability;
    assert!(close(report.probability, brute));
}

#[test]
fn theorem2_pcc_pipeline_matches_enumeration() {
    let engine = Engine::new();
    let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
    for seed in 0..3 {
        let pcc = workloads::contributor_pcc(7, 3, 0.6, 0.85, seed);
        let exact = engine.evaluate(&pcc, &query).unwrap().probability;
        let reference = workloads::pcc_query_probability_by_enumeration(&pcc, &query);
        assert!(
            close(exact, reference),
            "seed {seed}: {exact} vs {reference}"
        );
    }
}

#[test]
fn rules_then_conditioning_end_to_end() {
    // Complete a KB with a soft rule, then condition a query on an observed
    // fact and check Bayes consistency.
    let mut kb = TidInstance::new();
    kb.add_fact_named("Citizen", &["alice", "france"], 0.5);
    let rule = Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap();
    let chase = ProbabilisticChase::new(vec![rule]);
    let completed = chase.run(&kb).unwrap();
    let q = ConjunctiveQuery::parse("Lives(\"alice\", \"france\")").unwrap();
    let p = completed.query_probability(&q).unwrap();
    assert!(close(p, 0.4));

    // Conditioning on the Table 1 instance: P(A | A) = 1.
    let ci = CInstance::table1_example();
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut w = Weights::new();
    w.set(pods, 0.8);
    w.set(stoc, 0.3);
    let pc = ci.with_probabilities(w);
    let q = ConjunctiveQuery::parse("Trip(\"Paris_CDG\", \"Melbourne_MEL\")").unwrap();
    let conditional = conditioned_query_probability(&pc, &q, FactId(0), true).unwrap();
    assert!(close(conditional, 1.0));
}

#[test]
fn scaling_smoke_test_large_path_instance() {
    // Theorem 1 in practice: a 20 000-fact path instance evaluates quickly
    // and exactly (the probability of a length-2 path approaches a limit).
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let tid = workloads::path_tid(20_000, 0.5, 1);
    let report = Engine::new().evaluate(&tid, &query).unwrap();
    assert_eq!(report.decomposition_width, Some(1));
    assert!(report.probability > 0.99);
}
