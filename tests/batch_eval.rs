//! Batched parallel evaluation and weight-only re-evaluation.
//!
//! Two contracts pinned here:
//!
//! * `Engine::evaluate_batch` is *semantically invisible*: for every
//!   representation (TID, pc-instance, pcc-instance, PrXML) and any mix of
//!   queries, the per-query reports agree with sequential
//!   `Engine::evaluate` calls — same probabilities, same back-end choices.
//! * `Engine::reevaluate_with_weights` answers exactly what a fresh
//!   evaluation of the re-weighted instance would answer, while reusing the
//!   compiled lineage (the what-if fast path).

use proptest::prelude::*;
use stuc::circuit::weights::Weights;
use stuc::core::workloads;
use stuc::data::tid::TidInstance;
use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::PrxmlQuery;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{BackendKind, Engine};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// The query mix used on relational representations: hierarchical (safe
/// plan), self-join (treewidth circuit), and a longer chain, plus one
/// repeat so the batch also exercises the lineage cache.
fn relational_queries() -> Vec<ConjunctiveQuery> {
    [
        "R(x, y)",
        "R(x, y), R(y, z)",
        "R(x, y), R(y, z), R(z, w)",
        "R(x, y), R(y, z)",
    ]
    .iter()
    .map(|q| ConjunctiveQuery::parse(q).unwrap())
    .collect()
}

fn assert_batch_matches_sequential<R>(representation: &R, queries: &[R::Query], threads: usize)
where
    R: stuc::Representation + Sync,
    R::Query: Sync,
{
    let batch_engine = Engine::builder().batch_threads(threads).build();
    let batch = batch_engine.evaluate_batch(representation, queries);
    assert_eq!(batch.len(), queries.len());
    assert_eq!(batch.succeeded(), queries.len());

    let sequential = Engine::new();
    for (query, result) in queries.iter().zip(&batch.reports) {
        let expected = sequential.evaluate(representation, query).unwrap();
        let got = result.as_ref().unwrap();
        assert!(
            close(expected.probability, got.probability),
            "{query:?}: sequential {} vs batch {}",
            expected.probability,
            got.probability
        );
        assert_eq!(expected.backend, got.backend, "{query:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch ≡ sequential on TID instances, across worker counts.
    #[test]
    fn batch_matches_sequential_on_tid(n in 3usize..12, p in 0.2f64..0.8, seed in 0u64..200, threads in 1usize..5) {
        let tid = workloads::path_tid(n, p, seed);
        assert_batch_matches_sequential(&tid, &relational_queries(), threads);
    }

    /// Batch ≡ sequential on pc-instances (the TID viewed through event
    /// formulas; no extensional fast path exists).
    #[test]
    fn batch_matches_sequential_on_pc_instance(n in 3usize..9, p in 0.2f64..0.8, seed in 0u64..200, threads in 1usize..5) {
        let pc = workloads::path_tid(n, p, seed).to_pc_instance();
        assert_batch_matches_sequential(&pc, &relational_queries(), threads);
    }

    /// Batch ≡ sequential on pcc-instances (Theorem 2: shared annotation
    /// circuit).
    #[test]
    fn batch_matches_sequential_on_pcc_instance(claims in 2usize..6, contributors in 1usize..4, seed in 0u64..200, threads in 1usize..5) {
        let pcc = workloads::contributor_pcc(claims, contributors, 0.8, 0.6, seed);
        let queries: Vec<ConjunctiveQuery> = ["Claim(x, y)", "Claim(x, y), Claim(z, y)"]
            .iter()
            .map(|q| ConjunctiveQuery::parse(q).unwrap())
            .collect();
        assert_batch_matches_sequential(&pcc, &queries, threads);
    }

    /// Batch ≡ sequential on probabilistic XML documents.
    #[test]
    fn batch_matches_sequential_on_prxml(threads in 1usize..5) {
        let doc = PrXmlDocument::figure1_example();
        let queries = vec![
            PrxmlQuery::LabelExists("musician".into()),
            PrxmlQuery::LabelExists("painter".into()),
            PrxmlQuery::LabelExists("musician".into()),
        ];
        assert_batch_matches_sequential(&doc, &queries, threads);
    }

    /// Weight-only re-evaluation answers what a fresh evaluation of the
    /// re-weighted instance answers, for every counting back-end path.
    #[test]
    fn reevaluation_matches_fresh_evaluation(n in 3usize..10, p in 0.15f64..0.85, q in 0.15f64..0.85, seed in 0u64..200) {
        let tid = workloads::path_tid(n, p, seed);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        engine.evaluate(&tid, &query).unwrap();

        // Change every fact probability, then ask the warm engine about the
        // *old* instance under the *new* weights.
        let mut reweighted = tid.clone();
        for i in 0..reweighted.fact_count() {
            reweighted.set_probability(stuc::data::instance::FactId(i), q);
        }
        let warm = engine
            .reevaluate_with_weights(&tid, &query, &reweighted.fact_weights())
            .unwrap();
        prop_assert!(warm.lineage_cached, "expected the compiled lineage to be reused");

        let fresh = Engine::new().evaluate(&reweighted, &query).unwrap();
        prop_assert!(
            close(warm.probability, fresh.probability),
            "warm {} vs fresh {}",
            warm.probability,
            fresh.probability
        );
    }
}

#[test]
fn reevaluation_after_changing_tid_probabilities_matches() {
    let mut tid = TidInstance::new();
    for i in 0..8 {
        tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
    }
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();

    let engine = Engine::new();
    let cold = engine.evaluate(&tid, &query).unwrap();
    assert!(!cold.lineage_cached);
    assert_eq!(engine.cached_lineages(), 1);

    // What-if sweep: push every fact probability through several values and
    // compare against fresh evaluations of an instance that really has them.
    for new_p in [0.1, 0.35, 0.9, 1.0] {
        let mut changed = tid.clone();
        for i in 0..changed.fact_count() {
            changed.set_probability(stuc::data::instance::FactId(i), new_p);
        }
        let warm = engine
            .reevaluate_with_weights(&tid, &query, &changed.fact_weights())
            .unwrap();
        assert!(warm.lineage_cached);
        assert!(warm.decomposition_cached);
        let fresh = Engine::new().evaluate(&changed, &query).unwrap();
        assert!(
            close(warm.probability, fresh.probability),
            "p={new_p}: warm {} vs fresh {}",
            warm.probability,
            fresh.probability
        );
    }
    // The sweep never grew the cache: one compiled lineage served them all.
    assert_eq!(engine.cached_lineages(), 1);
}

#[test]
fn reevaluation_works_from_cold_and_partial_weights_fail_cleanly() {
    let tid = workloads::path_tid(6, 0.4, 17);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();

    // Cold re-evaluation: no prior evaluate call — it compiles on demand.
    let report = engine
        .reevaluate_with_weights(&tid, &query, &tid.fact_weights())
        .unwrap();
    assert!(!report.lineage_cached);
    assert!(close(
        report.probability,
        Engine::new().evaluate(&tid, &query).unwrap().probability
    ));

    // Missing weights surface as an error, not a wrong answer.
    assert!(engine
        .reevaluate_with_weights(&tid, &query, &Weights::new())
        .is_err());
}

#[test]
fn reevaluation_with_pinned_safe_plan_is_refused() {
    let tid = workloads::path_tid(4, 0.5, 3);
    let query = ConjunctiveQuery::parse("R(x, y)").unwrap();
    let engine = Engine::builder().backend(BackendKind::SafePlan).build();
    // The safe plan evaluates on the instance's own probabilities; it cannot
    // honour a weight override.
    assert!(engine
        .reevaluate_with_weights(&tid, &query, &tid.fact_weights())
        .is_err());
}

#[test]
fn batch_shares_one_decomposition_across_workers() {
    let tid = workloads::path_tid(12, 0.5, 19);
    let queries: Vec<ConjunctiveQuery> = (2..6)
        .map(|len| {
            let atoms: Vec<String> = (0..len).map(|i| format!("R(x{i}, x{})", i + 1)).collect();
            ConjunctiveQuery::parse(&atoms.join(", ")).unwrap()
        })
        .collect();
    let engine = Engine::builder().batch_threads(4).build();
    let batch = engine.evaluate_batch(&tid, &queries);
    assert_eq!(batch.succeeded(), queries.len());
    // All four queries are distinct, but they share one instance: exactly
    // one structure decomposition and one lineage per query are cached.
    assert_eq!(engine.cached_decompositions(), 1);
    assert_eq!(engine.cached_lineages(), queries.len());
    assert!(batch.threads >= 1);
}
