//! Property-based tests on the core invariants of the workspace:
//! decomposition validity, back-end agreement, semantics preservation of
//! circuit transformations, and possible-world consistency.

use proptest::prelude::*;
use std::collections::BTreeMap;
use stuc::automata::courcelle::cq_probability_tid;
use stuc::circuit::builder;
use stuc::circuit::circuit::VarId;
use stuc::circuit::dpll::DpllCounter;
use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::circuit::weights::Weights;
use stuc::circuit::wmc::TreewidthWmc;
use stuc::data::tid::TidInstance;
use stuc::graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc::graph::generators;
use stuc::order::porelation::PoRelation;
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::lineage::tid_lineage;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every heuristic produces a *valid* tree decomposition on random
    /// graphs, and its width is at least the MMD lower bound.
    #[test]
    fn decompositions_are_valid_on_random_graphs(n in 2usize..25, p in 0.05f64..0.6, seed in 0u64..500) {
        let graph = generators::erdos_renyi(n, p, seed);
        for heuristic in EliminationHeuristic::ALL {
            let td = decompose_with_heuristic(&graph, heuristic);
            prop_assert!(td.validate(&graph).is_ok());
            prop_assert!(td.width() >= stuc::graph::exact::mmd_lower_bound(&graph));
        }
    }

    /// The three probability back-ends agree on random circuits.
    #[test]
    fn circuit_backends_agree(vars in 2usize..8, internal in 2usize..16, seed in 0u64..1000, p in 0.05f64..0.95) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let weights = Weights::uniform(circuit.variables(), p);
        let brute = probability_by_enumeration(&circuit, &weights).unwrap();
        let dpll = DpllCounter::default().probability(&circuit, &weights).unwrap();
        let mp = TreewidthWmc::default().probability(&circuit, &weights).unwrap();
        prop_assert!((brute - dpll).abs() < 1e-9, "dpll {dpll} vs brute {brute}");
        prop_assert!((brute - mp).abs() < 1e-9, "wmc {mp} vs brute {brute}");
    }

    /// Binarisation and simplification preserve circuit semantics.
    #[test]
    fn circuit_transformations_preserve_semantics(vars in 1usize..6, internal in 1usize..12, seed in 0u64..1000) {
        let circuit = builder::random_circuit(vars, internal, seed);
        let binarized = circuit.binarize();
        let simplified = circuit.simplify().unwrap();
        let variables: Vec<VarId> = circuit.variables().into_iter().collect();
        for bits in 0..(1u32 << variables.len()) {
            let assignment: BTreeMap<VarId, bool> = variables
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, bits & (1 << i) != 0))
                .collect();
            let reference = circuit.evaluate(&assignment).unwrap();
            prop_assert_eq!(binarized.evaluate(&assignment).unwrap(), reference);
            prop_assert_eq!(simplified.evaluate(&assignment).unwrap(), reference);
        }
    }

    /// The Courcelle pipeline (Theorem 1) agrees with the DNF-lineage method
    /// on random path-shaped TID instances for a self-join query.
    #[test]
    fn theorem1_agrees_with_lineage_on_random_paths(n in 2usize..9, seed in 0u64..300, p in 0.1f64..0.9) {
        let mut tid = TidInstance::new();
        for i in 0..n {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
        }
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let td = decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinFill);
        let exact = cq_probability_tid(&tid, &td, &query).unwrap();
        let lineage = tid_lineage(&tid, &query);
        let reference = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        prop_assert!((exact - reference).abs() < 1e-9, "{exact} vs {reference}");
        let _ = seed;
    }

    /// Counting linear extensions by dynamic programming matches exhaustive
    /// enumeration on random partial orders.
    #[test]
    fn linear_extension_count_matches_enumeration(n in 1usize..7, edges in proptest::collection::vec((0usize..7, 0usize..7), 0..10)) {
        let mut po = PoRelation::new();
        for i in 0..n {
            po.add_tuple(vec![format!("t{i}")]);
        }
        for (a, b) in edges {
            if a < n && b < n && a != b {
                // Ignore constraints that would create cycles.
                let _ = po.add_order(stuc::order::porelation::ElementId(a), stuc::order::porelation::ElementId(b));
            }
        }
        let counted = po.count_linear_extensions().unwrap();
        let enumerated = po.linear_extensions().unwrap().len() as u64;
        prop_assert_eq!(counted, enumerated);
    }

    /// Probabilities computed by the pipeline are always within [0, 1] and
    /// monotone in the facts' probabilities for monotone queries.
    #[test]
    fn probabilities_are_monotone_in_fact_probabilities(n in 2usize..7, p in 0.1f64..0.45, seed in 0u64..200) {
        let make = |probability: f64| {
            let mut tid = TidInstance::new();
            for i in 0..n {
                tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], probability);
            }
            tid
        };
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let low = make(p);
        let high = make((p * 2.0).min(0.95));
        let td_low = decompose_with_heuristic(&low.gaifman_graph(), EliminationHeuristic::MinDegree);
        let td_high = decompose_with_heuristic(&high.gaifman_graph(), EliminationHeuristic::MinDegree);
        let p_low = cq_probability_tid(&low, &td_low, &query).unwrap();
        let p_high = cq_probability_tid(&high, &td_high, &query).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p_low));
        prop_assert!(p_high >= p_low - 1e-12, "{p_high} < {p_low}");
        let _ = seed;
    }
}
