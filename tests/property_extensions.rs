//! Property-based tests for the extension modules: the uniform distribution
//! over linear extensions, set semantics, numeric orders, Datalog evaluation
//! and provenance, and rule mining.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::data::instance::Instance;
use stuc::data::tid::TidInstance;
use stuc::order::numeric::probability_uniform_less;
use stuc::order::porelation::{ElementId, PoRelation};
use stuc::order::probability::LinearExtensionDistribution;
use stuc::order::setops::{dedup_sequence, distinct_certain, set_possible_worlds};
use stuc::query::datalog::DatalogProgram;
use stuc::query::datalog_provenance::DatalogProvenance;
use stuc::rules::mining::RuleMiner;

/// Builds a random poset on `n` elements from a list of candidate edges,
/// skipping any edge that would create a cycle.
fn random_poset(n: usize, edges: &[(usize, usize)]) -> PoRelation {
    let mut po = PoRelation::new();
    let ids: Vec<ElementId> = (0..n)
        .map(|i| po.add_tuple(vec![format!("t{}", i % 3)]))
        .collect();
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a != b {
            let _ = po.add_order(ids[a], ids[b]);
        }
    }
    po
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distribution's total matches the counting DP, every rank
    /// distribution sums to 1, and precedence probabilities of distinct
    /// elements are complementary.
    #[test]
    fn linear_extension_distribution_is_consistent(
        n in 2usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..8),
    ) {
        let po = random_poset(n, &edges);
        let distribution = LinearExtensionDistribution::new(&po).unwrap();
        prop_assert_eq!(distribution.total_extensions(), po.count_linear_extensions().unwrap());
        for i in 0..n {
            let ranks = distribution.rank_distribution(ElementId(i));
            let sum: f64 = ranks.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        let forward = distribution.precedence_probability(ElementId(0), ElementId(1));
        let backward = distribution.precedence_probability(ElementId(1), ElementId(0));
        prop_assert!((forward + backward - 1.0).abs() < 1e-9);
    }

    /// Uniform sampling always produces a valid linear extension.
    #[test]
    fn uniform_samples_are_linear_extensions(
        n in 2usize..7,
        edges in proptest::collection::vec((0usize..7, 0usize..7), 0..8),
        seed in 0u64..1000,
    ) {
        let po = random_poset(n, &edges);
        let distribution = LinearExtensionDistribution::new(&po).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = distribution.sample(&mut rng);
        prop_assert_eq!(sample.len(), n);
        for (i, &earlier) in sample.iter().enumerate() {
            for &later in &sample[i + 1..] {
                prop_assert!(!po.precedes(later, earlier), "sample violates the order");
            }
        }
    }

    /// Deduplication is idempotent, and every exact set-semantics world is a
    /// linear extension of the certain-order distinct relation (soundness of
    /// the over-approximation).
    #[test]
    fn set_semantics_over_approximation_is_sound(
        n in 1usize..6,
        edges in proptest::collection::vec((0usize..6, 0usize..6), 0..6),
    ) {
        let po = random_poset(n, &edges);
        let exact = set_possible_worlds(&po).unwrap();
        let approximated = distinct_certain(&po);
        for world in &exact {
            prop_assert_eq!(&dedup_sequence(world), world);
            prop_assert!(approximated.is_possible_world(world));
        }
    }

    /// The closed-form uniform precedence probability is complementary and
    /// matches a direct Monte-Carlo estimate.
    #[test]
    fn uniform_interval_precedence_is_complementary(
        a_low in -10.0f64..10.0, a_len in 0.1f64..5.0,
        b_low in -10.0f64..10.0, b_len in 0.1f64..5.0,
    ) {
        let forward = probability_uniform_less(a_low, a_low + a_len, b_low, b_low + b_len);
        let backward = probability_uniform_less(b_low, b_low + b_len, a_low, a_low + a_len);
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&forward));
        prop_assert!((forward + backward - 1.0).abs() < 1e-9);
    }

    /// Datalog evaluation is monotone (more input facts can only derive more
    /// facts) and idempotent at the fixpoint.
    #[test]
    fn datalog_fixpoint_is_monotone_and_idempotent(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..8),
    ) {
        let program = DatalogProgram::parse(
            "Reach(x, y) :- Edge(x, y)\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z)",
        ).unwrap();
        let mut smaller = Instance::new();
        let mut larger = Instance::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            let from = format!("v{a}");
            let to = format!("v{b}");
            larger.add_fact_named("Edge", &[&from, &to]);
            if i % 2 == 0 {
                smaller.add_fact_named("Edge", &[&from, &to]);
            }
        }
        let small_fixpoint = program.evaluate(&smaller).unwrap();
        let large_fixpoint = program.evaluate(&larger).unwrap();
        prop_assert!(small_fixpoint.fact_count() <= large_fixpoint.fact_count());
        let again = program.evaluate(&large_fixpoint).unwrap();
        prop_assert_eq!(again.fact_count(), large_fixpoint.fact_count());
    }

    /// On a path-shaped TID, the provenance of end-to-end reachability is the
    /// product of the edge probabilities.
    #[test]
    fn path_reachability_provenance_is_the_product(
        probabilities in proptest::collection::vec(0.05f64..0.95, 1..6),
    ) {
        let mut tid = TidInstance::new();
        for (i, p) in probabilities.iter().enumerate() {
            tid.add_fact_named("Edge", &[&format!("v{i}"), &format!("v{}", i + 1)], *p);
        }
        let program = DatalogProgram::parse(
            "Reach(x, y) :- Edge(x, y)\n\
             Reach(x, z) :- Reach(x, y), Edge(y, z)",
        ).unwrap();
        let provenance = DatalogProvenance::from_tid(&tid, &program).unwrap();
        let target = format!("v{}", probabilities.len());
        let lineage = provenance.fact_lineage("Reach", &["v0", &target]).unwrap();
        let computed = probability_by_enumeration(&lineage, &tid.fact_weights()).unwrap();
        let expected: f64 = probabilities.iter().product();
        prop_assert!((computed - expected).abs() < 1e-9);
    }

    /// Mined rules always satisfy their own thresholds and have consistent
    /// quality measures.
    #[test]
    fn mined_rules_respect_thresholds(
        pairs in proptest::collection::vec((0usize..6, 0usize..4), 4..16),
        min_support in 1usize..4,
    ) {
        let mut instance = Instance::new();
        for &(person, country) in &pairs {
            instance.add_fact_named("Citizen", &[&format!("p{person}"), &format!("c{country}")]);
            if (person + country) % 3 != 0 {
                instance.add_fact_named("Lives", &[&format!("p{person}"), &format!("c{country}")]);
            }
        }
        let miner = RuleMiner { min_support, min_confidence: 0.4, mine_path_rules: false };
        for mined in miner.mine(&instance) {
            prop_assert!(mined.support >= min_support);
            prop_assert!(mined.support <= mined.body_matches);
            prop_assert!(mined.confidence() >= 0.4 - 1e-12);
            prop_assert!(mined.confidence() <= 1.0 + 1e-12);
            prop_assert!(mined.head_coverage >= 0.0 && mined.head_coverage <= 1.0 + 1e-12);
        }
    }
}
