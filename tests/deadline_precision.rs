//! Property tests for deadline precision and budget hygiene, across all
//! four uncertain representations (TID, c-, pc-, pcc-instances):
//!
//! * an already-expired deadline trips as a typed
//!   [`StucError::DeadlineExceeded`] naming the stage, with bounded
//!   overshoot — the engine notices at its first checkpoint instead of
//!   finishing the work anyway;
//! * a random *tiny* deadline either completes exactly or trips typed —
//!   never anything in between (panic, hang, wrong answer);
//! * after any tripped run, an identical re-run on the **same** engine
//!   without a deadline is bit-identical to a fresh, never-deadlined
//!   engine — tripped runs publish nothing to the caches;
//! * a pre-raised cancel flag surfaces as [`StucError::Cancelled`] with
//!   the same no-pollution guarantee.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use stuc::core::workloads;
use stuc::data::cinstance::CInstance;
use stuc::data::pcc::PccInstance;
use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{CancelHandle, Engine, EvalBudget, Representation, StucError};

/// Generous bound on how long a deadline-tripped evaluation may keep
/// running past its deadline: checkpoints are bounded-interval polls, not
/// preemption, so some overshoot is inherent — but it must stay within
/// one checkpoint interval's worth of work, far below a second on these
/// tiny workloads even in debug builds.
const MAX_OVERSHOOT: Duration = Duration::from_secs(2);

fn chain() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap()
}

fn cinstance_path(n: usize) -> CInstance {
    let mut ci = CInstance::new();
    for i in 0..n {
        // Cycle a small event pool with some negation so annotations are
        // correlated and non-trivial.
        let condition = match i % 3 {
            0 => format!("e{}", i % 4),
            1 => format!("e{} & !e{}", i % 4, (i + 1) % 4),
            _ => format!("e{} & e{}", i % 4, (i + 2) % 4),
        };
        ci.add_fact_with_condition("R", &[&format!("v{i}"), &format!("v{}", i + 1)], &condition)
            .unwrap();
    }
    ci
}

/// Exercises the full deadline contract for one representation + query on
/// a fresh engine. `deadline_us` of 0 means "already expired".
fn check_deadline_contract<R>(representation: &R, query: &R::Query, deadline_us: u64)
where
    R: Representation + ?Sized,
{
    let reference = Engine::new()
        .evaluate(representation, query)
        .expect("undeadlined evaluation succeeds")
        .probability;

    let engine = Engine::new();

    // 1. An already-expired deadline must trip, typed, naming a stage,
    //    with bounded overshoot.
    let started = Instant::now();
    let expired = engine.evaluate_with_budget(
        representation,
        query,
        &EvalBudget::with_deadline(Duration::ZERO),
    );
    let overshoot = started.elapsed();
    match expired {
        Err(StucError::DeadlineExceeded { stage }) => {
            assert!(!stage.is_empty(), "trip must name the stage");
            assert!(
                overshoot < MAX_OVERSHOOT,
                "expired deadline took {overshoot:?} to surface"
            );
        }
        other => panic!("expired deadline must trip typed, got {other:?}"),
    }

    // 2. A tiny random deadline either completes exactly or trips typed.
    let budget = EvalBudget::with_deadline(Duration::from_micros(deadline_us));
    match engine.evaluate_with_budget(representation, query, &budget) {
        Ok(report) => assert_eq!(
            report.probability.to_bits(),
            reference.to_bits(),
            "a completed deadlined run must be exact"
        ),
        Err(StucError::DeadlineExceeded { stage }) => {
            assert!(!stage.is_empty());
        }
        Err(other) => panic!("only DeadlineExceeded is acceptable, got {other}"),
    }

    // 3. A pre-raised cancel flag trips as Cancelled, not DeadlineExceeded.
    let cancel = CancelHandle::new();
    cancel.cancel();
    match engine.evaluate_with_budget(
        representation,
        query,
        &EvalBudget::unlimited().cancelled_by(&cancel),
    ) {
        Err(StucError::Cancelled { stage }) => assert!(!stage.is_empty()),
        other => panic!("raised cancel flag must trip typed, got {other:?}"),
    }

    // 4. No cache pollution: the same engine, with the budget lifted, is
    //    bit-identical to the never-deadlined reference.
    let recovered = engine
        .evaluate(representation, query)
        .expect("undeadlined re-run succeeds")
        .probability;
    assert_eq!(
        recovered.to_bits(),
        reference.to_bits(),
        "tripped runs must not pollute the caches"
    );

    // 5. And the caches now being warm does not change that.
    let warm = engine
        .evaluate(representation, query)
        .expect("warm re-run succeeds")
        .probability;
    assert_eq!(warm.to_bits(), reference.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tid_deadlines_are_precise_and_cache_clean(
        n in 3usize..9,
        seed in 0u64..1000,
        deadline_us in 0u64..500,
    ) {
        let tid: TidInstance = workloads::path_tid(n, 0.5, seed);
        check_deadline_contract(&tid, &chain(), deadline_us);
    }

    #[test]
    fn cinstance_deadlines_are_precise_and_cache_clean(
        n in 3usize..9,
        deadline_us in 0u64..500,
    ) {
        let ci = cinstance_path(n);
        check_deadline_contract(&ci, &chain(), deadline_us);
    }

    #[test]
    fn pcinstance_deadlines_are_precise_and_cache_clean(
        n in 3usize..9,
        deadline_us in 0u64..500,
        prob in 0.1f64..0.9,
    ) {
        let ci = cinstance_path(n);
        let vars: Vec<_> = ci.events().variables().collect();
        let pc = ci.with_probabilities(stuc::circuit::weights::Weights::uniform(vars, prob));
        check_deadline_contract(&pc, &chain(), deadline_us);
    }

    #[test]
    fn pcc_deadlines_are_precise_and_cache_clean(
        claims in 3usize..8,
        contributors in 2usize..4,
        seed in 0u64..1000,
        deadline_us in 0u64..500,
    ) {
        let pcc: PccInstance =
            workloads::contributor_pcc(claims, contributors, 0.8, 0.7, seed);
        let query = ConjunctiveQuery::parse("Claim(x, y), Claim(x, z)").unwrap();
        check_deadline_contract(&pcc, &query, deadline_us);
    }
}
