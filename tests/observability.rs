//! End-to-end checks of the observability surface at the umbrella level:
//! every engine entry point advances its process-global counters, reports
//! carry trace ids and stage breakdowns consistent with their wall time,
//! the cache metrics move when the caches do, and `Engine::with_tracing`
//! actually records spans.
//!
//! The registry is process-cumulative and tests in this binary run
//! concurrently, so every assertion is a `>=` delta around this test's own
//! calls — never an absolute value or an exact count.

use std::time::Duration;
use stuc::core::workloads;
use stuc::incr::Delta;
use stuc::obs::{registry, trace, MetricReading};
use stuc::query::cq::ConjunctiveQuery;
use stuc::{Engine, EvaluationReport};

/// Current value of a global counter (0 when not yet registered).
fn counter(name: &str) -> u64 {
    registry()
        .snapshot()
        .into_iter()
        .find(|m| m.name == name)
        .map(|m| match m.reading {
            MetricReading::Counter(v) => v,
            other => panic!("{name} is not a counter: {other:?}"),
        })
        .unwrap_or(0)
}

fn chain_tid() -> stuc::data::tid::TidInstance {
    workloads::path_tid(12, 0.5, 13)
}

fn circuit_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap()
}

#[test]
fn every_entry_point_advances_its_counters() {
    let before: Vec<u64> = ENTRY_COUNTERS.iter().map(|n| counter(n)).collect();

    let engine = Engine::new();
    let mut tid = chain_tid();
    let query = circuit_query();
    engine.evaluate(&tid, &query).unwrap();
    engine.evaluate_text(&tid, "?- R(x, y).").unwrap();
    engine.evaluate_batch(&tid, std::slice::from_ref(&query));
    engine.marginals(&tid, &query).unwrap();
    engine.sample_worlds(&tid, &query, 3, 7).unwrap();
    engine.most_probable_world(&tid, &query).unwrap();
    let delta = Delta::new().set_probability(stuc::data::instance::FactId(0), 0.25);
    engine.apply_update(&mut tid, &delta).unwrap();
    // One failing call: a parse error must count as a call and an error.
    engine.evaluate_text(&tid, "?- R(x").unwrap_err();

    for (name, &was) in ENTRY_COUNTERS.iter().zip(&before) {
        let expected = if *name == "stuc_engine_evaluate_text_total" {
            2 // one ok + one parse error
        } else {
            1
        };
        let now = counter(name);
        assert!(
            now >= was + expected,
            "{name}: {was} -> {now}, expected at least +{expected}"
        );
    }
}

const ENTRY_COUNTERS: [&str; 9] = [
    "stuc_engine_evaluate_total",
    "stuc_engine_evaluate_text_total",
    "stuc_engine_evaluate_text_errors_total",
    "stuc_engine_evaluate_goal_total",
    "stuc_engine_evaluate_batch_total",
    "stuc_engine_marginals_total",
    "stuc_engine_sample_worlds_total",
    "stuc_engine_most_probable_world_total",
    "stuc_engine_apply_update_total",
];

/// Stage names the engine is allowed to report, across both the
/// programmatic and the textual pipeline.
const STAGE_VOCABULARY: [&str; 7] = [
    "safe-plan",
    "cache-lookup",
    "decompose",
    "compile-lineage",
    "sweep",
    "lower",
    "route",
];

fn check_report_timing(report: &EvaluationReport) {
    assert!(report.trace_id > 0);
    assert!(
        !report.stage_timings.is_empty(),
        "no stages recorded: {report:?}"
    );
    assert!(
        report.stage_timings.total() <= report.wall_time,
        "stages sum to {:?} but the wall time is {:?}",
        report.stage_timings.total(),
        report.wall_time
    );
    for stage in report.stage_timings.stages() {
        assert!(
            STAGE_VOCABULARY.contains(&stage.name),
            "unknown stage {:?}",
            stage.name
        );
    }
}

#[test]
fn reports_carry_trace_ids_and_stage_breakdowns() {
    let engine = Engine::new();
    let tid = chain_tid();

    // Circuit pipeline: the compile and sweep stages must be visible.
    let cold = engine.evaluate(&tid, &circuit_query()).unwrap();
    check_report_timing(&cold);
    for stage in ["cache-lookup", "decompose", "compile-lineage", "sweep"] {
        assert!(
            cold.stage_timings.get(stage).is_some(),
            "cold circuit evaluation must record {stage:?}: {:?}",
            cold.stage_timings
        );
    }

    // Warm evaluation: same vocabulary, a fresh (larger) trace id.
    let warm = engine.evaluate(&tid, &circuit_query()).unwrap();
    check_report_timing(&warm);
    assert!(warm.trace_id > cold.trace_id, "trace ids must increase");

    // Textual pipeline: lowering and routing stages join the breakdown.
    let text = engine.evaluate_text(&tid, "?- R(x, y).").unwrap();
    let goal = &text.goals[0].report;
    check_report_timing(goal);
    assert!(goal.stage_timings.get("lower").is_some(), "{goal:?}");
    assert!(goal.stage_timings.get("route").is_some(), "{goal:?}");
}

#[test]
fn cache_counters_move_with_the_caches() {
    let hits_before = counter("stuc_cache_lineage_hits_total");
    let misses_before = counter("stuc_cache_lineage_misses_total");

    let engine = Engine::new();
    let tid = chain_tid();
    let cold = engine.evaluate(&tid, &circuit_query()).unwrap();
    assert!(!cold.lineage_cached);
    let warm = engine.evaluate(&tid, &circuit_query()).unwrap();
    assert!(warm.lineage_cached);

    assert!(counter("stuc_cache_lineage_misses_total") > misses_before);
    assert!(counter("stuc_cache_lineage_hits_total") > hits_before);
    // The per-engine snapshot agrees in kind with the global counters.
    let stats = engine.cache_stats();
    assert!(stats.lineages.hits >= 1);
    assert!(stats.lineages.misses >= 1);
}

#[test]
fn sweep_metrics_count_runs_and_arena_reuse() {
    let runs_before = counter("stuc_sweep_runs_total");
    let reuses_before = counter("stuc_sweep_arena_reuses_total");

    let engine = Engine::new();
    let tid = chain_tid();
    engine.evaluate(&tid, &circuit_query()).unwrap();
    engine.evaluate(&tid, &circuit_query()).unwrap();

    assert!(counter("stuc_sweep_runs_total") >= runs_before + 2);
    // The second, cache-hitting evaluation reuses the warmed arena.
    assert!(counter("stuc_sweep_arena_reuses_total") > reuses_before);
    assert!(counter("stuc_sweep_table_entries_total") > 0);
}

#[test]
fn with_tracing_records_spans() {
    let engine = Engine::with_tracing();
    assert!(trace::enabled());
    let tid = chain_tid();
    engine.evaluate(&tid, &circuit_query()).unwrap();
    trace::set_enabled(false);

    let events = trace::snapshot_events();
    let evaluate_span = events
        .iter()
        .find(|e| e.name == "evaluate")
        .expect("the evaluate entry point must appear as a span");
    assert!(evaluate_span.dur_us > 0 || evaluate_span.start_us > 0);
    assert!(
        events.iter().any(|e| e.name == "sweep"),
        "stage marks must land in the tracer too"
    );
    let json = trace::chrome_trace_json(&events);
    assert!(json.contains("\"name\":\"evaluate\""));
}

#[test]
fn wall_times_and_stage_laps_share_one_clock_under_load() {
    let engine = Engine::new();
    let tid = workloads::path_tid(40, 0.5, 13);
    for k in 0..8 {
        let query = ConjunctiveQuery::parse(&format!("R(\"v{k}\", x), R(x, y), R(y, z)")).unwrap();
        let report = engine.evaluate(&tid, &query).unwrap();
        check_report_timing(&report);
        assert!(report.wall_time > Duration::ZERO);
    }
}
