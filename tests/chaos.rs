//! Chaos suite: drives every named failpoint (`--features fault-injection`)
//! under multi-threaded load and checks the fault-tolerance contract:
//!
//! * faults surface as **typed errors** (or graceful fallbacks), never as
//!   hangs — every scenario runs under a watchdog;
//! * panics are **isolated** where the contract promises it (batch
//!   workers, serve workers and acceptor) — pools survive, callers get
//!   `StucError::Internal` / typed `500`s;
//! * caches are never **torn** — once a fault clears, the same engine
//!   returns bit-exact answers, equal to a fresh engine's;
//! * deadlines stay **typed and selective** — an expensive goal under a
//!   tight deadline times out with a `504` while concurrent cheap goals
//!   keep answering exactly.
//!
//! The failpoint registry is process-global, so scenarios serialize on one
//! mutex; the 8-thread load lives *inside* each scenario. CI runs this file
//! with `--features fault-injection --release -- --test-threads=8`, where
//! the lock keeps armed faults from bleeding across tests.

#![cfg(feature = "fault-injection")]

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use stuc::core::workloads;
use stuc::data::tid::TidInstance;
use stuc::fault::failpoint::{self, FailAction};
use stuc::query::cq::ConjunctiveQuery;
use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::{Engine, EvalBudget, StucError};

const THREADS: usize = 8;

/// Serializes scenarios: armed failpoints are process-global state.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` on a helper thread and panics if it does not finish in
/// `limit` — the suite's "no hangs" oracle.
fn with_watchdog<T: Send + 'static>(
    limit: Duration,
    what: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(value) => {
            let _ = handle.join();
            value
        }
        Err(_) => panic!("chaos scenario {what:?} hung past {limit:?}"),
    }
}

fn workload() -> (TidInstance, ConjunctiveQuery) {
    let tid = workloads::path_tid(10, 0.5, 23);
    // Self-join: routes to the circuit back-end, so decomposition, plan
    // build, sweeps and both caches are all on the evaluation path.
    let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    (tid, chain)
}

/// The oracle answer for the workload, from a fresh, unfaulted engine.
fn oracle() -> f64 {
    let (tid, chain) = workload();
    Engine::new().evaluate(&tid, &chain).unwrap().probability
}

/// Drives `rounds × THREADS` evaluations of the workload on one shared
/// engine from 8 OS threads through `evaluate_batch` (the panic-isolated
/// entry point; batches dedup, so each thread submits singletons) and
/// returns the per-query results.
fn batch_under_load(engine: &Engine, rounds: usize) -> Vec<Result<f64, String>> {
    let (tid, chain) = workload();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (tid, chain) = (&tid, &chain);
                scope.spawn(move || {
                    let mut outcomes = Vec::with_capacity(rounds);
                    for _ in 0..rounds {
                        let batch = engine.evaluate_batch(tid, std::slice::from_ref(chain));
                        for report in batch.reports {
                            outcomes
                                .push(report.map(|ok| ok.probability).map_err(|e| e.to_string()));
                        }
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("load thread panicked"))
            .collect()
    })
}

/// The core chaos template for engine-side failpoints: arm `name` with
/// `action`, hammer a shared engine from 8 batch workers, assert every
/// outcome is a value or a *typed* error (the watchdog catches hangs),
/// then disarm and require bit-exact recovery on the *same* engine.
fn engine_scenario(name: &str, action: FailAction, expect_in_error: &[&str]) {
    let _serial = chaos_lock();
    let expected = oracle();
    let engine = Arc::new(Engine::new());
    let hits_before = failpoint::hits(name);
    {
        let _armed = failpoint::arm_guard(name, action);
        let under_fault = {
            let engine = Arc::clone(&engine);
            with_watchdog(Duration::from_secs(60), name, move || {
                batch_under_load(&engine, 4)
            })
        };
        for outcome in &under_fault {
            match outcome {
                // Sleep faults (and races that dodge the failpoint) still
                // produce the exact answer.
                Ok(p) => assert_eq!(p.to_bits(), expected.to_bits(), "wrong answer under fault"),
                Err(message) => {
                    assert!(
                        expect_in_error.iter().any(|s| message.contains(s)),
                        "failpoint {name}: error {message:?} does not look injected \
                         (expected one of {expect_in_error:?})"
                    );
                }
            }
        }
    }
    assert!(
        failpoint::hits(name) > hits_before,
        "failpoint {name} was never reached by the workload"
    );
    // Fault cleared: the same engine (whatever its caches now hold) must
    // answer bit-exactly — no torn cache state survives.
    let recovered = with_watchdog(Duration::from_secs(60), name, {
        let engine = Arc::clone(&engine);
        move || batch_under_load(&engine, 2)
    });
    for outcome in recovered {
        assert_eq!(
            outcome
                .expect("typed errors must stop once the fault clears")
                .to_bits(),
            expected.to_bits(),
            "answers must be bit-exact after the fault clears"
        );
    }
}

#[test]
fn decomposition_failpoint_panics_are_isolated_and_recover() {
    engine_scenario(
        "graph-decompose",
        FailAction::Panic,
        &["panic", "failpoint"],
    );
}

#[test]
fn plan_build_failpoint_errors_are_typed_and_recover() {
    engine_scenario(
        "circuit-plan-build",
        FailAction::Error("plan build chaos".into()),
        &["injected fault"],
    );
}

#[test]
fn plan_build_failpoint_panics_are_isolated() {
    engine_scenario(
        "circuit-plan-build",
        FailAction::Panic,
        &["panic", "failpoint"],
    );
}

#[test]
fn sweep_failpoint_errors_are_typed_and_recover() {
    engine_scenario(
        "circuit-sweep",
        FailAction::Error("sweep chaos".into()),
        &["injected fault"],
    );
}

#[test]
fn sweep_failpoint_sleep_slows_but_stays_exact() {
    engine_scenario("circuit-sweep", FailAction::SleepMs(5), &[]);
}

#[test]
fn lineage_compile_failpoint_errors_are_typed_and_recover() {
    engine_scenario(
        "lineage-compile",
        FailAction::Error("compile chaos".into()),
        &["injected fault"],
    );
}

#[test]
fn cache_publish_failpoint_panics_never_tear_the_cache() {
    engine_scenario("cache-publish", FailAction::Panic, &["panic", "failpoint"]);
}

#[test]
fn cache_evict_failpoint_sleep_keeps_answers_exact() {
    // Eviction needs a capacity the workload can exceed; the default
    // engine rarely evicts, so drive it with a tiny lineage cache.
    let _serial = chaos_lock();
    let expected = oracle();
    let engine = Engine::builder().cache_capacity(1).build();
    let _armed = failpoint::arm_guard("cache-evict", FailAction::SleepMs(1));
    let (tid, chain) = workload();
    let chain3 = ConjunctiveQuery::parse("R(x, y), R(y, z), R(z, w)").unwrap();
    for _ in 0..4 {
        // Two distinct lineages through a capacity-1 cache force evictions.
        let got = engine.evaluate(&tid, &chain).unwrap().probability;
        assert_eq!(got.to_bits(), expected.to_bits());
        engine.evaluate(&tid, &chain3).unwrap();
    }
}

/// A fault during decomposition *repair* must degrade to the fallback
/// full rebuild — the update succeeds and answers stay exact.
#[test]
fn repair_failpoint_degrades_to_full_rebuild() {
    let _serial = chaos_lock();
    let _armed = failpoint::arm_guard("graph-repair", FailAction::Error("repair chaos".into()));
    let (mut tid, chain) = workload();
    let engine = Engine::new();
    let before = engine.evaluate(&tid, &chain).unwrap().probability;
    assert!(before > 0.0);
    let delta = stuc::Delta::new().insert("R", &["v3", "v0"], 0.5);
    engine
        .apply_update(&mut tid, &delta)
        .expect("a repair fault must fall back to rebuild, not fail the update");
    let after = engine.evaluate(&tid, &chain).unwrap().probability;
    let fresh = Engine::new().evaluate(&tid, &chain).unwrap().probability;
    assert_eq!(
        after.to_bits(),
        fresh.to_bits(),
        "post-update answers must match a fresh engine bit-exactly"
    );
}

// ---------------------------------------------------------------------------
// Serve-side chaos
// ---------------------------------------------------------------------------

const PROGRAM: &str = "\
0.9 :: Train(\"paris\", \"lyon\").\n\
0.8 :: Train(\"lyon\", \"nice\").\n\
Hop(x, y) :- Train(x, y).\n";

fn exchange(addr: SocketAddr, payload: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(payload.as_bytes()).unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn post_query(addr: SocketAddr, path: &str, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

fn spawn_server(config: ServeConfig) -> Server {
    let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
    Server::spawn(config, state).unwrap()
}

/// Serve-side template: arm a failpoint, fire 8 concurrent clients, and
/// require every client to get *some* complete answer (degraded is fine,
/// hung or empty is not — except for write faults, where the response
/// itself is the casualty and an empty reply is the accepted outcome).
fn serve_scenario(name: &str, action: FailAction, empty_ok: bool) {
    let _serial = chaos_lock();
    let server = spawn_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let hits_before = failpoint::hits(name);
    {
        let _armed = failpoint::arm_guard(name, action);
        let owned_name = name.to_string();
        with_watchdog(Duration::from_secs(60), name, move || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|_| scope.spawn(move || post_query(addr, "/query", "?- Train(x, y).")))
                    .collect();
                for handle in handles {
                    let response = handle.join().expect("chaos client panicked");
                    if response.is_empty() {
                        assert!(
                            empty_ok,
                            "failpoint {owned_name}: client got an empty reply"
                        );
                        continue;
                    }
                    assert!(
                        response.contains("HTTP/1.1"),
                        "failpoint {owned_name}: malformed reply {response:?}"
                    );
                }
            });
        });
    }
    assert!(
        failpoint::hits(name) > hits_before,
        "failpoint {name} was never reached by the clients"
    );
    // Fault cleared: the pool survived and answers are exact again.
    let healthy = post_query(addr, "/query", "?- Train(x, y).");
    assert!(healthy.contains("\"probability\":0.980000000"), "{healthy}");
    server.shutdown();
}

#[test]
fn serve_read_faults_become_typed_408s_and_the_pool_survives() {
    serve_scenario("serve-read", FailAction::Error("read chaos".into()), false);
}

#[test]
fn serve_read_panics_become_typed_500s_and_the_pool_survives() {
    serve_scenario("serve-read", FailAction::Panic, false);
}

#[test]
fn serve_write_panics_cost_one_response_never_the_worker() {
    serve_scenario("serve-write", FailAction::Panic, true);
}

#[test]
fn serve_accept_panics_drop_connections_never_the_acceptor() {
    // A panic on the accept path loses that connection (client sees EOF);
    // the acceptor itself must survive to serve the post-fault probe.
    serve_scenario("serve-accept", FailAction::Panic, true);
}

#[test]
fn serve_accept_sleep_delays_but_answers_exactly() {
    serve_scenario("serve-accept", FailAction::SleepMs(10), false);
}

/// The acceptance scenario: an expensive goal under a 100 ms deadline gets
/// a typed timeout while concurrent cheap goals answer bit-exactly. The
/// expensive goal is made reliably slow with a sleeping sweep failpoint —
/// wall-clock heavy, CPU-light, deterministic.
#[test]
fn tight_deadlines_time_out_expensive_goals_while_cheap_ones_answer() {
    let _serial = chaos_lock();
    let server = spawn_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Warm nothing: the circuit goal sweeps (and thus sleeps) on every
    // evaluation of a *fresh* lineage; cheap safe-plan goals never sweep.
    let _armed = failpoint::arm_guard("circuit-sweep", FailAction::SleepMs(400));
    let outcomes = with_watchdog(Duration::from_secs(60), "deadline-vs-cheap", move || {
        std::thread::scope(|scope| {
            let slow = scope.spawn(move || {
                post_query(addr, "/query?deadline_ms=100", "?- Hop(x, y), Hop(y, z).")
            });
            let cheap: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || post_query(addr, "/query", "?- Train(x, y).")))
                .collect();
            (
                slow.join().unwrap(),
                cheap
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>(),
            )
        })
    });
    let (slow, cheap) = outcomes;
    assert!(slow.contains("504 Gateway Timeout"), "{slow}");
    assert!(slow.contains("\"kind\":\"deadline\""), "{slow}");
    for response in cheap {
        assert!(
            response.contains("\"probability\":0.980000000"),
            "cheap goals must answer exactly under a neighbour's deadline: {response}"
        );
    }
    server.shutdown();
}

/// Budgets also trip on explicit cancellation, reported as `Cancelled`
/// (not `DeadlineExceeded`) — checked engine-side, under load.
#[test]
fn cancellation_surfaces_as_a_typed_error_under_load() {
    let _serial = chaos_lock();
    let (tid, chain) = workload();
    let engine = Engine::new();
    let handle = stuc::CancelHandle::new();
    handle.cancel();
    let budget = EvalBudget::unlimited().cancelled_by(&handle);
    match engine.evaluate_with_budget(&tid, &chain, &budget) {
        Err(StucError::Cancelled { stage }) => assert!(!stage.is_empty()),
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The cancel flag is per-budget: the same engine answers without it.
    let expected = oracle();
    let got = engine.evaluate(&tid, &chain).unwrap().probability;
    assert_eq!(got.to_bits(), expected.to_bits());
}
