//! Differential coverage of the textual front-end: a corpus of textual
//! queries — safe (hierarchical, self-join-free), unsafe-but-compilable
//! (non-hierarchical or self-joining, handled by circuits), and
//! syntactically invalid — evaluated through `Engine::evaluate_text` and
//! checked against the same queries built programmatically with
//! `stuc_query`, on TID, pc- and pcc-instances, across every back-end.
//!
//! Also asserts the cost model's route choice per corpus kind: safe queries
//! take the safe-plan route, unsafe-but-compilable ones take the circuit
//! route, and invalid ones fail with a spanned parse error before any
//! routing happens.

use stuc::circuit::weights::Weights;
use stuc::circuit::wmc::WmcError;
use stuc::data::cinstance::{CInstance, PcInstance};
use stuc::data::pcc::PccInstance;
use stuc::data::tid::TidInstance;
use stuc::lang::cost::Route;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{BackendKind, Engine, LangError, StucError};

/// What the cost model must decide for a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// Hierarchical and self-join-free: routed to the safe plan.
    Safe,
    /// Unsafe for extensional evaluation but compilable: routed to circuits.
    Circuit,
    /// Must fail to parse with a spanned error.
    Invalid,
}

/// One corpus entry: the surface text, the expected route, and (when the
/// goal is a single conjunctive query, possibly via rules) the equivalent
/// programmatic `stuc_query` construction to check probabilities against.
struct Case {
    text: &'static str,
    kind: Kind,
    cq: Option<&'static str>,
}

/// ≥ 15 textual queries: 7 safe, 6 circuit-bound, 5 invalid.
const CORPUS: &[Case] = &[
    // — safe: hierarchical, self-join-free, cheap —
    Case {
        text: "?- R(x).",
        kind: Kind::Safe,
        cq: Some("R(x)"),
    },
    Case {
        text: "?- S(x, y).",
        kind: Kind::Safe,
        cq: Some("S(x, y)"),
    },
    Case {
        text: "?- R(x), S(x, y).",
        kind: Kind::Safe,
        cq: Some("R(x), S(x, y)"),
    },
    Case {
        text: "?- R(\"a\").",
        kind: Kind::Safe,
        cq: Some("R(\"a\")"),
    },
    Case {
        text: "?- R(x), S(x, \"b\").",
        kind: Kind::Safe,
        cq: Some("R(x), S(x, \"b\")"),
    },
    Case {
        text: "?- Missing(x).",
        kind: Kind::Safe,
        cq: None,
    },
    Case {
        text: "?- T(y); R(x).",
        kind: Kind::Safe,
        cq: None,
    },
    // — unsafe for the safe plan, compilable as circuits —
    Case {
        text: "?- R(x), S(x, y), T(y).",
        kind: Kind::Circuit,
        cq: Some("R(x), S(x, y), T(y)"),
    },
    Case {
        text: "?- E(x, y), E(y, z).",
        kind: Kind::Circuit,
        cq: Some("E(x, y), E(y, z)"),
    },
    Case {
        text: "?- E(x, y), E(y, x).",
        kind: Kind::Circuit,
        cq: Some("E(x, y), E(y, x)"),
    },
    Case {
        text: "Hop(x, z) :- E(x, y), E(y, z). ?- Hop(x, z).",
        kind: Kind::Circuit,
        cq: Some("E(x, y), E(y, z)"),
    },
    Case {
        text: "Q(x) :- R(x), S(x, y), T(y). ?- Q(x).",
        kind: Kind::Circuit,
        cq: Some("R(x), S(x, y), T(y)"),
    },
    Case {
        text: "A(x) :- E(x, y), E(y, x). ?- A(\"a\").",
        kind: Kind::Circuit,
        cq: Some("E(\"a\", y), E(y, \"a\")"),
    },
    // — syntactically invalid —
    Case {
        text: "?- R(x",
        kind: Kind::Invalid,
        cq: None,
    },
    Case {
        text: "0.5 : R(\"a\").",
        kind: Kind::Invalid,
        cq: None,
    },
    Case {
        text: "?- R(x), .",
        kind: Kind::Invalid,
        cq: None,
    },
    Case {
        text: "R() :- .",
        kind: Kind::Invalid,
        cq: None,
    },
    Case {
        text: "?- ; R(x).",
        kind: Kind::Invalid,
        cq: None,
    },
];

/// `(relation, args, probability)` triples shared by all three instances.
const FACTS: &[(&str, &[&str], f64)] = &[
    ("R", &["a"], 0.4),
    ("R", &["b"], 0.7),
    ("S", &["a", "b"], 0.5),
    ("S", &["a", "c"], 0.3),
    ("S", &["b", "b"], 0.6),
    ("T", &["b"], 0.8),
    ("T", &["c"], 0.2),
    ("E", &["a", "b"], 0.5),
    ("E", &["b", "c"], 0.5),
    ("E", &["c", "a"], 0.5),
];

fn tid() -> TidInstance {
    let mut tid = TidInstance::new();
    for (relation, args, p) in FACTS {
        tid.add_fact_named(relation, args, *p);
    }
    tid
}

/// The same facts as a pc-instance: one independent event per fact, so the
/// semantics (and every probability) must coincide with the TID exactly.
fn pc() -> PcInstance {
    let mut ci = CInstance::new();
    let mut weights = Weights::new();
    for (i, (relation, args, p)) in FACTS.iter().enumerate() {
        let event = format!("e{i}");
        ci.add_fact_with_condition(relation, args, &event).unwrap();
        let var = ci.events().find(&event).unwrap();
        weights.set(var, *p);
    }
    ci.with_probabilities(weights)
}

fn pcc() -> PccInstance {
    PccInstance::from_pc_instance(&pc())
}

#[test]
fn the_corpus_routes_and_parses_as_specified() {
    let tid = tid();
    let engine = Engine::new();
    for case in CORPUS {
        match case.kind {
            Kind::Invalid => {
                let error = engine.evaluate_text(&tid, case.text).expect_err(case.text);
                match error {
                    StucError::Lang(LangError::Parse(parse)) => {
                        assert!(parse.span.line >= 1, "{}: span missing", case.text);
                        assert!(
                            !parse.expected.is_empty(),
                            "{}: no expected-token set",
                            case.text
                        );
                    }
                    other => panic!("{}: expected a parse error, got {other}", case.text),
                }
            }
            Kind::Safe | Kind::Circuit => {
                let outcome = engine.evaluate_text(&tid, case.text).expect(case.text);
                let goal = &outcome.goals[0];
                let expected_route = match case.kind {
                    Kind::Safe => Route::SafePlan,
                    _ => Route::Circuit,
                };
                assert_eq!(
                    goal.report.route,
                    Some(expected_route),
                    "{}: wrong route ({})",
                    case.text,
                    goal.decision.summary()
                );
                assert!(
                    (0.0..=1.0).contains(&goal.probability),
                    "{}: probability {} out of range",
                    case.text,
                    goal.probability
                );
            }
        }
    }
}

/// Textual evaluation agrees with the programmatic construction on the TID,
/// under the automatic policy and under every pinned circuit back-end.
#[test]
fn text_agrees_with_programmatic_queries_on_tid_across_backends() {
    let tid = tid();
    for case in CORPUS {
        let Some(cq_text) = case.cq else { continue };
        let cq = ConjunctiveQuery::parse(cq_text).unwrap();
        let reference = Engine::new()
            .evaluate(&tid, &cq)
            .expect(cq_text)
            .probability;

        let text_auto = Engine::new()
            .evaluate_text(&tid, case.text)
            .expect(case.text);
        assert!(
            (text_auto.goals[0].probability - reference).abs() < 1e-9,
            "{}: text {} vs programmatic {}",
            case.text,
            text_auto.goals[0].probability,
            reference
        );

        for kind in [
            BackendKind::TreewidthWmc,
            BackendKind::Dpll,
            BackendKind::Enumeration,
        ] {
            let engine = Engine::builder().backend(kind).build();
            let text = match engine.evaluate_text(&tid, case.text) {
                // Pinned treewidth WMC may legitimately refuse a circuit
                // wider than its budget; agreement covers given answers.
                Err(StucError::Wmc(WmcError::WidthTooLarge { .. }))
                    if kind == BackendKind::TreewidthWmc =>
                {
                    continue;
                }
                other => other.expect(case.text),
            };
            let goal = &text.goals[0];
            assert_eq!(goal.report.backend, kind, "{}: pinned {kind}", case.text);
            assert_eq!(goal.report.route, Some(Route::Circuit));
            assert!(
                (goal.probability - reference).abs() < 1e-9,
                "{}: pinned {kind} gave {} vs {}",
                case.text,
                goal.probability,
                reference
            );
        }
    }
}

/// The same differential on pc- and pcc-instances: per-fact independent
/// events make them TID-equivalent, so text, programmatic, and
/// cross-representation probabilities must all coincide.
#[test]
fn text_agrees_with_programmatic_queries_on_pc_and_pcc() {
    let tid = tid();
    let pc = pc();
    let pcc = pcc();
    let engine = Engine::new();
    for case in CORPUS {
        let Some(cq_text) = case.cq else { continue };
        let cq = ConjunctiveQuery::parse(cq_text).unwrap();
        let reference = engine.evaluate(&tid, &cq).unwrap().probability;

        let on_pc = engine.evaluate_text(&pc, case.text).expect(case.text);
        let programmatic_pc = engine.evaluate(&pc, &cq).expect(cq_text);
        assert!(
            (on_pc.goals[0].probability - programmatic_pc.probability).abs() < 1e-9,
            "{}: pc text vs pc programmatic",
            case.text
        );
        assert!(
            (on_pc.goals[0].probability - reference).abs() < 1e-9,
            "{}: pc {} vs tid {}",
            case.text,
            on_pc.goals[0].probability,
            reference
        );

        let on_pcc = engine.evaluate_text(&pcc, case.text).expect(case.text);
        assert!(
            (on_pcc.goals[0].probability - reference).abs() < 1e-9,
            "{}: pcc {} vs tid {}",
            case.text,
            on_pcc.goals[0].probability,
            reference
        );
        // Neither carrier offers the extensional fast path, so even safe
        // queries run on circuits there.
        assert_eq!(on_pc.goals[0].report.route, Some(Route::Circuit));
        assert_eq!(on_pcc.goals[0].report.route, Some(Route::Circuit));
    }
}

/// Unions and ground negation lower by inclusion–exclusion; check them
/// against the same formula assembled from programmatic evaluations.
#[test]
fn unions_and_negation_match_manual_inclusion_exclusion() {
    let tid = tid();
    let engine = Engine::new();
    let p = |text: &str| {
        engine
            .evaluate(&tid, &ConjunctiveQuery::parse(text).unwrap())
            .unwrap()
            .probability
    };

    let union = engine.evaluate_text(&tid, "?- T(y); R(x).").unwrap();
    let expected = p("T(y)") + p("R(x)") - p("T(y), R(x)");
    assert!((union.goals[0].probability - expected).abs() < 1e-9);

    let negation = engine
        .evaluate_text(&tid, "?- R(x), !S(\"a\", \"b\").")
        .unwrap();
    let expected = p("R(x)") - p("R(x), S(\"a\", \"b\")");
    assert!((negation.goals[0].probability - expected).abs() < 1e-9);
    assert_eq!(negation.goals[0].report.route, Some(Route::SafePlan));
}

/// A safe query stays pinnable to the safe plan through the text path, and
/// the goal's report exposes the decision evidence.
#[test]
fn pinned_safe_plan_runs_safe_corpus_queries() {
    let tid = tid();
    let engine = Engine::builder().backend(BackendKind::SafePlan).build();
    let outcome = engine.evaluate_text(&tid, "?- R(x), S(x, y).").unwrap();
    let goal = &outcome.goals[0];
    assert_eq!(goal.report.backend, BackendKind::SafePlan);
    assert_eq!(goal.report.route, Some(Route::SafePlan));
    assert!(goal.decision.safe_eligible);
    let reference = Engine::new()
        .evaluate(&tid, &ConjunctiveQuery::parse("R(x), S(x, y)").unwrap())
        .unwrap()
        .probability;
    assert!((goal.probability - reference).abs() < 1e-9);
}
