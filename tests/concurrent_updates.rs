//! Updates racing reads on one shared engine never produce torn state.
//!
//! `Engine::apply_update` rekeys and patches cache entries while other
//! threads are reading them. The contract: a reader evaluating *its own*
//! snapshot of an instance (pre-delta or post-delta) always gets exactly
//! that snapshot's answer — never a blend of the two, never a panic — no
//! matter how the update interleaves with the reads. The caches are keyed
//! by instance fingerprint and revalidated dual-hash on every hit, so a
//! patched entry can only ever be served for the state it describes; these
//! tests drive that claim with real thread interleavings over random
//! deltas.
//!
//! The second test races the other cache hazard: eviction under a tiny
//! capacity while readers still hold `Arc`s to evicted entries.

use proptest::prelude::*;
use std::sync::Arc;
use stuc::core::workloads;
use stuc::data::instance::FactId;
use stuc::graph::generators::SplitMix64;
use stuc::incr::Delta;
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

fn cold(tid: &stuc::data::tid::TidInstance, query: &ConjunctiveQuery) -> f64 {
    Engine::new().evaluate(tid, query).unwrap().probability
}

/// A delta exercising all three patch paths against a path-shaped TID:
/// reweight (rekey), insert (extension), delete (rewiring).
fn random_delta(rng: &mut SplitMix64, facts: usize) -> Delta {
    let mut delta = Delta::new();
    for _ in 0..1 + rng.next_below(3) {
        match rng.next_below(3) {
            0 => {
                let a = format!("c{}", rng.next_below(8));
                let b = format!("c{}", rng.next_below(8));
                delta = delta.insert("R", &[&a, &b], 0.05 + 0.9 * rng.next_f64());
            }
            1 if facts > 1 => {
                delta = delta.delete(FactId(rng.next_below(facts)));
            }
            _ if facts > 0 => {
                delta = delta
                    .set_probability(FactId(rng.next_below(facts)), 0.05 + 0.9 * rng.next_f64());
            }
            _ => {}
        }
    }
    delta
}

proptest! {
    // Each case spawns 9 threads; keep the case count modest so the suite
    // stays fast under `--test-threads=8`.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Readers pinned to a pre-delta or post-delta snapshot observe exactly
    /// that snapshot's answer while `apply_update` rekeys the caches
    /// underneath them.
    #[test]
    fn updates_racing_reads_never_tear(n in 4usize..9, p in 0.2f64..0.8, seed in 0u64..10_000) {
        let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let scan = ConjunctiveQuery::parse("R(x, y)").unwrap();
        let pre = workloads::path_tid(n, p, seed);
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let delta = random_delta(&mut rng, pre.fact_count());

        // Oracles from fresh engines; `post` is what the writer's instance
        // becomes after the delta.
        let mut post = pre.clone();
        Engine::new().apply_update(&mut post, &delta).unwrap();
        let oracle_pre_chain = cold(&pre, &chain);
        let oracle_pre_scan = cold(&pre, &scan);
        let oracle_post_chain = cold(&post, &chain);

        let engine = Arc::new(Engine::new());
        // Warm the caches with the pre state so the update has entries to
        // rekey while readers are mid-flight.
        engine.evaluate(&pre, &chain).unwrap();

        std::thread::scope(|scope| {
            // The writer: applies the delta to its own live instance through
            // the shared engine, then re-reads its post state.
            {
                let engine = Arc::clone(&engine);
                let mut live = pre.clone();
                let delta = delta.clone();
                let chain = chain.clone();
                scope.spawn(move || {
                    engine.apply_update(&mut live, &delta).unwrap();
                    let after = engine.evaluate(&live, &chain).unwrap();
                    assert!(
                        (after.probability - oracle_post_chain).abs() < 1e-9,
                        "writer post-delta: {} vs {oracle_post_chain}",
                        after.probability
                    );
                });
            }
            // Pre-snapshot readers: must keep seeing the pre answer even as
            // the writer drains/rekeys entries sharing their fingerprints.
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let pre = pre.clone();
                let chain = chain.clone();
                let scan = scan.clone();
                scope.spawn(move || {
                    for _ in 0..6 {
                        let got = engine.evaluate(&pre, &chain).unwrap().probability;
                        assert!(
                            (got - oracle_pre_chain).abs() < 1e-9,
                            "pre reader chain: {got} vs {oracle_pre_chain}"
                        );
                        let got = engine.evaluate(&pre, &scan).unwrap().probability;
                        assert!(
                            (got - oracle_pre_scan).abs() < 1e-9,
                            "pre reader scan: {got} vs {oracle_pre_scan}"
                        );
                    }
                });
            }
            // Post-snapshot readers: racing the writer's rekey from the
            // other side (their first evaluations may compile fresh while
            // the patched entries are being installed for the same key).
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let post = post.clone();
                let chain = chain.clone();
                scope.spawn(move || {
                    for _ in 0..6 {
                        let got = engine.evaluate(&post, &chain).unwrap().probability;
                        assert!(
                            (got - oracle_post_chain).abs() < 1e-9,
                            "post reader chain: {got} vs {oracle_post_chain}"
                        );
                    }
                });
            }
        });
    }

    /// Eviction under a tiny capacity racing readers that still hold `Arc`s
    /// to the evicted entries: answers stay exact, nothing panics, and the
    /// bound holds at the end.
    #[test]
    fn eviction_racing_readers_is_safe(seed in 0u64..10_000) {
        let chain = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Arc::new(Engine::builder().cache_capacity(2).build());

        // One pinned instance a dedicated reader hammers, plus a churn set
        // large enough to keep evicting it.
        let pinned = workloads::path_tid(7, 0.5, seed);
        let oracle_pinned = cold(&pinned, &chain);
        let churn: Vec<_> = (0..6)
            .map(|i| workloads::path_tid(4 + (i % 3), 0.4, seed.wrapping_add(i as u64 + 1)))
            .collect();
        let churn_oracle: Vec<f64> = churn.iter().map(|t| cold(t, &chain)).collect();

        std::thread::scope(|scope| {
            {
                let engine = Arc::clone(&engine);
                let pinned = pinned.clone();
                let chain = chain.clone();
                scope.spawn(move || {
                    for _ in 0..12 {
                        let got = engine.evaluate(&pinned, &chain).unwrap().probability;
                        assert!(
                            (got - oracle_pinned).abs() < 1e-9,
                            "pinned reader: {got} vs {oracle_pinned}"
                        );
                    }
                });
            }
            for offset in 0..3 {
                let engine = Arc::clone(&engine);
                let churn = churn.clone();
                let churn_oracle = churn_oracle.clone();
                let chain = chain.clone();
                scope.spawn(move || {
                    for round in 0..8 {
                        let i = (offset + round) % churn.len();
                        let got = engine.evaluate(&churn[i], &chain).unwrap().probability;
                        assert!(
                            (got - churn_oracle[i]).abs() < 1e-9,
                            "churn reader {i}: {got} vs {}",
                            churn_oracle[i]
                        );
                    }
                });
            }
        });

        let stats = engine.cache_stats();
        prop_assert!(stats.lineages.entries <= 2, "capacity bound violated: {stats:?}");
        prop_assert!(stats.decompositions.entries <= 2, "capacity bound violated: {stats:?}");
    }
}
