//! Integrating ranked lists with uncertain relative order (paper §3).
//!
//! Two travel sites rank the same hotels by an unknown proprietary relevance
//! function. Integrating the lists gives a po-relation whose possible worlds
//! are the interleavings; this example walks through the PosRA operators, the
//! set-semantics view, the uniform distribution over linear extensions
//! (precedence / rank / top-k probabilities, sampling), and order induced by
//! uncertain numerical scores.
//!
//! Run with: `cargo run --example preference_integration`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stuc::order::numeric::NumericPoRelation;
use stuc::order::porelation::PoRelation;
use stuc::order::posra::{product_parallel, select, union_parallel};
use stuc::order::probability::LinearExtensionDistribution;
use stuc::order::setops::{set_possible_worlds, union_distinct};

fn ranked(items: &[&str]) -> PoRelation {
    PoRelation::totally_ordered(items.iter().map(|s| vec![s.to_string()]).collect())
}

fn main() {
    // Two sources rank overlapping sets of hotels.
    let site_a = ranked(&["ritz", "grand", "hostel"]);
    let site_b = ranked(&["palace", "grand"]);

    // Bag-semantics integration: no order constraints between the sources.
    let merged = union_parallel(&site_a, &site_b);
    println!(
        "merged list: {} entries, {} possible orderings",
        merged.len(),
        merged.count_linear_extensions().unwrap()
    );

    // Set-semantics integration: duplicate hotels are merged; only the
    // *certain* order survives.
    let distinct = union_distinct(&site_a, &site_b);
    println!(
        "distinct hotels: {} entries, {} certain-order worlds, {} exact set worlds",
        distinct.len(),
        distinct.count_linear_extensions().unwrap(),
        set_possible_worlds(&merged).unwrap().len()
    );

    // The uniform distribution over the merged list's linear extensions.
    let distribution = LinearExtensionDistribution::new(&merged).unwrap();
    let ritz = merged
        .elements()
        .find(|(_, t)| t[0] == "ritz")
        .map(|(e, _)| e)
        .unwrap();
    let palace = merged
        .elements()
        .find(|(_, t)| t[0] == "palace")
        .map(|(e, _)| e)
        .unwrap();
    println!(
        "P[ritz ranked before palace] = {:.4}",
        distribution.precedence_probability(ritz, palace)
    );
    println!(
        "P[ritz in the top 2]        = {:.4}",
        distribution.top_k_probability(ritz, 2)
    );
    println!(
        "expected rank of palace      = {:.4}",
        distribution.expected_rank(palace)
    );

    // Draw a few consensus rankings uniformly at random.
    let mut rng = StdRng::seed_from_u64(2015);
    for draw in 0..3 {
        let sample = distribution.sample(&mut rng);
        let labels: Vec<&str> = sample
            .iter()
            .map(|&e| merged.tuple(e)[0].as_str())
            .collect();
        println!("sampled ranking {draw}: {}", labels.join(" > "));
    }

    // Pair the ranked hotels with a ranked restaurant list (dominance order).
    let restaurants = ranked(&["bistro", "diner"]);
    let pairs = product_parallel(&select(&merged, |t| t[0] != "hostel"), &restaurants);
    println!(
        "hotel × restaurant pairs: {} combinations, {} possible orderings",
        pairs.len(),
        pairs.count_linear_extensions().unwrap()
    );

    // Order arising from uncertain numerical scores (crowd-estimated ratings).
    let mut scores = NumericPoRelation::new();
    let ritz_score = scores.add_interval(vec!["ritz".into()], 8.0, 9.5).unwrap();
    let grand_score = scores.add_interval(vec!["grand".into()], 7.0, 8.5).unwrap();
    let hostel_score = scores.add_exact(vec!["hostel".into()], 5.0);
    scores.add_comparison(hostel_score, grand_score).unwrap();
    scores.tighten().unwrap();
    let guesses = scores.interpolate_midpoints();
    println!(
        "interpolated scores: ritz {:.2}, grand {:.2}, hostel {:.2}",
        guesses[ritz_score.0], guesses[grand_score.0], guesses[hostel_score.0]
    );
    println!(
        "P[grand outranks ritz under uniform scores] = {:.4}",
        scores.precedence_probability_uniform(ritz_score, grand_score)
    );
    let induced = scores.induced_order();
    println!(
        "score-induced order: {} constraints certain, totally ordered: {}",
        induced.order_edges().count(),
        induced.is_totally_ordered()
    );
}
