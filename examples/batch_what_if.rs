//! Batched evaluation and what-if re-weighting: the Engine as a server.
//!
//! A knowledge-base scenario: one uncertain link table, a workload of many
//! queries arriving at once, followed by a sensitivity sweep that re-asks
//! one query under a range of trust levels. The batch shares one structure
//! decomposition (and, for repeated queries, one compiled lineage) across
//! all workers; the sweep reuses a single compiled lineage for every trust
//! level, so only the counting sweep is paid per step.
//!
//! Run with: `cargo run --release --example batch_what_if`

use std::time::Instant;
use stuc::data::instance::FactId;
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

fn main() {
    // An uncertain link chain, e.g. extracted citation edges.
    let mut tid = stuc::data::tid::TidInstance::new();
    for i in 0..64 {
        tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
    }

    // A workload: one anchored chain query per start node — every query is
    // distinct, so this exercises parallelism rather than lineage reuse.
    let queries: Vec<ConjunctiveQuery> = (0..48)
        .map(|k| {
            ConjunctiveQuery::parse(&format!("R(\"c{k}\", x), R(x, y), R(y, z)"))
                .expect("valid anchored query")
        })
        .collect();

    let engine = Engine::new();
    let started = Instant::now();
    let batch = engine.evaluate_batch(&tid, &queries);
    println!(
        "evaluated {} queries on {} thread(s) in {:?} ({} ok, {} failed)",
        batch.len(),
        batch.threads,
        started.elapsed(),
        batch.succeeded(),
        batch.failed(),
    );
    println!(
        "cache sharing: {} lineage hits, {} decomposition hits",
        batch.lineage_cache_hits, batch.decomposition_cache_hits
    );
    let mean: f64 = batch.probabilities().iter().flatten().sum::<f64>() / batch.len() as f64;
    println!("mean chain probability: {mean:.6}");

    // Sensitivity sweep: how does one chain's probability react as trust in
    // the extractor varies? All trust levels are answered by ONE lane sweep
    // over the compiled lineage (`reevaluate_with_weights_many`): the
    // traversal and constraint checks are shared, only the K-wide f64
    // arithmetic differs per scenario.
    let probe = ConjunctiveQuery::parse("R(\"c5\", x), R(x, y), R(y, z)").expect("valid query");
    engine.evaluate(&tid, &probe).expect("probe evaluates");
    let trusts = [0.1, 0.3, 0.5, 0.7, 0.9];
    let scenarios: Vec<_> = trusts
        .iter()
        .map(|&trust| {
            let mut scenario = tid.clone();
            for i in 0..scenario.fact_count() {
                scenario.set_probability(FactId(i), trust);
            }
            scenario.fact_weights()
        })
        .collect();
    let sweep_started = Instant::now();
    let reports = engine
        .reevaluate_with_weights_many(&tid, &probe, &scenarios)
        .expect("weights cover the lineage");
    println!(
        "\ntrust sweep for {probe} ({} scenarios, one lane sweep, {:?}):",
        trusts.len(),
        sweep_started.elapsed(),
    );
    for (trust, report) in trusts.iter().zip(&reports) {
        assert!(report.lineage_cached, "sweep reuses the compiled lineage");
        println!("  trust {trust:.1}: P = {:.6}", report.probability);
    }
}
