//! Knowledge-base completion with mined probabilistic rules (paper §2.3).
//!
//! Starting from a Wikidata-style knowledge base, this example (1) mines soft
//! rules from the data with their observed confidences, (2) compares
//! open-world *certain* answers under hard rules with *probable* answers
//! under the mined soft rules, and (3) shows how a non-terminating rule set
//! is handled by truncating the chase with certified error bounds.
//!
//! Run with: `cargo run --example kb_completion`

use stuc::data::instance::Instance;
use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;
use stuc::rules::constraints::HardConstraints;
use stuc::rules::mining::RuleMiner;
use stuc::rules::truncation::TruncatedChase;
use stuc::rules::{ProbabilisticChase, Rule};

/// The fully observed part of the knowledge base, used for rule mining.
fn training_kb() -> Instance {
    let mut kb = Instance::new();
    for (person, country) in [
        ("alice", "france"),
        ("bob", "france"),
        ("carol", "japan"),
        ("dave", "japan"),
    ] {
        kb.add_fact_named("Citizen", &[person, country]);
    }
    kb.add_fact_named("Lives", &["alice", "france"]);
    kb.add_fact_named("Lives", &["bob", "france"]);
    kb.add_fact_named("Lives", &["carol", "japan"]);
    kb.add_fact_named("Lives", &["dave", "germany"]);
    kb.add_fact_named("OfficialLanguage", &["france", "french"]);
    kb.add_fact_named("OfficialLanguage", &["japan", "japanese"]);
    kb.add_fact_named("Speaks", &["alice", "french"]);
    kb.add_fact_named("Speaks", &["bob", "french"]);
    kb.add_fact_named("Speaks", &["carol", "japanese"]);
    kb
}

fn main() {
    // 1. Mine soft rules (with observed confidences) from the training data.
    let miner = RuleMiner {
        min_support: 2,
        min_confidence: 0.6,
        mine_path_rules: true,
    };
    let mined = miner.mine(&training_kb());
    println!("mined {} rules:", mined.len());
    for rule in mined.iter().take(6) {
        println!(
            "  {}   (support {}, coverage {:.2})",
            rule.rule, rule.support, rule.head_coverage
        );
    }

    // 2. A new, incomplete entity: we only know (uncertainly) that erin is a
    //    French citizen. What does she probably speak?
    let mut uncertain_kb = TidInstance::new();
    uncertain_kb.add_fact_named("Citizen", &["erin", "france"], 0.9);
    uncertain_kb.add_fact_named("OfficialLanguage", &["france", "french"], 1.0);
    let query = ConjunctiveQuery::parse("Speaks(\"erin\", \"french\")").expect("valid query");

    // Hard-rule baseline: treating the mined rules as hard constraints
    // overcommits — it declares the answer *certain* even though the rules
    // only hold in a fraction of cases and the citizenship fact itself is
    // uncertain. This is the paper's argument for soft rules.
    let hard_rules: Vec<Rule> = mined.iter().map(|m| m.rule.clone()).collect();
    let hard = HardConstraints::new(hard_rules);
    let certain = hard
        .certain(uncertain_kb.instance(), &query)
        .expect("chase terminates");
    println!("\ncertain when the mined rules are (wrongly) treated as hard: {certain}");

    // Soft-rule completion: the probabilistic chase combines the fact
    // probability with the mined confidences.
    let soft_rules: Vec<Rule> = mined.iter().map(|m| m.rule.clone()).collect();
    let chase = ProbabilisticChase::new(soft_rules.clone());
    let completed = chase.run(&uncertain_kb).expect("chase fits the budget");
    let probability = completed.query_probability(&query).expect("small lineage");
    println!(
        "probable under mined soft rules: P[Speaks(erin, french)] = {probability:.4} \
         ({} derived facts, {} rule applications)",
        completed.derived_fact_count(),
        completed.applications
    );

    // 3. A non-terminating rule set ("everyone has an ancestor, who is a
    //    person"), handled by truncation with certified bounds.
    let ancestor_rules =
        vec![Rule::parse("Ancestor(x, a), Person(a) :- Person(x)", 0.6).expect("valid rule")];
    let mut people = TidInstance::new();
    people.add_fact_named("Person", &["erin"], 1.0);
    let truncated = TruncatedChase::new(ancestor_rules);
    let ancestor_query = ConjunctiveQuery::parse("Ancestor(\"erin\", x)").expect("valid query");
    println!("\ntruncated chase for the non-terminating ancestor rule:");
    for depth in 1..=4 {
        let report = truncated
            .evaluate(&people, &ancestor_query, depth)
            .expect("bounded chase");
        println!(
            "  depth {depth}: P ∈ [{:.4}, {:.4}] (error {:.4}, converged: {})",
            report.lower_bound,
            report.upper_bound,
            report.error(),
            report.converged
        );
    }
}
