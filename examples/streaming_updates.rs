//! Streaming updates: a live engine absorbing inserts, deletes and
//! re-weights without rebuilding the world.
//!
//! A knowledge-base service keeps an 80-fact path instance hot behind an
//! `Engine` and serves anchored chain queries. Updates stream in as typed
//! [`Delta`] transactions; `Engine::apply_update` patches the cached
//! decomposition and every cached compiled lineage in place, rekeys them to
//! the mutated instance, and reports what was reused vs rebuilt. Every
//! answer is cross-checked against a cold engine.
//!
//! Run with `cargo run --example streaming_updates`.

use stuc::data::instance::FactId;
use stuc::incr::{Delta, Updatable, UpdateLog};
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

fn main() {
    let mut live = stuc::core::workloads::path_tid(80, 0.5, 13);
    let replica_base = live.clone();
    let queries: Vec<ConjunctiveQuery> = (0..8)
        .map(|k| {
            ConjunctiveQuery::parse(&format!("R(\"c{}\", x), R(x, y), R(y, z)", 10 * k)).unwrap()
        })
        .collect();

    let engine = Engine::new();
    println!(
        "warming {} queries on {} facts…",
        queries.len(),
        live.fact_count()
    );
    for query in &queries {
        engine.evaluate(&live, query).unwrap();
    }
    println!(
        "cached: {} decomposition(s), {} compiled lineage(s)\n",
        engine.cached_decompositions(),
        engine.cached_lineages()
    );

    // The update stream: trust revisions, new measurements, retractions.
    let stream = vec![
        (
            "trust revision (weights only)",
            Delta::new()
                .set_probability(FactId(10), 0.95)
                .set_probability(FactId(11), 0.15),
        ),
        (
            "new measurement (insert, creates new chain matches)",
            Delta::new().insert("R", &["c72", "c99"], 0.42),
        ),
        (
            "retraction (delete fact 40)",
            Delta::new().delete(FactId(40)),
        ),
        (
            "mixed transaction",
            Delta::new()
                .insert("R", &["c81", "c82"], 0.33)
                .set_probability(FactId(0), 0.5),
        ),
    ];

    let mut log = UpdateLog::new();
    for (label, delta) in stream {
        // Keep a replayable log next to the live instance (replication).
        let mut shadow = live.clone();
        let application = shadow.apply_delta(&delta).unwrap();
        log.record(delta.clone(), &application);

        let report = engine.apply_update(&mut live, &delta).unwrap();
        println!("update: {label}");
        println!(
            "  +{} facts, -{} facts, {} re-weighted | lineages: {} patched, {} dropped",
            report.inserted,
            report.deleted,
            report.reweighted,
            report.lineages_patched,
            report.lineages_dropped
        );
        println!(
            "  gates rebuilt: {}, bags touched: {}, width {:?} -> {:?}{}",
            report.gates_rebuilt,
            report.bags_touched,
            report.width_before,
            report.width_after,
            if report.fell_back { " (fell back)" } else { "" }
        );

        // Serve the workload from the patched caches and cross-check.
        let cold = Engine::new();
        for query in &queries {
            let warm = engine.evaluate(&live, query).unwrap();
            let fresh = cold.evaluate(&live, query).unwrap();
            assert!(
                (warm.probability - fresh.probability).abs() < 1e-9,
                "warm and cold disagree on {query:?}"
            );
        }
        let hits = queries
            .iter()
            .filter(|q| engine.evaluate(&live, q).unwrap().lineage_cached)
            .count();
        println!(
            "  all {} answers match a cold engine; {hits} served from patched lineages\n",
            queries.len()
        );
    }

    // A replica catches up by replaying the log against the base snapshot.
    let mut replica = replica_base;
    let replayed = log.replay(&mut replica).unwrap();
    assert_eq!(replica, live);
    println!("replica replayed {replayed} deltas from the log and matches the live instance");
}
