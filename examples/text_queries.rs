//! Textual queries end to end: build an instance from a `stuc-lang`
//! program, then evaluate goals with `Engine::evaluate_text` and watch the
//! cost model route each one.
//!
//! Run with `cargo run --release --example text_queries`.

use stuc::lang::lower::program_instance;
use stuc::lang::parse_program;
use stuc::Engine;

fn main() {
    // A program with facts only: the textual way to build a TID instance.
    let data = r#"
        % two ground truths about trips, each uncertain
        0.8 :: Train("paris", "lille").
        0.6 :: Train("lille", "brussels").
        0.5 :: Flight("paris", "brussels").
        0.9 :: Open("brussels").
    "#;
    let program = parse_program(data).expect("data program parses");
    let tid = program_instance(&program).expect("facts are ground and weighted");
    println!("instance: {} facts", tid.fact_count());

    // Rules and goals evaluate against that instance. Each goal's report
    // says which route the cost model picked and why.
    let queries = r#"
        Hop(x, y) :- Train(x, y).
        Hop(x, y) :- Flight(x, y).
        Reach2(x, z) :- Hop(x, y), Hop(y, z).

        ?- Hop("paris", "brussels").
        ?- Reach2("paris", "brussels").
        ?- Hop("paris", x), Open(x).
        ?- Train(x, y), !Flight("paris", "brussels").
    "#;
    let engine = Engine::new();
    let outcome = engine.evaluate_text(&tid, queries).expect("goals evaluate");
    for goal in &outcome.goals {
        println!("\n?- {}.", goal.source);
        println!("   P = {:.9}", goal.probability);
        println!("   backend: {}", goal.report.backend_name());
        println!("   {}", goal.decision.summary());
    }

    // Errors are spanned and explain what was expected.
    let broken = engine.evaluate_text(&tid, "?- Train(x,").unwrap_err();
    println!("\nbroken goal: {broken}");
}
