//! Datalog provenance over an uncertain flight network (paper §2.2 / §2.3).
//!
//! The trips of the paper's Table 1 become an uncertain flight graph; a
//! recursive Datalog program computes reachability, and the provenance
//! circuits of the derived facts give exact probabilities of multi-hop
//! connections — the "circuits for Datalog provenance" construction the
//! paper relates its lineages to.
//!
//! Run with: `cargo run --example datalog_reachability`

use stuc::circuit::enumeration::probability_by_enumeration;
use stuc::circuit::wmc::TreewidthWmc;
use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::datalog::DatalogProgram;
use stuc::query::datalog_provenance::DatalogProvenance;

fn main() {
    // An uncertain flight network: each leg is bookable with some probability
    // (seat availability, schedule reliability, ...).
    let mut flights = TidInstance::new();
    for (from, to, probability) in [
        ("CDG", "MEL", 0.9),
        ("MEL", "PDX", 0.6),
        ("CDG", "JFK", 0.8),
        ("JFK", "PDX", 0.7),
        ("PDX", "CDG", 0.5),
    ] {
        flights.add_fact_named("Flight", &[from, to], probability);
    }

    // Reachability as a recursive Datalog program.
    let program = DatalogProgram::parse(
        "Reach(x, y) :- Flight(x, y)\n\
         Reach(x, z) :- Reach(x, y), Flight(y, z)",
    )
    .expect("valid program");
    println!(
        "program: {} rules, recursive: {}, monadic: {}",
        program.rules().len(),
        program.is_recursive(),
        program.is_monadic()
    );

    let provenance = DatalogProvenance::from_tid(&flights, &program).expect("fixpoint fits");
    println!(
        "saturated instance: {} facts ({} extensional)",
        provenance.saturated_instance().fact_count(),
        flights.fact_count()
    );

    // Probability of every interesting connection, by two back-ends.
    let weights = flights.fact_weights();
    for (from, to) in [
        ("CDG", "PDX"),
        ("CDG", "MEL"),
        ("MEL", "CDG"),
        ("PDX", "MEL"),
    ] {
        match provenance.fact_lineage("Reach", &[from, to]) {
            Some(lineage) => {
                let exact = TreewidthWmc::default()
                    .probability(&lineage, &weights)
                    .or_else(|_| probability_by_enumeration(&lineage, &weights))
                    .expect("small circuit");
                let gates = lineage.len();
                println!("P[reach {from} → {to}] = {exact:.4}   (lineage: {gates} gates)");
            }
            None => println!("P[reach {from} → {to}] = 0.0000   (underivable)"),
        }
    }

    // A query mixing extensional and derived relations: "some city reaches
    // PDX via a direct flight into PDX".
    let query = ConjunctiveQuery::parse("Reach(x, y), Flight(y, \"PDX\")").expect("valid query");
    let lineage = provenance.query_lineage(&query);
    let p = probability_by_enumeration(&lineage, &weights).expect("few variables");
    println!("P[∃ connection ending with a direct flight into PDX] = {p:.4}");
}
