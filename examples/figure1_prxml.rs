//! Experiment E1 — the paper's Figure 1, reproduced end to end.
//!
//! The PrXML document describes part of the Wikidata entry about Chelsea
//! Manning: an `ind` node for the uncertain occupation, a `mux` node for the
//! given name, and the contributor event `eJane` correlating the place of
//! birth and the surname. We compute exact probabilities for the natural
//! tree-pattern queries on it.
//!
//! Run with: `cargo run --example figure1_prxml`

use stuc::prxml::document::PrXmlDocument;
use stuc::prxml::queries::{query_probability, PrxmlQuery};
use stuc::prxml::scope::analyze_scopes;

fn main() {
    let doc = PrXmlDocument::figure1_example();
    println!(
        "Figure 1 PrXML document: {} nodes, {} variables",
        doc.len(),
        doc.variables().len()
    );

    let queries = [
        (
            "occupation 'musician' is recorded",
            PrxmlQuery::LabelExists("musician".into()),
        ),
        (
            "given name is 'Chelsea'",
            PrxmlQuery::LabelExists("Chelsea".into()),
        ),
        (
            "given name is 'Bradley'",
            PrxmlQuery::LabelExists("Bradley".into()),
        ),
        (
            "place of birth is recorded",
            PrxmlQuery::LabelExists("place of birth".into()),
        ),
        (
            "both of Jane's facts are present",
            PrxmlQuery::And(
                Box::new(PrxmlQuery::LabelExists("place of birth".into())),
                Box::new(PrxmlQuery::LabelExists("surname".into())),
            ),
        ),
        (
            "occupation recorded AND given name 'Chelsea'",
            PrxmlQuery::And(
                Box::new(PrxmlQuery::LabelExists("musician".into())),
                Box::new(PrxmlQuery::LabelExists("Chelsea".into())),
            ),
        ),
        (
            "surname 'Manning' under a 'surname' element",
            PrxmlQuery::ParentChild {
                parent: "surname".into(),
                child: "Manning".into(),
            },
        ),
    ];

    for (description, query) in queries {
        let p = query_probability(&doc, &query).expect("tractable document");
        println!("P[{description}] = {p:.4}");
    }

    let scopes = analyze_scopes(&doc);
    println!(
        "event scopes: max node scope = {}, shared events = {}",
        scopes.max_node_scope(),
        scopes.shared_event_count()
    );
}
