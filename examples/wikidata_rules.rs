//! Experiment E10 flavour — completing an uncertain knowledge base with
//! probabilistic rules (Section 2.3 of the paper).
//!
//! Starting from an uncertain Wikidata-style KB, soft rules ("citizens of a
//! country usually live there", "residents usually speak the official
//! language", "a PhD student and their advisor have probably co-authored
//! some paper") are chased; derived facts carry lineage circuits and exact
//! probabilities.
//!
//! Run with: `cargo run --example wikidata_rules`

use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;
use stuc::rules::chase::ProbabilisticChase;
use stuc::rules::rule::Rule;

fn main() {
    // The uncertain base KB (facts extracted with confidences).
    let mut kb = TidInstance::new();
    kb.add_fact_named("Citizen", &["alice", "france"], 0.9);
    kb.add_fact_named("Citizen", &["bob", "portugal"], 0.7);
    kb.add_fact_named("OfficialLanguage", &["france", "french"], 1.0);
    kb.add_fact_named("OfficialLanguage", &["portugal", "portuguese"], 1.0);
    kb.add_fact_named("Advises", &["carol", "alice"], 0.95);

    // Soft rules with confidences (mined associations, Section 2.3).
    let rules = vec![
        Rule::parse("Lives(x, y) :- Citizen(x, y)", 0.8).unwrap(),
        Rule::parse("Speaks(x, l) :- Lives(x, y), OfficialLanguage(y, l)", 0.7).unwrap(),
        Rule::parse("CoAuthored(x, y, p) :- Advises(x, y)", 0.6).unwrap(),
    ];
    for rule in &rules {
        println!("rule: {rule}");
    }

    let chase = ProbabilisticChase::new(rules);
    let result = chase.run(&kb).expect("chase within budget");
    println!(
        "\nchase: {} base facts, {} derived facts, {} rule applications\n",
        result.base_fact_count,
        result.derived_fact_count(),
        result.applications
    );

    // Probabilities of some derived facts and queries.
    for (id, _) in result.instance.facts().skip(result.base_fact_count) {
        let p = result.fact_probability(id).expect("tractable lineage");
        println!("P[{}] = {:.4}", result.instance.render_fact(id), p);
    }

    let query = ConjunctiveQuery::parse("Speaks(x, \"french\")").unwrap();
    let p = result.query_probability(&query).expect("tractable lineage");
    println!("\nP[someone speaks French] = {p:.4}");
    let query = ConjunctiveQuery::parse("CoAuthored(\"carol\", \"alice\", p)").unwrap();
    let p = result.query_probability(&query).expect("tractable lineage");
    println!("P[Carol and Alice co-authored some paper] = {p:.4}");
}
