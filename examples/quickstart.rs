//! Quickstart: exact query probability through the unified engine.
//!
//! Builds a path-shaped TID instance, asks for the probability that a
//! length-2 `R`-path exists, and shows what the engine reports about *how*
//! it answered: which back-end ran, the decomposition width, the lineage
//! size and the wall time. Then runs the same query pinned to each counting
//! back-end to show they agree.
//!
//! Run with: `cargo run --example quickstart`

use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;
use stuc::{BackendKind, Engine};

fn main() {
    // A chain of uncertain facts: R(c0, c1), R(c1, c2), ..., each present
    // with probability 0.5 — e.g. links extracted by a noisy extractor.
    let mut tid = TidInstance::new();
    for i in 0..12 {
        tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
    }

    // "Is there a path of length two?" — a self-join query, so the
    // extensional safe plan is off the table and the engine picks the
    // structural (treewidth) pipeline.
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").expect("valid query");

    let engine = Engine::new();
    let report = engine
        .evaluate(&tid, &query)
        .expect("bounded-treewidth instance");

    println!("P[ ∃xyz R(x,y) ∧ R(y,z) ] = {:.6}", report.probability);
    println!(
        "backend: {}, width: {:?}, lineage gates: {}, wall time: {:?}",
        report.backend_name(),
        report.decomposition_width,
        report.circuit_gates,
        report.wall_time,
    );
    for note in &report.notes {
        println!("  note: {note}");
    }
    println!(
        "possible: {}, certain: {}",
        report.is_possible(),
        report.is_certain()
    );

    // A hierarchical query on the same instance takes the extensional fast
    // path instead — no decomposition, no circuit.
    let hierarchical = ConjunctiveQuery::parse("R(x, y)").expect("valid query");
    let fast = engine.evaluate(&tid, &hierarchical).expect("safe query");
    println!(
        "\nP[ ∃xy R(x,y) ] = {:.6} via {} (gates: {})",
        fast.probability,
        fast.backend_name(),
        fast.circuit_gates,
    );

    // Cross-check the self-join query on every counting back-end.
    println!("\nback-end agreement:");
    for kind in [
        BackendKind::TreewidthWmc,
        BackendKind::Dpll,
        BackendKind::Enumeration,
    ] {
        let pinned = Engine::builder().backend(kind).build();
        let p = pinned
            .evaluate(&tid, &query)
            .expect("small instance")
            .probability;
        println!("  {kind:<14} {p:.9}");
        assert!((report.probability - p).abs() < 1e-9);
    }

    // Many queries on one instance? Hand the whole batch to the engine: it
    // spreads the queries over a worker pool and shares the decomposition
    // and compiled-lineage caches across all of them.
    let batch_queries: Vec<ConjunctiveQuery> =
        ["R(x, y)", "R(x, y), R(y, z)", "R(x, y), R(y, z), R(z, w)"]
            .iter()
            .map(|q| ConjunctiveQuery::parse(q).expect("valid query"))
            .collect();
    let batch = engine.evaluate_batch(&tid, &batch_queries);
    println!(
        "\nbatch of {} on {} thread(s) in {:?}:",
        batch.len(),
        batch.threads,
        batch.wall_time
    );
    for (q, result) in batch_queries.iter().zip(&batch.reports) {
        let r = result.as_ref().expect("batch query evaluates");
        println!("  P[{q}] = {:.6} via {}", r.probability, r.backend_name());
    }

    // What-if analysis: the lineage circuit does not depend on the
    // probabilities, so re-evaluating under new weights reuses the compiled
    // circuit and pays only the counting sweep.
    let mut what_if = tid.clone();
    for i in 0..what_if.fact_count() {
        what_if.set_probability(stuc::data::instance::FactId(i), 0.9);
    }
    let reweighted = engine
        .reevaluate_with_weights(&tid, &query, &what_if.fact_weights())
        .expect("weights cover the lineage");
    println!(
        "\nwhat-if (all facts at 0.9): P = {:.6} (lineage cached: {})",
        reweighted.probability, reweighted.lineage_cached
    );
}
