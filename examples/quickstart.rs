//! Quickstart: exact query probability on a tuple-independent instance.
//!
//! Builds a path-shaped TID instance, asks for the probability that a length-2
//! `R`-path exists, and cross-checks the structurally tractable pipeline
//! (Theorem 1) against the naive baselines.
//!
//! Run with: `cargo run --example quickstart`

use stuc::core::pipeline::TractablePipeline;
use stuc::data::tid::TidInstance;
use stuc::query::cq::ConjunctiveQuery;

fn main() {
    // A chain of uncertain facts: R(c0, c1), R(c1, c2), ..., each present
    // with probability 0.5 — e.g. links extracted by a noisy extractor.
    let mut tid = TidInstance::new();
    for i in 0..12 {
        tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
    }

    // "Is there a path of length two?" — a self-join query.
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").expect("valid query");

    let pipeline = TractablePipeline::default();
    let report = pipeline
        .evaluate_cq_on_tid(&tid, &query)
        .expect("bounded-treewidth instance");

    println!("instance: {} facts, decomposition width {}", report.fact_count, report.decomposition_width);
    println!("P[ ∃xyz R(x,y) ∧ R(y,z) ] = {:.6}", report.probability);
    println!("possible: {}, certain: {}", report.is_possible(), report.is_certain());

    // Cross-check with the DPLL baseline (no treewidth assumption).
    let dpll = pipeline.baseline_dpll(&tid, &query).expect("small instance");
    println!("DPLL baseline agrees: {:.6}", dpll);
    assert!((report.probability - dpll).abs() < 1e-9);
}
