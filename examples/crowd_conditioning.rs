//! Experiment E11 flavour — conditioning uncertain data with crowd answers
//! (Section 4 of the paper).
//!
//! A pc-instance models claims attributed to contributors of unknown
//! trustworthiness. We want to know whether a target query holds; each round
//! we pick the event whose answer is expected to reduce the query's entropy
//! the most, ask a (simulated, imperfect) crowd, and condition the instance
//! on the answer.
//!
//! Run with: `cargo run --example crowd_conditioning`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use stuc::circuit::circuit::VarId;
use stuc::circuit::wmc::TreewidthWmc;
use stuc::cond::crowd::{entropy, interactive_conditioning, CrowdOracle, QuestionSelector};
use stuc::core::workloads::contributor_pcc;
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::lineage::pcc_lineage;

fn main() {
    // Claims attributed to 3 contributors; a claim is present when its
    // contributor is trustworthy and its extraction succeeded.
    let pcc = contributor_pcc(8, 3, 0.7, 0.6, 2024);
    let query = ConjunctiveQuery::parse("Claim(\"entity0\", x), Claim(\"entity1\", y)").unwrap();
    let lineage = pcc_lineage(&pcc, &query);

    let prior = TreewidthWmc::default()
        .probability(&lineage, pcc.probabilities())
        .expect("tractable lineage");
    println!(
        "prior P[query] = {prior:.4}, entropy = {:.4} bits",
        entropy(prior)
    );

    // Candidate questions: the contributor trust events.
    let candidates: Vec<VarId> = (0..3).map(VarId).collect();
    let ranked = QuestionSelector
        .rank_questions(&lineage, pcc.probabilities(), &candidates)
        .expect("tractable lineage");
    println!("\nquestion ranking (lower expected posterior entropy is better):");
    for q in &ranked {
        println!(
            "  ask about contributor event {:?}: expected entropy {:.4}",
            q.event, q.expected_entropy
        );
    }

    // Ground truth (unknown to the system): contributors 0 and 1 are
    // trustworthy, contributor 2 is a vandal. The crowd answers correctly
    // 85% of the time.
    let oracle = CrowdOracle {
        ground_truth: BTreeMap::from([(VarId(0), true), (VarId(1), true), (VarId(2), false)]),
        reliability: 0.85,
    };
    let mut rng = StdRng::seed_from_u64(7);
    let (asked, posterior) = interactive_conditioning(
        &lineage,
        pcc.probabilities(),
        &candidates,
        &oracle,
        0.2,
        5,
        &mut rng,
    )
    .expect("tractable lineage");
    println!(
        "\nafter asking {} question(s) ({:?}): P[query] = {posterior:.4}, entropy = {:.4} bits",
        asked.len(),
        asked,
        entropy(posterior)
    );
}
