//! Experiment E2 — the paper's Table 1, reproduced end to end.
//!
//! The c-instance lists which trips to book depending on which conferences
//! the researcher attends (PODS in Melbourne, STOC in Portland). We list the
//! possible worlds, then compute possibility / certainty / probability for
//! natural booking queries, attaching probabilities to the events.
//!
//! Run with: `cargo run --example table1_cinstance`

use stuc::circuit::weights::Weights;
use stuc::circuit::wmc::TreewidthWmc;
use stuc::data::cinstance::CInstance;
use stuc::data::worlds;
use stuc::query::cq::ConjunctiveQuery;
use stuc::query::lineage::cinstance_lineage;

fn main() {
    let ci = CInstance::table1_example();
    println!(
        "Table 1 c-instance: {} facts over events pods, stoc\n",
        ci.instance().fact_count()
    );
    for (id, _) in ci.instance().facts() {
        println!(
            "  {:<45} [{}]",
            ci.instance().render_fact(id),
            ci.annotation(id)
        );
    }

    println!("\nPossible worlds (by event valuation):");
    for world in worlds::enumerate_worlds(&ci).expect("two events only") {
        let trips: Vec<String> = world
            .facts
            .iter()
            .map(|&f| ci.instance().render_fact(f))
            .collect();
        println!(
            "  {:?} -> {} trips: {}",
            world.valuation,
            trips.len(),
            trips.join("; ")
        );
    }

    // Attach probabilities: the researcher attends PODS with 0.8, STOC with 0.3.
    let pods = ci.events().find("pods").unwrap();
    let stoc = ci.events().find("stoc").unwrap();
    let mut weights = Weights::new();
    weights.set(pods, 0.8);
    weights.set(stoc, 0.3);

    let queries = [
        ("some trip leaves Paris CDG", "Trip(\"Paris_CDG\", x)"),
        (
            "a round trip CDG ⇄ Melbourne exists",
            "Trip(\"Paris_CDG\", \"Melbourne_MEL\"), Trip(\"Melbourne_MEL\", \"Paris_CDG\")",
        ),
        ("some trip reaches Portland", "Trip(x, \"Portland_PDX\")"),
        ("some trip exists at all", "Trip(x, y)"),
    ];
    println!("\nQuery probabilities with P(pods)=0.8, P(stoc)=0.3:");
    for (description, text) in queries {
        let query = ConjunctiveQuery::parse(text).unwrap();
        let lineage = cinstance_lineage(&ci, &query);
        let probability = TreewidthWmc::default()
            .probability(&lineage, &weights)
            .unwrap();
        // With event probabilities strictly inside (0, 1), the query is
        // possible iff its probability is non-zero and certain iff it is one.
        println!(
            "  P[{description}] = {probability:.4}   (possible: {}, certain: {})",
            probability > 1e-12,
            (probability - 1.0).abs() < 1e-9
        );
    }
}
