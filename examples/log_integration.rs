//! Experiment E9 flavour — order-uncertain data (Section 3 of the paper).
//!
//! Two machine logs are each internally ordered but carry no global
//! timestamps. Integrating them yields a po-relation whose possible worlds
//! are the interleavings; the positive relational algebra then manipulates
//! the result while tracking the order uncertainty.
//!
//! Run with: `cargo run --example log_integration`

use stuc::order::porelation::PoRelation;
use stuc::order::posra::{product_parallel, select, union_concat, union_parallel};

fn list(items: &[&str]) -> PoRelation {
    PoRelation::totally_ordered(items.iter().map(|s| vec![s.to_string()]).collect())
}

fn main() {
    // Two logs without synchronised clocks (fetchmail / dmesg style).
    let server_log = list(&["server: boot", "server: error disk", "server: shutdown"]);
    let worker_log = list(&["worker: start", "worker: error oom", "worker: done"]);

    let merged = union_parallel(&server_log, &worker_log);
    println!(
        "merged log: {} entries, {} possible interleavings",
        merged.len(),
        merged.count_linear_extensions().unwrap()
    );

    // Select only the error lines: the order between them stays uncertain.
    let errors = select(&merged, |t| t[0].contains("error"));
    println!(
        "error lines: {} entries, {} possible orders",
        errors.len(),
        errors.count_linear_extensions().unwrap()
    );
    let world_a = vec![
        vec!["server: error disk".to_string()],
        vec!["worker: error oom".to_string()],
    ];
    let world_b = vec![
        vec!["worker: error oom".to_string()],
        vec!["server: error disk".to_string()],
    ];
    println!(
        "  'disk before oom' possible: {} / 'oom before disk' possible: {}",
        errors.is_possible_world(&world_a),
        errors.is_possible_world(&world_b)
    );

    // Appending a third, later log fixes its relative position.
    let late_log = list(&["archiver: flush"]);
    let full = union_concat(&merged, &late_log);
    println!(
        "after appending the archiver log: {} possible orders (archiver is always last)",
        full.count_linear_extensions().unwrap()
    );

    // Preference-style product: ranked hotels × ranked restaurants.
    let hotels = list(&["hotel Ritz", "hotel Budget"]);
    let restaurants = list(&["restaurant Fancy", "restaurant Diner"]);
    let pairs = product_parallel(&hotels, &restaurants);
    println!(
        "\nhotel × restaurant pairs: {} tuples, {} possible rankings under dominance",
        pairs.len(),
        pairs.count_linear_extensions().unwrap()
    );
}
