//! Posterior inference on a probabilistic knowledge base: marginals,
//! sampling, most-probable-world.
//!
//! One compiled lineage answers four different questions about the same
//! query — "is there a 2-hop path?" — on a noisy link graph:
//!
//! 1. `P(query)` (plain WMC),
//! 2. `P(link | query)` for **every** link in one backward sweep,
//! 3. a thousand exactly sampled worlds conditioned on the query,
//! 4. the single most probable world in which the query holds.
//!
//! Run with: `cargo run --example inference`

use stuc::core::workloads;
use stuc::query::cq::ConjunctiveQuery;
use stuc::Engine;

fn main() {
    // A 12-edge path-shaped TID instance: R(c0,c1), R(c1,c2), ... each
    // present with probability ~0.5.
    let tid = workloads::path_tid(12, 0.5, 42);
    let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    let engine = Engine::new();

    // 1. Plain probability: compiles + caches the lineage.
    let evaluation = engine.evaluate(&tid, &query).unwrap();
    println!(
        "P(some 2-hop path) = {:.6}  (backend: {})",
        evaluation.probability,
        evaluation.backend_name()
    );

    // 2. All-fact marginals in one backward sweep over the cached lineage.
    let marginals = engine.marginals(&tid, &query).unwrap();
    println!(
        "\nposterior P(link | query) for all {} links in {} sweeps ({} tables retained, {:?}):",
        marginals.len(),
        marginals.report.sweeps_run,
        marginals.report.tables_retained,
        marginals.report.wall_time,
    );
    let priors = tid.fact_weights();
    for (v, posterior) in marginals.iter() {
        let prior = priors.get(v).unwrap();
        println!(
            "  link {:>2}: prior {prior:.3} -> posterior {posterior:.3}",
            v.0
        );
    }

    // 3. Sample 1000 possible worlds, exactly proportional to their
    //    probability among the worlds where the query holds.
    let sampled = engine.sample_worlds(&tid, &query, 1000, 7).unwrap();
    let average_links: f64 = sampled
        .worlds
        .iter()
        .map(|w| w.present().count() as f64)
        .sum::<f64>()
        / sampled.worlds.len() as f64;
    println!(
        "\nsampled {} worlds (seed 7, evidence mass {:.6}): {:.2} links present on average",
        sampled.worlds.len(),
        sampled.evidence_probability,
        average_links,
    );

    // 4. The most probable world satisfying the query (max-product sweep).
    let mpe = engine.most_probable_world(&tid, &query).unwrap();
    let present: Vec<usize> = mpe.world.present().map(|v| v.0).collect();
    println!(
        "\nmost probable query-world has probability {:.6} with links {present:?}",
        mpe.probability,
    );
    println!(
        "(all three inference modes reused the cached lineage: {})",
        mpe.report.lineage_cached,
    );
}
