//! `stuc-serve` — a long-running HTTP query service over one `.stuc`
//! program.
//!
//! Loads the program's facts into a tuple-independent instance, keeps its
//! rules in scope, and serves `POST /query` goals from a thread-per-core
//! worker pool over one shared engine (sharded caches, no lock held across
//! compilation). A bounded accept queue applies admission control: when it
//! is full, clients get a typed `503 overload` JSON response immediately
//! instead of queueing without bound.
//!
//! ```text
//! stuc-serve examples/trips.stuc --addr 127.0.0.1:7878
//! curl -s -d '?- Reach2(x, y).' http://127.0.0.1:7878/query
//! ```
//!
//! Endpoints: `POST /query` (stuc-lang rules + goals; inline facts are
//! rejected), `GET /health`, `GET /stats`.

use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::Engine;

const USAGE: &str = "usage: stuc-serve [options] program.stuc
options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = any free port)
  --workers N        worker threads (default: one per core)
  --queue N          accept-queue capacity before overload rejection (default 1024)";

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServeConfig::default()
    };
    let mut program_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => die("--addr needs HOST:PORT"),
            },
            "--workers" => config.workers = numeric_flag(args.next(), "--workers"),
            "--queue" => config.queue_capacity = numeric_flag(args.next(), "--queue"),
            path if !path.starts_with('-') => program_path = Some(path.to_string()),
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    let Some(path) = program_path else {
        die("a program file is required (try --help)")
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(error) => die(&format!("cannot read {path}: {error}")),
    };
    let state = match ServiceState::from_program(Engine::new(), &src) {
        Ok(state) => state,
        Err(error) => die(&format!("{path}: {error}")),
    };
    let facts = state.fact_count();
    let rules = state.rule_count();
    let queue = config.queue_capacity;
    let server = match Server::spawn(config, state) {
        Ok(server) => server,
        Err(error) => die(&format!("cannot bind: {error}")),
    };
    println!(
        "stuc-serve listening on http://{} ({facts} facts, {rules} rules, queue {queue})",
        server.addr()
    );
    server.wait();
}

fn numeric_flag(value: Option<String>, flag: &str) -> usize {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => die(&format!("{flag} needs a number")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
