//! `stuc-serve` — a long-running HTTP query service over one `.stuc`
//! program.
//!
//! Loads the program's facts into a tuple-independent instance, keeps its
//! rules in scope, and serves `POST /query` goals from a thread-per-core
//! worker pool over one shared engine (sharded caches, no lock held across
//! compilation). A bounded accept queue applies admission control: when it
//! is full, clients get a typed `503 overload` JSON response immediately
//! instead of queueing without bound.
//!
//! ```text
//! stuc-serve examples/trips.stuc --addr 127.0.0.1:7878
//! curl -s -d '?- Reach2(x, y).' http://127.0.0.1:7878/query
//! ```
//!
//! Endpoints: `POST /query` (stuc-lang rules + goals; inline facts are
//! rejected; `?timings=1` adds a per-stage breakdown, `?explain=1` embeds
//! the engine's query-plan explanation per goal), `GET /health`,
//! `GET /stats`, `GET /metrics` (Prometheus text), `GET /debug/slow`, and
//! — when `--profile-hz` armed the sampling profiler —
//! `GET /debug/profile?seconds=N` (collapsed flamegraph stacks).

use std::time::Duration;
use stuc::obs::{slowlog, trace};
use stuc::serve::{ServeConfig, Server, ServiceState};
use stuc::Engine;

const USAGE: &str = "usage: stuc-serve [options] program.stuc
options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = any free port)
  --workers N        worker threads (default: one per core)
  --queue N          accept-queue capacity before overload rejection (default 1024)
  --deadline-ms N    per-request deadline in milliseconds, anchored at accept
                     time; clients may tighten it with ?deadline_ms= but never
                     exceed it (default: unlimited)
  --shed-cost N      cost-model ceiling for load shedding: under queue pressure,
                     queries estimated above N are answered 503 + Retry-After
                     instead of evaluated (default: off)
  --slow-ms N        slow-query log threshold in milliseconds (default 100)
  --profile-hz N     arm the sampling wall-clock profiler at N Hz and enable
                     GET /debug/profile?seconds=S (collapsed flamegraph stacks)
  --trace-out FILE   enable the span tracer and periodically flush a
                     Chrome trace-event JSON file (open in chrome://tracing)";

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServeConfig::default()
    };
    let mut program_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => die("--addr needs HOST:PORT"),
            },
            "--workers" => config.workers = numeric_flag(args.next(), "--workers"),
            "--queue" => config.queue_capacity = numeric_flag(args.next(), "--queue"),
            "--deadline-ms" => {
                let ms = numeric_flag(args.next(), "--deadline-ms");
                config.deadline = Some(Duration::from_millis(ms as u64));
            }
            "--shed-cost" => match args.next().as_deref().map(str::parse::<f64>) {
                Some(Ok(ceiling)) if ceiling.is_finite() && ceiling >= 0.0 => {
                    config.shed_cost_ceiling = Some(ceiling);
                }
                _ => die("--shed-cost needs a non-negative number"),
            },
            "--profile-hz" => {
                let hz = numeric_flag(args.next(), "--profile-hz");
                stuc::obs::profile::set_default_hz(hz as u32);
                stuc::obs::profile::set_enabled(true);
            }
            "--slow-ms" => {
                let ms = numeric_flag(args.next(), "--slow-ms");
                slowlog::global().set_threshold(Duration::from_millis(ms as u64));
            }
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => die("--trace-out needs a file path"),
            },
            arg if arg.starts_with("--trace-out=") => {
                trace_out = Some(arg["--trace-out=".len()..].to_string());
            }
            path if !path.starts_with('-') => program_path = Some(path.to_string()),
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if let Some(path) = trace_out.clone() {
        trace::set_enabled(true);
        // Background flusher: rewrite the trace file from the event ring
        // every few seconds (the ring keeps the most recent spans, so the
        // file always holds a fresh window, even if the process is killed).
        std::thread::Builder::new()
            .name("stuc-serve-trace-flush".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(5));
                let events = trace::snapshot_events();
                if let Err(error) = std::fs::write(&path, trace::chrome_trace_json(&events)) {
                    eprintln!("warning: cannot write trace file {path}: {error}");
                    return;
                }
            })
            .expect("spawn trace flusher");
    }
    let Some(path) = program_path else {
        die("a program file is required (try --help)")
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(error) => die(&format!("cannot read {path}: {error}")),
    };
    let state = match ServiceState::from_program(Engine::new(), &src) {
        Ok(state) => state,
        Err(error) => die(&format!("{path}: {error}")),
    };
    let facts = state.fact_count();
    let rules = state.rule_count();
    let queue = config.queue_capacity;
    let server = match Server::spawn(config, state) {
        Ok(server) => server,
        Err(error) => die(&format!("cannot bind: {error}")),
    };
    println!(
        "stuc-serve listening on http://{} ({facts} facts, {rules} rules, queue {queue})",
        server.addr()
    );
    server.wait();
}

fn numeric_flag(value: Option<String>, flag: &str) -> usize {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => die(&format!("{flag} needs a number")),
    }
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}
