//! `stuc-repl` — an interactive loop over the textual front-end.
//!
//! Reads `stuc-lang` statements from stdin, one batch per line: facts
//! (`0.5 :: R("a").`) grow the session's tuple-independent instance, rules
//! (`H(x) :- B(x).`) accumulate for goal unfolding, and goals (`?- R(x).`)
//! evaluate immediately, printing the probability, the cost-model route and
//! the engine's strategy notes. Colon commands (`:help`, `:load`, `:facts`,
//! `:rules`, `:explain`, `:clear`, `:quit`) manage the session.
//!
//! The loop is plain `BufRead` over stdin — no readline, no external
//! dependencies — and its output is deterministic unless `--timing` is
//! given, so a scripted session can be checked against a golden transcript
//! (see `ci/repl_session.in`).

use std::collections::BTreeMap;
use std::io::{BufRead, IsTerminal, Write};

use stuc::data::tid::TidInstance;
use stuc::lang::analysis::{check_goal_with, check_rule, ArityTable, SafetyError};
use stuc::lang::ast::{FactAst, ProgramAst, RuleAst, StatementAst};
use stuc::lang::parse_program;
use stuc::Engine;

const BANNER: &str = "stuc-repl — textual queries over uncertain data (:help for commands)";

const HELP: &str = "\
commands:
  :help          show this help
  :load <path>   run a program file (facts, rules, goals) in this session
  :facts         list the session's facts
  :rules         list the session's rules
  :stats         engine cache counters and process metrics
  :explain ?- G. explain a goal's plan (route, backend, width) without running it
  :trace on|off  toggle the span tracer (spans buffer process-wide)
  :clear         drop all facts and rules
  :quit          exit (also :exit, or end-of-input)
statements (end each with '.'):
  0.5 :: R(\"a\").            a probabilistic fact
  Head(x) :- R(x), S(x, y).  a non-recursive positive rule
  ?- R(x); S(x, y).          a goal: union of conjunctions, '!' negates";

/// One REPL session: the instance under construction, the accumulated
/// rules, the cross-line arity table, and the engine that evaluates goals.
struct Session {
    engine: Engine,
    tid: TidInstance,
    /// Insert-ordered facts: canonical `(relation, args)` → display text,
    /// so re-asserting a fact overrides its probability instead of piling
    /// up duplicate rows.
    facts: BTreeMap<(String, Vec<String>), stuc::data::instance::FactId>,
    rules: Vec<RuleAst>,
    arities: ArityTable,
    timing: bool,
}

impl Session {
    fn new(timing: bool) -> Session {
        Session {
            engine: Engine::new(),
            tid: TidInstance::new(),
            facts: BTreeMap::new(),
            rules: Vec::new(),
            arities: ArityTable::new(),
            timing,
        }
    }

    /// Runs one input line (or one loaded file) through parse → dispatch.
    fn run_source(&mut self, src: &str, out: &mut impl Write) -> std::io::Result<()> {
        let program = match parse_program(src) {
            Ok(program) => program,
            Err(error) => return writeln!(out, "error: {error}"),
        };
        self.run_program(&program, out)
    }

    fn run_program(&mut self, program: &ProgramAst, out: &mut impl Write) -> std::io::Result<()> {
        for statement in &program.statements {
            match statement {
                StatementAst::Fact(fact) => self.add_fact(fact, out)?,
                StatementAst::Rule(rule) => self.add_rule(rule, out)?,
                StatementAst::Query(query) => self.run_goal(query, out)?,
            }
        }
        Ok(())
    }

    fn add_fact(&mut self, fact: &FactAst, out: &mut impl Write) -> std::io::Result<()> {
        if let Err(error) = self.check_fact(fact) {
            return writeln!(out, "error: {error}");
        }
        let args: Vec<String> = fact
            .atom
            .args
            .iter()
            .map(|t| match &t.term {
                stuc::lang::ast::TermAst::Const(c) => c.clone(),
                // Unreachable after `check_fact`, which rejects variables.
                stuc::lang::ast::TermAst::Var(v) => v.clone(),
            })
            .collect();
        let key = (fact.atom.relation.clone(), args.clone());
        match self.facts.get(&key) {
            Some(&id) => self.tid.set_probability(id, fact.probability),
            None => {
                let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
                let id = self
                    .tid
                    .add_fact_named(&fact.atom.relation, &arg_refs, fact.probability);
                self.facts.insert(key, id);
            }
        }
        writeln!(out, "ok: {}", fact)
    }

    fn check_fact(&mut self, fact: &FactAst) -> Result<(), SafetyError> {
        self.arities.check(&fact.atom)?;
        if let Some(variable) = fact.atom.variables().into_iter().next() {
            return Err(SafetyError::NonGroundFact {
                relation: fact.atom.relation.clone(),
                variable: variable.to_string(),
                span: fact.atom.span,
            });
        }
        if !(0.0..=1.0).contains(&fact.probability) || fact.probability.is_nan() {
            return Err(SafetyError::InvalidProbability {
                value: fact.probability,
                span: fact.probability_span,
            });
        }
        Ok(())
    }

    fn add_rule(&mut self, rule: &RuleAst, out: &mut impl Write) -> std::io::Result<()> {
        if let Err(error) = check_rule(rule, &mut self.arities) {
            return writeln!(out, "error: {error}");
        }
        writeln!(out, "ok: {}", rule)?;
        self.rules.push(rule.clone());
        Ok(())
    }

    fn run_goal(
        &mut self,
        query: &stuc::lang::ast::QueryAst,
        out: &mut impl Write,
    ) -> std::io::Result<()> {
        if let Err(error) = check_goal_with(&query.goal, &mut self.arities) {
            return writeln!(out, "error: {error}");
        }
        let rules: Vec<&RuleAst> = self.rules.iter().collect();
        writeln!(out, "?- {}.", query.goal)?;
        match self.engine.evaluate_goal(&self.tid, &query.goal, &rules) {
            Ok(goal) => {
                writeln!(
                    out,
                    "= {:.9}  [backend: {}, gates: {}]",
                    goal.probability,
                    goal.report.backend_name(),
                    goal.report.circuit_gates
                )?;
                for note in &goal.report.notes {
                    writeln!(out, "  note: {note}")?;
                }
                if self.timing {
                    writeln!(out, "  time: {:?}", goal.report.wall_time)?;
                }
                Ok(())
            }
            Err(error) => writeln!(out, "error: {error}"),
        }
    }

    /// `:explain` — parse goals and print the engine's plan explanation
    /// for each, without evaluating. Deterministic output (no floats, no
    /// timings), so the scripted golden session covers it.
    fn explain_source(&mut self, src: &str, out: &mut impl Write) -> std::io::Result<()> {
        let program = match parse_program(src) {
            Ok(program) => program,
            Err(error) => return writeln!(out, "error: {error}"),
        };
        for statement in &program.statements {
            let StatementAst::Query(query) = statement else {
                writeln!(out, "error: :explain takes goals only (?- ...)")?;
                continue;
            };
            if let Err(error) = check_goal_with(&query.goal, &mut self.arities) {
                writeln!(out, "error: {error}")?;
                continue;
            }
            let rules: Vec<&RuleAst> = self.rules.iter().collect();
            match self.engine.explain_goal(&self.tid, &query.goal, &rules) {
                Ok(explanation) => write!(out, "{}", explanation.render_text())?,
                Err(error) => writeln!(out, "error: {error}")?,
            }
        }
        Ok(())
    }

    fn list_facts(&self, out: &mut impl Write) -> std::io::Result<()> {
        if self.facts.is_empty() {
            return writeln!(out, "(no facts)");
        }
        for ((relation, args), &id) in &self.facts {
            let rendered: Vec<String> = args.iter().map(|a| format!("{a:?}")).collect();
            writeln!(
                out,
                "{} :: {}({}).",
                self.tid.probability(id),
                relation,
                rendered.join(", ")
            )?;
        }
        Ok(())
    }

    fn list_rules(&self, out: &mut impl Write) -> std::io::Result<()> {
        if self.rules.is_empty() {
            return writeln!(out, "(no rules)");
        }
        for rule in &self.rules {
            writeln!(out, "{rule}")?;
        }
        Ok(())
    }

    fn load(&mut self, path: &str, out: &mut impl Write) -> std::io::Result<()> {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(error) => return writeln!(out, "error: cannot read {path}: {error}"),
        };
        let program = match parse_program(&src) {
            Ok(program) => program,
            Err(error) => return writeln!(out, "error: {path}: {error}"),
        };
        writeln!(
            out,
            "loading {path}: {} fact(s), {} rule(s), {} goal(s)",
            program.facts().count(),
            program.rules().len(),
            program.queries().len()
        )?;
        self.run_program(&program, out)
    }

    /// `:stats` — the engine's cache counters plus every registered process
    /// metric. Live values, so the scripted golden session never calls it.
    fn show_stats(&self, out: &mut impl Write) -> std::io::Result<()> {
        let caches = self.engine.cache_stats();
        writeln!(
            out,
            "decomposition cache: {} hit(s), {} miss(es), {} eviction(s)",
            caches.decompositions.hits,
            caches.decompositions.misses,
            caches.decompositions.evictions
        )?;
        writeln!(
            out,
            "lineage cache:       {} hit(s), {} miss(es), {} eviction(s)",
            caches.lineages.hits, caches.lineages.misses, caches.lineages.evictions
        )?;
        for metric in stuc::obs::registry().snapshot() {
            match metric.reading {
                stuc::obs::MetricReading::Counter(v) => writeln!(out, "{} {}", metric.name, v)?,
                stuc::obs::MetricReading::Gauge(v) => writeln!(out, "{} {}", metric.name, v)?,
                stuc::obs::MetricReading::Histogram {
                    count,
                    sum_seconds,
                    p50,
                    p90,
                    p99,
                } => writeln!(
                    out,
                    "{} count={} sum={:.6}s p50={:.6}s p90={:.6}s p99={:.6}s",
                    metric.name, count, sum_seconds, p50, p90, p99
                )?,
            }
        }
        Ok(())
    }

    fn clear(&mut self, out: &mut impl Write) -> std::io::Result<()> {
        self.tid = TidInstance::new();
        self.facts.clear();
        self.rules.clear();
        self.arities = ArityTable::new();
        writeln!(out, "cleared")
    }

    /// Dispatches one line. Returns `false` when the session should end.
    fn handle_line(&mut self, line: &str, out: &mut impl Write) -> std::io::Result<bool> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(true);
        }
        if let Some(command) = trimmed.strip_prefix(':') {
            let mut words = command.split_whitespace();
            match words.next() {
                Some("help") => writeln!(out, "{HELP}")?,
                Some("quit") | Some("exit") => return Ok(false),
                Some("facts") => self.list_facts(out)?,
                Some("rules") => self.list_rules(out)?,
                Some("stats") => self.show_stats(out)?,
                Some("trace") => match words.next() {
                    Some("on") => {
                        stuc::obs::trace::set_enabled(true);
                        writeln!(out, "tracing on")?;
                    }
                    Some("off") => {
                        stuc::obs::trace::set_enabled(false);
                        writeln!(
                            out,
                            "tracing off ({} span(s) buffered)",
                            stuc::obs::trace::snapshot_events().len()
                        )?;
                    }
                    _ => writeln!(out, "error: :trace needs on or off")?,
                },
                Some("explain") => {
                    let rest = command["explain".len()..].trim();
                    if rest.is_empty() {
                        writeln!(out, "error: :explain needs a goal (e.g. :explain ?- R(x).)")?;
                    } else {
                        self.explain_source(rest, out)?;
                    }
                }
                Some("clear") => self.clear(out)?,
                Some("load") => match words.next() {
                    Some(path) => self.load(path, out)?,
                    None => writeln!(out, "error: :load needs a file path")?,
                },
                other => writeln!(
                    out,
                    "error: unknown command :{} (:help lists commands)",
                    other.unwrap_or("")
                )?,
            }
            return Ok(true);
        }
        self.run_source(trimmed, out)?;
        Ok(true)
    }
}

fn main() -> std::io::Result<()> {
    let mut timing = false;
    let mut program_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--timing" => timing = true,
            "--help" | "-h" => {
                println!("usage: stuc-repl [--timing] [program.stuc]");
                println!("{HELP}");
                return Ok(());
            }
            path if !path.starts_with('-') => program_path = Some(path.to_string()),
            other => {
                eprintln!("error: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let interactive = stdin.is_terminal();
    let mut out = stdout.lock();
    let mut session = Session::new(timing);

    writeln!(out, "{BANNER}")?;
    if let Some(path) = program_path {
        session.load(&path, &mut out)?;
    }

    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            write!(out, "stuc> ")?;
            out.flush()?;
        }
        let Some(line) = lines.next() else {
            break;
        };
        if !session.handle_line(&line?, &mut out)? {
            break;
        }
    }
    writeln!(out, "bye")?;
    Ok(())
}
