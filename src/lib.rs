//! # STUC — Structurally Tractable Uncertain Data
//!
//! Umbrella crate re-exporting the whole STUC workspace behind one façade.
//!
//! STUC is a reproduction of the system described in *"Structurally Tractable
//! Uncertain Data"* (Amarilli, SIGMOD 2015 PhD symposium): exact query
//! evaluation (possibility, certainty, probability) on uncertain data whose
//! *structure* — bounded treewidth of the instance together with its
//! uncertainty annotations — makes the problem tractable, even though it is
//! `#P`-hard on arbitrary inputs.
//!
//! The one public entry point is [`Engine`]: it evaluates Boolean queries on
//! **every** uncertain representation in the workspace (tuple-independent
//! instances, c-/pc-/pcc-instances, probabilistic XML) through the
//! [`core::engine::Representation`] trait, automatically selecting among
//! four pluggable back-ends (extensional safe plan, treewidth weighted model
//! counting, DPLL, enumeration) and reporting which one actually ran.
//!
//! The workspace is organised as one crate per subsystem:
//!
//! * [`graph`] — graphs, tree decompositions, treewidth heuristics.
//! * [`circuit`] — Boolean/provenance circuits, semirings, exact probability
//!   computation (weighted model counting by message passing).
//! * [`data`] — relational instances and their uncertain variants
//!   (TID, c-instances, pc-instances, pcc-instances).
//! * [`query`] — conjunctive queries, relational algebra, lineage, the safe
//!   extensional baseline.
//! * [`lang`] — the textual datalog/UCQ front-end: lexer, parser, safety
//!   analysis, lowering to signed sums of conjunctive queries, and the
//!   cost model behind [`Engine::evaluate_text`]. The `stuc-repl` binary
//!   wraps it interactively.
//! * [`automata`] — bottom-up tree automata, tree encodings of
//!   bounded-treewidth instances, provenance-producing runs.
//! * [`prxml`] — probabilistic XML (`ind`/`mux`/`cie` nodes, global events,
//!   event scopes).
//! * [`order`] — order-uncertain data: labeled partial orders and the
//!   positive relational algebra with bag semantics.
//! * [`rules`] — probabilistic existential rules and the chase.
//! * [`cond`] — conditioning uncertain data and crowd question selection.
//! * [`incr`] — incremental updates: typed [`Delta`] transactions, the
//!   [`Updatable`] trait, delta-join match enumeration, replayable update
//!   logs. [`Engine::apply_update`] wires them to the engine caches.
//! * [`infer`] — posterior inference on compiled lineages: all-fact
//!   marginals in one backward sweep ([`Engine::marginals`]), exact world
//!   sampling ([`Engine::sample_worlds`]), and max-product
//!   most-probable-world ([`Engine::most_probable_world`]).
//! * [`obs`] — zero-dependency observability: the process-global metrics
//!   registry behind `GET /metrics`, the span tracer behind
//!   `--trace-out`/[`Engine::with_tracing`], staged timers, and the
//!   slow-query log.
//! * [`fault`] — fault tolerance primitives: cooperative evaluation
//!   budgets (deadlines + cancellation, [`EvalBudget`]) polled at engine
//!   checkpoints, and the compile-time-gated failpoint registry behind
//!   the chaos suite (`--features fault-injection`).
//! * [`core`] — the unified [`core::engine`] (plus the deprecated
//!   pre-engine `TractablePipeline` shims and shared workload generators).
//!
//! ## Quickstart
//!
//! ```
//! use stuc::Engine;
//! use stuc::data::tid::TidInstance;
//! use stuc::query::cq::ConjunctiveQuery;
//!
//! // A tiny path-shaped TID instance: R(a,b) with prob 0.5, R(b,c) with prob 0.5.
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a", "b"], 0.5);
//! tid.add_fact_named("R", &["b", "c"], 0.5);
//!
//! // Query: does some R-path of length 2 exist?
//! let q = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
//!
//! // One engine, every representation, back-end picked automatically.
//! let engine = Engine::new();
//! let report = engine.evaluate(&tid, &q).unwrap();
//! assert!((report.probability - 0.25).abs() < 1e-9);
//! assert_eq!(report.backend_name(), "treewidth-wmc"); // self-join ⇒ no safe plan
//! ```
//!
//! The same engine evaluates a pcc-instance (Theorem 2) or a probabilistic
//! XML document — only the representation and query types change:
//!
//! ```
//! use stuc::Engine;
//! use stuc::prxml::document::PrXmlDocument;
//! use stuc::prxml::queries::PrxmlQuery;
//!
//! let doc = PrXmlDocument::figure1_example();
//! let report = Engine::new()
//!     .evaluate(&doc, &PrxmlQuery::LabelExists("musician".into()))
//!     .unwrap();
//! assert!(report.probability > 0.0);
//! ```
//!
//! ## Textual queries
//!
//! The same evaluation is available from text through the [`lang`] front-end
//! ([`Engine::evaluate_text`]): programs may define non-recursive rules,
//! goals may use unions and ground negation, and a cost model routes each
//! goal to the safe plan or the compiled circuit:
//!
//! ```
//! use stuc::Engine;
//! use stuc::data::tid::TidInstance;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a"], 0.4);
//! tid.add_fact_named("S", &["a", "b"], 0.5);
//!
//! let outcome = Engine::new()
//!     .evaluate_text(&tid, "Both(x) :- R(x), S(x, y).  ?- Both(x).")
//!     .unwrap();
//! assert!((outcome.goals[0].probability - 0.2).abs() < 1e-9);
//! ```
//!
//! ## Migrating from `TractablePipeline`
//!
//! The pre-engine entry point `stuc::core::pipeline::TractablePipeline` is
//! deprecated; each of its methods is now a thin shim over [`Engine`]. See
//! the migration table in [`core::pipeline`].

pub use stuc_automata as automata;
pub use stuc_circuit as circuit;
pub use stuc_cond as cond;
pub use stuc_core as core;
pub use stuc_data as data;
pub use stuc_fault as fault;
pub use stuc_graph as graph;
pub use stuc_incr as incr;
pub use stuc_infer as infer;
pub use stuc_lang as lang;
pub use stuc_obs as obs;
pub use stuc_order as order;
pub use stuc_prxml as prxml;
pub use stuc_query as query;
pub use stuc_rules as rules;

pub use stuc_core::engine::{
    Backend, BackendKind, BackendPolicy, BatchReport, BudgetError, CacheCounters, CacheExplanation,
    CacheSideExplanation, CancelHandle, CircuitExplanation, Delta, DeltaOp, Engine, EngineBuilder,
    EngineCacheStats, EvalBudget, EvaluationReport, ExplainOutcome, GoalEvaluation,
    InferenceReport, Marginals, MostProbableWorld, QueryExplanation, ReprKind, Representation,
    RouteExplanation, SafePlanEligibility, SampledWorlds, StucError, SweepPlanStats,
    TextEvaluation, Updatable, UpdateLog, UpdateReport, World, WorldSampler,
};
pub use stuc_core::serve;
pub use stuc_lang::{LangError, ParseError};
