//! Delta match enumeration: the homomorphisms an insertion *adds*.
//!
//! The lineage of a Boolean CQ is the OR over all matches of the AND of the
//! matched facts' events. Inserting facts leaves every old match intact, so
//! the patched lineage is `old OR delta`, where the delta ranges over the
//! matches using **at least one inserted fact**. Enumerating those without
//! re-enumerating everything is the classic delta-join trick: partition the
//! new matches by the first atom position that uses an inserted fact — atom
//! positions before the pivot are restricted to old facts, the pivot to
//! inserted facts, and positions after it are unrestricted. The parts are
//! disjoint and cover exactly the new matches.

use std::collections::{BTreeMap, BTreeSet};
use stuc_data::instance::{ConstId, FactId, Instance};
use stuc_query::cq::{Atom, ConjunctiveQuery, Term};

/// Which facts an atom position may match during the pivoted search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AtomClass {
    /// Only facts that existed before the delta.
    OldOnly,
    /// Only freshly inserted facts.
    InsertedOnly,
    /// Any fact.
    Any,
}

/// The witness lists of every match that uses at least one inserted fact,
/// in some deterministic order. Each list has one fact per query atom.
pub fn delta_match_witnesses(
    instance: &Instance,
    query: &ConjunctiveQuery,
    inserted: &BTreeSet<FactId>,
) -> Vec<Vec<FactId>> {
    let mut results = Vec::new();
    if inserted.is_empty() {
        return results;
    }
    for pivot in 0..query.atoms.len() {
        let classes: Vec<AtomClass> = (0..query.atoms.len())
            .map(|i| match i.cmp(&pivot) {
                std::cmp::Ordering::Less => AtomClass::OldOnly,
                std::cmp::Ordering::Equal => AtomClass::InsertedOnly,
                std::cmp::Ordering::Greater => AtomClass::Any,
            })
            .collect();
        let mut assignment = BTreeMap::new();
        let mut witnesses = Vec::new();
        search(
            instance,
            &query.atoms,
            &classes,
            inserted,
            0,
            &mut assignment,
            &mut witnesses,
            &mut results,
        );
    }
    results
}

#[allow(clippy::too_many_arguments)]
fn search(
    instance: &Instance,
    atoms: &[Atom],
    classes: &[AtomClass],
    inserted: &BTreeSet<FactId>,
    index: usize,
    assignment: &mut BTreeMap<String, ConstId>,
    witnesses: &mut Vec<FactId>,
    results: &mut Vec<Vec<FactId>>,
) {
    if index == atoms.len() {
        results.push(witnesses.clone());
        return;
    }
    let atom = &atoms[index];
    let Some(relation) = instance.find_relation(&atom.relation) else {
        return;
    };
    for fact_id in instance.facts_of(relation) {
        match classes[index] {
            AtomClass::OldOnly if inserted.contains(&fact_id) => continue,
            AtomClass::InsertedOnly if !inserted.contains(&fact_id) => continue,
            _ => {}
        }
        let fact = instance.fact(fact_id);
        if fact.args.len() != atom.args.len() {
            continue;
        }
        let mut newly_bound = Vec::new();
        let mut ok = true;
        for (term, &constant) in atom.args.iter().zip(&fact.args) {
            match term {
                Term::Const(name) => {
                    if instance.find_constant(name) != Some(constant) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(&bound) if bound != constant => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        assignment.insert(v.clone(), constant);
                        newly_bound.push(v.clone());
                    }
                },
            }
        }
        if ok {
            witnesses.push(fact_id);
            search(
                instance,
                atoms,
                classes,
                inserted,
                index + 1,
                assignment,
                witnesses,
                results,
            );
            witnesses.pop();
        }
        for v in newly_bound {
            assignment.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_query::eval::all_matches;

    /// Ground truth: full enumeration filtered to matches touching an
    /// inserted fact.
    fn by_filtering(
        instance: &Instance,
        query: &ConjunctiveQuery,
        inserted: &BTreeSet<FactId>,
    ) -> usize {
        all_matches(instance, query)
            .into_iter()
            .filter(|m| m.witnesses.iter().any(|w| inserted.contains(w)))
            .count()
    }

    #[test]
    fn delta_matches_agree_with_filtered_full_enumeration() {
        let mut instance = Instance::new();
        for i in 0..5 {
            instance.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)]);
        }
        // Insert two more chain facts.
        let f5 = instance.add_fact_named("R", &["c6", "c7"]);
        let f6 = instance.add_fact_named("R", &["c5", "c6"]);
        let inserted = BTreeSet::from([f5, f6]);
        for q in ["R(x, y)", "R(x, y), R(y, z)", "R(x, y), R(y, z), R(z, w)"] {
            let query = ConjunctiveQuery::parse(q).unwrap();
            let delta = delta_match_witnesses(&instance, &query, &inserted);
            assert_eq!(
                delta.len(),
                by_filtering(&instance, &query, &inserted),
                "{q}"
            );
            for witnesses in &delta {
                assert!(witnesses.iter().any(|w| inserted.contains(w)), "{q}");
            }
        }
    }

    #[test]
    fn no_inserted_facts_means_no_delta_matches() {
        let mut instance = Instance::new();
        instance.add_fact_named("R", &["a", "b"]);
        let query = ConjunctiveQuery::parse("R(x, y)").unwrap();
        assert!(delta_match_witnesses(&instance, &query, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn partitioning_does_not_double_count() {
        // A self-join where both atoms can map to the same inserted fact:
        // every new match must be produced exactly once.
        let mut instance = Instance::new();
        instance.add_fact_named("R", &["a", "a"]);
        let f = instance.add_fact_named("R", &["a", "b"]);
        let inserted = BTreeSet::from([f]);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let delta = delta_match_witnesses(&instance, &query, &inserted);
        assert_eq!(delta.len(), by_filtering(&instance, &query, &inserted));
    }
}
