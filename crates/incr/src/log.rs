//! The update log: an append-only record of applied deltas.
//!
//! Replication and recovery both reduce to the same primitive — replay the
//! deltas, in order, against a copy of the base instance. [`UpdateLog`]
//! records each applied [`Delta`] together with its application summary and
//! can [`replay`](UpdateLog::replay) itself onto any [`Updatable`] target,
//! which is also how the tests pin down determinism of the delta semantics.

use crate::delta::{Delta, UpdateError};
use crate::updatable::{DeltaApplication, Updatable};
use stuc_data::instance::FactId;

/// One applied delta and what it did.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRecord {
    /// The delta, as applied.
    pub delta: Delta,
    /// The post-delta identifiers of the inserted facts.
    pub inserted: Vec<FactId>,
    /// How many facts the delta deleted.
    pub deleted: usize,
    /// How many probabilities the delta overwrote.
    pub reweighted: usize,
}

/// An append-only log of applied deltas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateLog {
    records: Vec<UpdateRecord>,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a delta together with its application outcome.
    pub fn record(&mut self, delta: Delta, application: &DeltaApplication) {
        self.records.push(UpdateRecord {
            delta,
            inserted: application.inserted.clone(),
            deleted: application.deleted,
            reweighted: application.reweighted,
        });
    }

    /// The recorded updates, oldest first.
    pub fn records(&self) -> &[UpdateRecord] {
        &self.records
    }

    /// Number of recorded deltas.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total operations across all recorded deltas.
    pub fn op_count(&self) -> usize {
        self.records.iter().map(|r| r.delta.len()).sum()
    }

    /// Replays every recorded delta, in order, against `target` (typically
    /// a copy of the base instance — a replica catching up). Returns the
    /// number of deltas applied; stops at the first failure.
    pub fn replay<T: Updatable>(&self, target: &mut T) -> Result<usize, UpdateError> {
        for (applied, record) in self.records.iter().enumerate() {
            if let Err(e) = target.apply_delta(&record.delta) {
                let _ = applied;
                return Err(e);
            }
        }
        Ok(self.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_data::tid::TidInstance;

    #[test]
    fn replaying_the_log_reproduces_the_instance() {
        let mut base = TidInstance::new();
        for i in 0..4 {
            base.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
        }
        let replica = base.clone();

        let mut log = UpdateLog::new();
        let mut live = base;
        for delta in [
            Delta::new().insert("R", &["c5", "c6"], 0.25),
            Delta::new()
                .delete(FactId(1))
                .set_probability(FactId(0), 0.9),
            Delta::new().insert("R", &["c0", "c3"], 0.75),
        ] {
            let application = live.apply_delta(&delta).unwrap();
            log.record(delta, &application);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.op_count(), 4);

        let mut replayed = replica;
        assert_eq!(log.replay(&mut replayed).unwrap(), 3);
        assert_eq!(replayed, live, "replay must reproduce the live instance");
    }

    #[test]
    fn replay_stops_at_the_first_failure() {
        let mut live = TidInstance::new();
        live.add_fact_named("R", &["a", "b"], 0.5);
        let mut log = UpdateLog::new();
        let delta = Delta::new().delete(FactId(0));
        let application = live.apply_delta(&delta).unwrap();
        log.record(delta, &application);
        // Replaying onto an empty instance fails cleanly.
        let mut empty = TidInstance::new();
        assert!(log.replay(&mut empty).is_err());
    }
}
