//! # stuc-incr — incremental updates for uncertain instances
//!
//! A production engine serving live traffic cannot rebuild the world per
//! tuple: the challenges survey (Amarilli–Maniu–Monet) names *maintaining
//! decompositions and provenance under updates* as the open systems problem,
//! and update support is what made U-relations usable in practice. This
//! crate is the update half of that story; the engine in `stuc-core` wires
//! it to the caches.
//!
//! * [`delta`] — the typed update model: [`Delta`] transactions of
//!   [`DeltaOp::InsertFact`] / [`DeltaOp::DeleteFact`] /
//!   [`DeltaOp::SetProbability`], with mutation-site probability validation
//!   ([`UpdateError`]).
//! * [`updatable`] — the [`Updatable`] trait and its implementations for
//!   TID, pc-, pcc-instances and PrXML documents. Applying a delta reports
//!   a [`StructureImpact`] (what the decomposition cache may keep: nothing
//!   changed / shrunk in place / grown by these cliques / opaque) and a
//!   [`LineagePatch`] (reuse verbatim / rewire inputs and extend with the
//!   new matches / rebuild).
//! * [`matches`](mod@matches) — delta-join enumeration of the query matches an insertion
//!   adds, without re-enumerating the old ones.
//! * [`log`] — [`UpdateLog`], an append-only record of applied deltas that
//!   can replay itself onto a replica.
//!
//! ## Example
//!
//! ```
//! use stuc_incr::{Delta, Updatable};
//! use stuc_data::instance::FactId;
//! use stuc_data::tid::TidInstance;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a", "b"], 0.5);
//! tid.add_fact_named("R", &["b", "c"], 0.5);
//!
//! let delta = Delta::new()
//!     .set_probability(FactId(0), 0.9)
//!     .insert("R", &["c", "d"], 0.25);
//! let application = tid.apply_delta(&delta).unwrap();
//! assert_eq!(application.reweighted, 1);
//! assert_eq!(application.inserted, vec![FactId(2)]);
//! assert_eq!(tid.fact_count(), 3);
//! ```

#![warn(missing_docs)]

pub mod delta;
pub mod log;
pub mod matches;
pub mod updatable;

pub use delta::{Delta, DeltaOp, UpdateError};
pub use log::{UpdateLog, UpdateRecord};
pub use updatable::{DeltaApplication, LineagePatch, LineagePatchStep, StructureImpact, Updatable};
