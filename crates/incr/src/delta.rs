//! The typed delta model: what an update *is*, independently of which
//! representation it lands on.
//!
//! A [`Delta`] is one batched transaction of [`DeltaOp`]s. Every `FactId`
//! inside a delta refers to the **pre-delta** instance; application order
//! within one delta is fixed so that batched transactions are unambiguous:
//!
//! 1. every [`DeltaOp::SetProbability`] (on pre-delta identifiers),
//! 2. every [`DeltaOp::DeleteFact`], processed in descending identifier
//!    order (so earlier removals never shift the ids of later ones),
//! 3. every [`DeltaOp::InsertFact`], in the order given (their new ids are
//!    reported back in [`DeltaApplication::inserted`]).
//!
//! [`DeltaApplication::inserted`]: crate::updatable::DeltaApplication

use stuc_circuit::weights::ProbabilityError;
use stuc_data::instance::FactId;

/// One primitive update.
///
/// `InsertFact` always inserts an **independent** fact: a TID fact with the
/// given probability, a pc-fact annotated by a fresh event, a pcc-fact whose
/// gate is a fresh input, or (for PrXML) a leaf node on a fresh `ind` edge.
/// Correlated insertions go through the representation's own builder API —
/// the delta model deliberately covers the high-traffic independent case.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert `relation(args)`, present independently with `probability`.
    ///
    /// For PrXML documents, `relation` is the new node's label and `args`
    /// must hold exactly one entry: the decimal id of the parent node the
    /// new leaf hangs off (through a fresh `ind` edge).
    InsertFact {
        /// Relation name (or node label for PrXML).
        relation: String,
        /// Argument constants (or the parent node id for PrXML).
        args: Vec<String>,
        /// Marginal presence probability of the new fact.
        probability: f64,
    },
    /// Delete a fact (detach a node, for PrXML). The id refers to the
    /// pre-delta instance.
    DeleteFact {
        /// The fact to delete.
        fact: FactId,
    },
    /// Overwrite the presence probability of a fact. The id refers to the
    /// pre-delta instance.
    SetProbability {
        /// The fact to re-weight.
        fact: FactId,
        /// The new marginal probability.
        probability: f64,
    },
}

/// A batched update transaction: a sequence of [`DeltaOp`]s applied
/// atomically (validation happens before any mutation, so a rejected delta
/// leaves the instance untouched).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insertion (builder style).
    pub fn insert(mut self, relation: &str, args: &[&str], probability: f64) -> Self {
        self.ops.push(DeltaOp::InsertFact {
            relation: relation.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            probability,
        });
        self
    }

    /// Appends a deletion (builder style).
    pub fn delete(mut self, fact: FactId) -> Self {
        self.ops.push(DeltaOp::DeleteFact { fact });
        self
    }

    /// Appends a probability overwrite (builder style).
    pub fn set_probability(mut self, fact: FactId, probability: f64) -> Self {
        self.ops.push(DeltaOp::SetProbability { fact, probability });
        self
    }

    /// The operations, in the order they were added.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the delta contains no operation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of insertions.
    pub fn insert_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::InsertFact { .. }))
            .count()
    }

    /// Number of deletions.
    pub fn delete_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::DeleteFact { .. }))
            .count()
    }

    /// Number of probability overwrites.
    pub fn reweight_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::SetProbability { .. }))
            .count()
    }

    /// True when the delta only overwrites probabilities (the weights-only
    /// fast path: caches are rekeyed, nothing is rebuilt).
    pub fn is_weights_only(&self) -> bool {
        self.insert_count() == 0 && self.delete_count() == 0
    }
}

stuc_errors::stuc_error! {
    /// Why a delta was rejected. Validation happens before mutation, so a
    /// rejected delta leaves the instance unchanged.
    #[derive(Clone, PartialEq)]
    pub enum UpdateError {
        /// The delta names a fact (or node) the instance does not have.
        UnknownFact(FactId),
        /// A probability value was NaN or outside `[0, 1]`.
        Probability(ProbabilityError),
        /// This representation cannot re-weight this fact in isolation
        /// (e.g. a pcc fact annotated by a derived gate, or a PrXML node on
        /// a shared-event edge).
        UnsupportedSetProbability {
            /// The fact whose probability cannot be overwritten.
            fact: FactId,
            /// Why not.
            reason: String,
        },
        /// The insertion is malformed for this representation (e.g. a PrXML
        /// insert without a valid parent node id).
        UnsupportedInsert {
            /// Why not.
            reason: String,
        },
        /// The deletion is not applicable (e.g. detaching the PrXML root).
        UnsupportedDelete {
            /// The fact that cannot be deleted.
            fact: FactId,
            /// Why not.
            reason: String,
        },
    }
    display {
        Self::UnknownFact(f) => "fact {f} does not exist in this instance",
        Self::Probability(e) => "{e}",
        Self::UnsupportedSetProbability { fact, reason } => "cannot re-weight {fact} in isolation: {reason}",
        Self::UnsupportedInsert { reason } => "cannot insert: {reason}",
        Self::UnsupportedDelete { fact, reason } => "cannot delete {fact}: {reason}",
    }
    from {
        ProbabilityError => Probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_ops_in_order() {
        let delta = Delta::new()
            .insert("R", &["a", "b"], 0.5)
            .delete(FactId(3))
            .set_probability(FactId(0), 0.9);
        assert_eq!(delta.len(), 3);
        assert_eq!(delta.insert_count(), 1);
        assert_eq!(delta.delete_count(), 1);
        assert_eq!(delta.reweight_count(), 1);
        assert!(!delta.is_weights_only());
        assert!(matches!(delta.ops()[0], DeltaOp::InsertFact { .. }));
    }

    #[test]
    fn weights_only_detection() {
        assert!(Delta::new().is_weights_only());
        assert!(Delta::new()
            .set_probability(FactId(0), 0.1)
            .is_weights_only());
        assert!(!Delta::new().delete(FactId(0)).is_weights_only());
    }

    #[test]
    fn update_error_displays() {
        let e = UpdateError::UnknownFact(FactId(7));
        assert!(e.to_string().contains("f7"));
        let e: UpdateError = stuc_circuit::weights::validate_probability(f64::NAN)
            .unwrap_err()
            .into();
        assert!(e.to_string().contains("NaN"));
    }
}
