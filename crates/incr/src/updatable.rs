//! The [`Updatable`] trait: how each representation applies a [`Delta`] and
//! tells the engine what can be *patched* instead of rebuilt.
//!
//! Applying a delta yields a [`DeltaApplication`] with two impact reports:
//!
//! * [`StructureImpact`] — what happened to the structure graph the engine's
//!   decomposition cache is built on. Weight changes leave it untouched,
//!   deletions only remove edges (an existing decomposition stays valid —
//!   it merely drifts wide), insertions add cliques that an incremental
//!   repair can absorb, and anything else is opaque (full re-decomposition).
//! * [`LineagePatch`] — what a cached compiled lineage needs. Weight-only
//!   deltas reuse it verbatim; TID deletions pin the deleted fact variables
//!   to false and renumber the survivors (pure input rewiring, no
//!   recompilation); insertions extend the circuit with the lineage of the
//!   *new* matches only; correlated cases fall back to a rebuild.
//!
//! The per-representation update matrix:
//!
//! | op | TID | pc | pcc | PrXML |
//! |---|---|---|---|---|
//! | `SetProbability` | rekey caches | rekey (single-event annotations) | rekey (input-gate facts) | rekey (private `ind` edges) |
//! | `InsertFact` | repair + extend | repair + extend | remap + repair + extend | rebuild |
//! | `DeleteFact` | rekey + rewire | rebuild lineage | rebuild lineage | rebuild |

use crate::delta::{Delta, DeltaOp, UpdateError};
use crate::matches::delta_match_witnesses;
use std::collections::{BTreeMap, BTreeSet};
use stuc_circuit::circuit::{Circuit, Gate, GateId, VarId};
use stuc_circuit::weights::validate_probability;
use stuc_data::cinstance::PcInstance;
use stuc_data::formula::Formula;
use stuc_data::instance::{FactId, Instance};
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;
use stuc_graph::graph::VertexId;
use stuc_prxml::document::{NodeId, PrXmlDocument};
use stuc_prxml::queries::PrxmlQuery;
use stuc_query::cq::ConjunctiveQuery;

/// How a delta changed the representation's structure graph.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureImpact {
    /// The graph is identical (weights-only delta): cached decompositions
    /// stay correct and only need rekeying.
    Unchanged,
    /// Edges (or whole facts) were removed but no vertex was renumbered: a
    /// decomposition of the old graph is still a valid decomposition of the
    /// new one — width may drift high, never wrong.
    Shrunk,
    /// The graph grew by the given cliques (one per inserted fact / gate),
    /// possibly after renumbering old vertices through `vertex_remap`
    /// (`map[old] = new`, injective).
    Grown {
        /// Old-vertex → new-vertex renumbering, when insertion shifted
        /// identifiers (pcc joint graphs); `None` when ids are stable.
        vertex_remap: Option<Vec<VertexId>>,
        /// New cliques, in new-graph numbering, in application order.
        new_cliques: Vec<Vec<VertexId>>,
    },
    /// The graph changed in a way the representation cannot localise:
    /// re-decompose from scratch.
    Opaque,
}

/// One patch step for a cached compiled lineage.
#[derive(Debug, Clone, PartialEq)]
pub enum LineagePatchStep {
    /// Pin these (pre-delta) event variables to false and renumber the rest
    /// — fact deletion on representations whose lineage variables are
    /// per-fact (TID).
    RewireInputs {
        /// Variables of deleted facts.
        pin_false: Vec<VarId>,
        /// Surviving-variable renumbering `(old, new)`, identity elsewhere.
        remap: Vec<(VarId, VarId)>,
    },
    /// OR the cached circuit with the lineage of the matches introduced by
    /// these (post-delta) fact identifiers, obtained from
    /// [`Updatable::delta_lineage`].
    ExtendWithNewMatches {
        /// The inserted facts, in post-delta numbering.
        inserted: Vec<FactId>,
    },
}

/// What a cached compiled lineage needs after a delta.
#[derive(Debug, Clone, PartialEq)]
pub enum LineagePatch {
    /// The circuit is still exactly the lineage: rekey, reuse verbatim.
    Reusable,
    /// Apply these steps in order; each is cheap relative to recompiling.
    Steps(Vec<LineagePatchStep>),
    /// The update correlates with existing annotations in a way we do not
    /// patch: drop cached lineages and rebuild on demand.
    Rebuild,
}

/// The outcome of applying one [`Delta`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaApplication {
    /// Identifiers of the inserted facts, in post-delta numbering.
    pub inserted: Vec<FactId>,
    /// Number of facts deleted.
    pub deleted: usize,
    /// Number of probability overwrites applied.
    pub reweighted: usize,
    /// Impact on the structure graph / decomposition cache.
    pub structure: StructureImpact,
    /// Impact on cached compiled lineages.
    pub lineage: LineagePatch,
}

/// A representation that supports typed incremental updates.
///
/// Implementations validate the **whole** delta before mutating anything, so
/// a rejected delta leaves the instance untouched, and report through
/// [`DeltaApplication`] exactly what downstream caches may keep.
pub trait Updatable {
    /// The query language whose cached lineages the engine may ask this
    /// representation to patch.
    type Query;

    /// Applies a delta transaction. All fact identifiers in the delta refer
    /// to the pre-delta instance; see [`Delta`] for the application order.
    fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaApplication, UpdateError>;

    /// The lineage circuit of only the matches introduced by `inserted`
    /// (post-delta identifiers), over the **post-delta** event variables —
    /// the delta that [`LineagePatchStep::ExtendWithNewMatches`] ORs onto a
    /// cached circuit. `None` when this representation cannot compute one
    /// (the engine then drops the cached lineage instead).
    fn delta_lineage(&self, query: &Self::Query, inserted: &[FactId]) -> Option<Circuit>;
}

/// Shared validation: fact ids in range, probabilities well-formed. Returns
/// `(sets, deletes, inserts)` with deletes deduplicated.
type SplitOps<'a> = (
    Vec<(FactId, f64)>,
    BTreeSet<usize>,
    Vec<(&'a str, Vec<&'a str>, f64)>,
);

fn split_and_validate(delta: &Delta, fact_count: usize) -> Result<SplitOps<'_>, UpdateError> {
    let mut sets = Vec::new();
    let mut deletes = BTreeSet::new();
    let mut inserts = Vec::new();
    for op in delta.ops() {
        match op {
            DeltaOp::SetProbability { fact, probability } => {
                if fact.0 >= fact_count {
                    return Err(UpdateError::UnknownFact(*fact));
                }
                validate_probability(*probability)?;
                sets.push((*fact, *probability));
            }
            DeltaOp::DeleteFact { fact } => {
                if fact.0 >= fact_count {
                    return Err(UpdateError::UnknownFact(*fact));
                }
                deletes.insert(fact.0);
            }
            DeltaOp::InsertFact {
                relation,
                args,
                probability,
            } => {
                validate_probability(*probability)?;
                inserts.push((
                    relation.as_str(),
                    args.iter().map(String::as_str).collect(),
                    *probability,
                ));
            }
        }
    }
    Ok((sets, deletes, inserts))
}

/// The `(old var, new var)` renumbering induced by deleting dense per-fact
/// variables, plus the pinned (deleted) variables.
fn deletion_rewiring(
    old_count: usize,
    deletes: &BTreeSet<usize>,
) -> (Vec<VarId>, Vec<(VarId, VarId)>) {
    let pins: Vec<VarId> = deletes.iter().map(|&i| VarId(i)).collect();
    let mut remap = Vec::new();
    let mut shift = 0usize;
    for old in 0..old_count {
        if deletes.contains(&old) {
            shift += 1;
        } else if shift > 0 {
            remap.push((VarId(old), VarId(old - shift)));
        }
    }
    (pins, remap)
}

/// The Gaifman clique of a fact (one vertex per distinct constant).
fn fact_clique(instance: &Instance, fact: FactId) -> Vec<VertexId> {
    instance
        .fact(fact)
        .args
        .iter()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .map(|c| VertexId(c.0))
        .collect()
}

impl Updatable for TidInstance {
    type Query = ConjunctiveQuery;

    fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaApplication, UpdateError> {
        let old_count = self.fact_count();
        let (sets, deletes, inserts) = split_and_validate(delta, old_count)?;

        for &(fact, p) in &sets {
            self.try_set_probability(fact, p)?;
        }
        for &i in deletes.iter().rev() {
            self.remove_fact(FactId(i));
        }
        let mut inserted = Vec::with_capacity(inserts.len());
        for (relation, args, p) in &inserts {
            inserted.push(self.try_add_fact_named(relation, args, *p)?);
        }

        let structure = if inserted.is_empty() && deletes.is_empty() {
            StructureImpact::Unchanged
        } else if inserted.is_empty() {
            StructureImpact::Shrunk
        } else {
            StructureImpact::Grown {
                vertex_remap: None,
                new_cliques: inserted
                    .iter()
                    .map(|&f| fact_clique(self.instance(), f))
                    .collect(),
            }
        };
        let mut steps = Vec::new();
        if !deletes.is_empty() {
            let (pin_false, remap) = deletion_rewiring(old_count, &deletes);
            steps.push(LineagePatchStep::RewireInputs { pin_false, remap });
        }
        if !inserted.is_empty() {
            steps.push(LineagePatchStep::ExtendWithNewMatches {
                inserted: inserted.clone(),
            });
        }
        let lineage = if steps.is_empty() {
            LineagePatch::Reusable
        } else {
            LineagePatch::Steps(steps)
        };
        Ok(DeltaApplication {
            inserted,
            deleted: deletes.len(),
            reweighted: sets.len(),
            structure,
            lineage,
        })
    }

    fn delta_lineage(&self, query: &ConjunctiveQuery, inserted: &[FactId]) -> Option<Circuit> {
        let inserted: BTreeSet<FactId> = inserted.iter().copied().collect();
        let mut circuit = Circuit::new();
        let mut fact_gate: BTreeMap<usize, GateId> = BTreeMap::new();
        let mut disjuncts = Vec::new();
        for witnesses in delta_match_witnesses(self.instance(), query, &inserted) {
            let mut conjuncts: Vec<GateId> = witnesses
                .into_iter()
                .map(|f| {
                    *fact_gate
                        .entry(f.0)
                        .or_insert_with(|| circuit.add_input(self.fact_event(f)))
                })
                .collect();
            conjuncts.sort();
            conjuncts.dedup();
            disjuncts.push(circuit.add_and(conjuncts));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        Some(circuit)
    }
}

impl Updatable for PcInstance {
    type Query = ConjunctiveQuery;

    fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaApplication, UpdateError> {
        let old_count = self.instance().fact_count();
        let (sets, deletes, inserts) = split_and_validate(delta, old_count)?;
        // `SetProbability` is only well-defined when the fact's annotation
        // is a single private event; validate before mutating.
        let mut set_events = Vec::with_capacity(sets.len());
        for &(fact, p) in &sets {
            match self.cinstance().annotation(fact) {
                Formula::Var(v) => set_events.push((*v, p)),
                other => {
                    return Err(UpdateError::UnsupportedSetProbability {
                        fact,
                        reason: format!(
                            "annotation {other:?} is not a single event; re-weight the events \
                             directly instead"
                        ),
                    })
                }
            }
        }

        for (v, p) in set_events {
            self.probabilities_mut().try_set(v, p)?;
        }
        for &i in deletes.iter().rev() {
            self.cinstance_mut().remove_fact(FactId(i));
        }
        let mut inserted = Vec::with_capacity(inserts.len());
        for (relation, args, p) in &inserts {
            // A fresh independent event per inserted fact.
            let mut k = self.cinstance().events().len();
            let name = loop {
                let candidate = format!("upd_e{k}");
                if self.cinstance().events().find(&candidate).is_none() {
                    break candidate;
                }
                k += 1;
            };
            let event = self.cinstance_mut().events_mut().intern(&name);
            self.probabilities_mut().try_set(event, *p)?;
            inserted.push(self.cinstance_mut().add_annotated_fact(
                relation,
                args,
                Formula::Var(event),
            ));
        }

        let structure = if inserted.is_empty() && deletes.is_empty() {
            StructureImpact::Unchanged
        } else if inserted.is_empty() {
            StructureImpact::Shrunk
        } else {
            StructureImpact::Grown {
                vertex_remap: None,
                new_cliques: inserted
                    .iter()
                    .map(|&f| fact_clique(self.instance(), f))
                    .collect(),
            }
        };
        // Deleting an annotated fact removes OR-branches we cannot locate
        // inside the cached circuit: rebuild. Pure insertions extend.
        let lineage = if !deletes.is_empty() {
            LineagePatch::Rebuild
        } else if !inserted.is_empty() {
            LineagePatch::Steps(vec![LineagePatchStep::ExtendWithNewMatches {
                inserted: inserted.clone(),
            }])
        } else {
            LineagePatch::Reusable
        };
        Ok(DeltaApplication {
            inserted,
            deleted: deletes.len(),
            reweighted: sets.len(),
            structure,
            lineage,
        })
    }

    fn delta_lineage(&self, query: &ConjunctiveQuery, inserted: &[FactId]) -> Option<Circuit> {
        let inserted: BTreeSet<FactId> = inserted.iter().copied().collect();
        let mut circuit = Circuit::new();
        let mut fact_gate: BTreeMap<usize, GateId> = BTreeMap::new();
        let mut disjuncts = Vec::new();
        for witnesses in delta_match_witnesses(self.instance(), query, &inserted) {
            let mut conjuncts: Vec<GateId> = witnesses
                .into_iter()
                .map(|f| {
                    *fact_gate.entry(f.0).or_insert_with(|| {
                        self.cinstance()
                            .annotation(f)
                            .append_to_circuit(&mut circuit)
                    })
                })
                .collect();
            conjuncts.sort();
            conjuncts.dedup();
            disjuncts.push(circuit.add_and(conjuncts));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        Some(circuit)
    }
}

impl Updatable for PccInstance {
    type Query = ConjunctiveQuery;

    fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaApplication, UpdateError> {
        let old_count = self.fact_count();
        let old_constants = self.instance().constant_count();
        let old_gates = self.annotation_circuit().len();
        let (sets, deletes, inserts) = split_and_validate(delta, old_count)?;
        let mut set_events = Vec::with_capacity(sets.len());
        for &(fact, p) in &sets {
            match self.annotation_circuit().gate(self.fact_gate(fact)) {
                Gate::Input(v) => set_events.push((*v, p)),
                other => {
                    return Err(UpdateError::UnsupportedSetProbability {
                        fact,
                        reason: format!(
                            "annotation gate is {other:?}, not an input; re-weight the underlying \
                             events instead"
                        ),
                    })
                }
            }
        }

        for (v, p) in set_events {
            self.probabilities_mut().try_set(v, p)?;
        }
        for &i in deletes.iter().rev() {
            self.remove_fact(FactId(i));
        }
        let mut inserted = Vec::with_capacity(inserts.len());
        let first_free_var = self
            .annotation_circuit()
            .variables()
            .into_iter()
            .map(|v| v.0 + 1)
            .max()
            .max(self.probabilities().iter().map(|(v, _)| v.0 + 1).max())
            .unwrap_or(0);
        for (offset, (relation, args, p)) in inserts.iter().enumerate() {
            let event = VarId(first_free_var + offset);
            self.probabilities_mut().try_set(event, *p)?;
            let gate = self.annotation_circuit_mut().add_input(event);
            inserted.push(self.add_fact_with_gate(relation, args, gate));
        }

        let structure = if inserted.is_empty() && deletes.is_empty() {
            StructureImpact::Unchanged
        } else if inserted.is_empty() {
            StructureImpact::Shrunk
        } else {
            // The joint graph numbers constants first, gates after: added
            // constants shift every gate vertex up by the same amount.
            let added_constants = self.instance().constant_count() - old_constants;
            let vertex_remap = (added_constants > 0).then(|| {
                (0..old_constants + old_gates)
                    .map(|v| {
                        if v < old_constants {
                            VertexId(v)
                        } else {
                            VertexId(v + added_constants)
                        }
                    })
                    .collect()
            });
            let constants = self.instance().constant_count();
            let new_cliques = inserted
                .iter()
                .map(|&f| {
                    let mut clique = fact_clique(self.instance(), f);
                    clique.push(VertexId(constants + self.fact_gate(f).0));
                    clique
                })
                .collect();
            StructureImpact::Grown {
                vertex_remap,
                new_cliques,
            }
        };
        let lineage = if !deletes.is_empty() {
            LineagePatch::Rebuild
        } else if !inserted.is_empty() {
            LineagePatch::Steps(vec![LineagePatchStep::ExtendWithNewMatches {
                inserted: inserted.clone(),
            }])
        } else {
            LineagePatch::Reusable
        };
        Ok(DeltaApplication {
            inserted,
            deleted: deletes.len(),
            reweighted: sets.len(),
            structure,
            lineage,
        })
    }

    fn delta_lineage(&self, query: &ConjunctiveQuery, inserted: &[FactId]) -> Option<Circuit> {
        let inserted: BTreeSet<FactId> = inserted.iter().copied().collect();
        // Self-contained delta over the event variables: a copy of the
        // annotation circuit plus the OR-of-ANDs of the new matches' gates.
        // Shared variables are merged with the cached circuit's inputs when
        // the engine folds the delta in.
        let mut circuit = self.annotation_circuit().clone();
        let mut disjuncts = Vec::new();
        for witnesses in delta_match_witnesses(self.instance(), query, &inserted) {
            let mut conjuncts: Vec<GateId> =
                witnesses.into_iter().map(|f| self.fact_gate(f)).collect();
            conjuncts.sort();
            conjuncts.dedup();
            disjuncts.push(circuit.add_and(conjuncts));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        Some(circuit)
    }
}

impl Updatable for PrXmlDocument {
    type Query = PrxmlQuery;

    fn apply_delta(&mut self, delta: &Delta) -> Result<DeltaApplication, UpdateError> {
        // Validate everything first: node ids, parents, edge shapes.
        let node_count = self.len();
        let mut sets = Vec::new();
        let mut deletes = BTreeSet::new();
        let mut inserts = Vec::new();
        for op in delta.ops() {
            match op {
                DeltaOp::SetProbability { fact, probability } => {
                    if fact.0 >= node_count {
                        return Err(UpdateError::UnknownFact(*fact));
                    }
                    validate_probability(*probability)?;
                    let Some(variable) = self.ind_edge_variable(NodeId(fact.0)) else {
                        return Err(UpdateError::UnsupportedSetProbability {
                            fact: *fact,
                            reason: "node does not hang off a private ind edge".into(),
                        });
                    };
                    sets.push((variable, *probability));
                }
                DeltaOp::DeleteFact { fact } => {
                    if fact.0 >= node_count {
                        return Err(UpdateError::UnknownFact(*fact));
                    }
                    if Some(NodeId(fact.0)) == self.root() {
                        return Err(UpdateError::UnsupportedDelete {
                            fact: *fact,
                            reason: "the document root cannot be detached".into(),
                        });
                    }
                    deletes.insert(fact.0);
                }
                DeltaOp::InsertFact {
                    relation,
                    args,
                    probability,
                } => {
                    validate_probability(*probability)?;
                    let parent = args
                        .first()
                        .and_then(|a| a.parse::<usize>().ok())
                        .filter(|&p| p < node_count && args.len() == 1);
                    let Some(parent) = parent else {
                        return Err(UpdateError::UnsupportedInsert {
                            reason: format!(
                                "PrXML insertion needs exactly one argument naming the parent \
                                 node id, got {args:?}"
                            ),
                        });
                    };
                    inserts.push((relation.as_str(), NodeId(parent), *probability));
                }
            }
        }

        for (variable, p) in &sets {
            self.probabilities_mut().try_set(*variable, *p)?;
        }
        for &node in deletes.iter().rev() {
            // Detaching an already-unreachable node is a harmless no-op.
            let _ = self.detach_node(NodeId(node));
        }
        let mut inserted = Vec::with_capacity(inserts.len());
        for (label, parent, p) in &inserts {
            let node = self.add_node(label);
            self.add_ind_child(*parent, node, *p);
            inserted.push(FactId(node.0));
        }

        // The structure graph is the presence-circuit graph: any structural
        // edit renumbers its gates, so there is nothing to patch — the
        // engine re-decomposes (and rebuilds lineages) on demand.
        let structural = !inserted.is_empty() || !deletes.is_empty();
        Ok(DeltaApplication {
            inserted,
            deleted: deletes.len(),
            reweighted: sets.len(),
            structure: if structural {
                StructureImpact::Opaque
            } else {
                StructureImpact::Unchanged
            },
            lineage: if structural {
                LineagePatch::Rebuild
            } else {
                LineagePatch::Reusable
            },
        })
    }

    fn delta_lineage(&self, _query: &PrxmlQuery, _inserted: &[FactId]) -> Option<Circuit> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::enumeration::probability_by_enumeration;

    fn path_tid(n: usize, p: f64) -> TidInstance {
        let mut tid = TidInstance::new();
        for i in 0..n {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
        }
        tid
    }

    #[test]
    fn tid_mixed_delta_reports_both_patch_steps() {
        let mut tid = path_tid(4, 0.5);
        let delta = Delta::new()
            .set_probability(FactId(0), 0.9)
            .delete(FactId(2))
            .insert("R", &["c4", "c5"], 0.25);
        let application = tid.apply_delta(&delta).unwrap();
        assert_eq!(application.deleted, 1);
        assert_eq!(application.reweighted, 1);
        assert_eq!(application.inserted, vec![FactId(3)]);
        assert_eq!(tid.fact_count(), 4);
        assert!((tid.probability(FactId(0)) - 0.9).abs() < 1e-12);
        assert!(matches!(
            application.structure,
            StructureImpact::Grown {
                vertex_remap: None,
                ..
            }
        ));
        let LineagePatch::Steps(steps) = &application.lineage else {
            panic!("expected steps");
        };
        assert_eq!(steps.len(), 2);
        assert!(matches!(steps[0], LineagePatchStep::RewireInputs { .. }));
    }

    #[test]
    fn invalid_delta_leaves_the_instance_untouched() {
        let mut tid = path_tid(3, 0.5);
        let before = tid.clone();
        let delta = Delta::new()
            .set_probability(FactId(0), 0.9)
            .delete(FactId(17));
        assert!(matches!(
            tid.apply_delta(&delta),
            Err(UpdateError::UnknownFact(FactId(17)))
        ));
        assert_eq!(tid, before, "validation must precede mutation");
        let delta = Delta::new().insert("R", &["x", "y"], f64::NAN);
        assert!(tid.apply_delta(&delta).is_err());
        assert_eq!(tid, before);
    }

    #[test]
    fn tid_delta_lineage_covers_exactly_the_new_matches() {
        let mut tid = path_tid(3, 0.5);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let application = tid
            .apply_delta(&Delta::new().insert("R", &["c3", "c4"], 0.5))
            .unwrap();
        let delta_circuit = tid.delta_lineage(&query, &application.inserted).unwrap();
        // The only new 2-chain is (f2, f3): probability 0.25 at p = 0.5.
        let p = probability_by_enumeration(&delta_circuit, &tid.fact_weights()).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pc_insert_uses_fresh_events_and_deletes_force_rebuild() {
        let mut pc = path_tid(3, 0.5).to_pc_instance();
        let before_events = pc.event_count();
        let application = pc
            .apply_delta(&Delta::new().insert("R", &["c3", "c4"], 0.7))
            .unwrap();
        assert_eq!(application.inserted.len(), 1);
        assert_eq!(pc.event_count(), before_events + 1);
        assert!(pc.is_fully_weighted());
        assert!(matches!(application.lineage, LineagePatch::Steps(_)));

        let application = pc.apply_delta(&Delta::new().delete(FactId(0))).unwrap();
        assert!(matches!(application.lineage, LineagePatch::Rebuild));
        assert!(matches!(application.structure, StructureImpact::Shrunk));
    }

    #[test]
    fn pc_set_probability_requires_single_event_annotation() {
        let mut pc = path_tid(2, 0.5).to_pc_instance();
        // Facts converted from a TID carry single-event annotations.
        assert!(pc
            .apply_delta(&Delta::new().set_probability(FactId(0), 0.25))
            .is_ok());
        // A conjunctive annotation cannot be re-weighted through the fact.
        let mut ci = stuc_data::cinstance::CInstance::new();
        ci.add_fact_with_condition("R", &["a"], "e1 & e2").unwrap();
        let weights = stuc_circuit::weights::Weights::uniform(ci.events().variables(), 0.5);
        let mut pc = ci.with_probabilities(weights);
        assert!(matches!(
            pc.apply_delta(&Delta::new().set_probability(FactId(0), 0.25)),
            Err(UpdateError::UnsupportedSetProbability { .. })
        ));
    }

    #[test]
    fn pcc_insert_renumbers_gate_vertices_when_constants_grow() {
        let mut pcc = PccInstance::new();
        let v = VarId(0);
        let gate = pcc.annotation_circuit_mut().add_input(v);
        pcc.probabilities_mut().set(v, 0.9);
        pcc.add_fact_with_gate("R", &["a", "b"], gate);
        let old_constants = pcc.instance().constant_count();
        let old_gates = pcc.annotation_circuit().len();

        let application = pcc
            .apply_delta(&Delta::new().insert("R", &["b", "c"], 0.4))
            .unwrap();
        let StructureImpact::Grown {
            vertex_remap: Some(remap),
            new_cliques,
        } = &application.structure
        else {
            panic!("expected a grown structure with a remap");
        };
        assert_eq!(remap.len(), old_constants + old_gates);
        // Constant vertices are stable, gate vertices shift by one new constant.
        assert_eq!(remap[0], VertexId(0));
        assert_eq!(remap[old_constants], VertexId(old_constants + 1));
        // The new clique spans the fact's constants and its fresh gate.
        assert_eq!(new_cliques.len(), 1);
        assert_eq!(new_cliques[0].len(), 3);
        // The new fact got a fresh independent event with the probability.
        let new_gate = pcc.fact_gate(application.inserted[0]);
        let Gate::Input(event) = pcc.annotation_circuit().gate(new_gate) else {
            panic!("inserted fact must be annotated by an input gate");
        };
        assert_eq!(pcc.probabilities().get(*event), Some(0.4));
    }

    #[test]
    fn pcc_set_probability_only_on_input_gates() {
        let mut pcc = PccInstance::new();
        let v = VarId(0);
        let input = pcc.annotation_circuit_mut().add_input(v);
        let derived = pcc.annotation_circuit_mut().add_and(vec![input]);
        pcc.probabilities_mut().set(v, 0.5);
        pcc.add_fact_with_gate("R", &["a"], input);
        pcc.add_fact_with_gate("S", &["a"], derived);
        assert!(pcc
            .apply_delta(&Delta::new().set_probability(FactId(0), 0.3))
            .is_ok());
        assert!(matches!(
            pcc.apply_delta(&Delta::new().set_probability(FactId(1), 0.3)),
            Err(UpdateError::UnsupportedSetProbability { .. })
        ));
    }

    #[test]
    fn prxml_deltas_validate_and_apply() {
        let mut doc = PrXmlDocument::figure1_example();
        let occupation = (0..doc.len())
            .find(|&n| doc.label(NodeId(n)) == "occupation")
            .unwrap();
        // Re-weight the ind edge.
        let application = doc
            .apply_delta(&Delta::new().set_probability(FactId(occupation), 0.8))
            .unwrap();
        assert!(matches!(application.structure, StructureImpact::Unchanged));
        assert!(matches!(application.lineage, LineagePatch::Reusable));
        // Insert a new leaf under the root.
        let root = doc.root().unwrap().0;
        let application = doc
            .apply_delta(&Delta::new().insert("award", &[&root.to_string()], 0.5))
            .unwrap();
        assert!(matches!(application.structure, StructureImpact::Opaque));
        assert_eq!(doc.label(NodeId(application.inserted[0].0)), "award");
        // The root cannot be deleted; bogus parents are rejected.
        assert!(doc.apply_delta(&Delta::new().delete(FactId(root))).is_err());
        assert!(doc
            .apply_delta(&Delta::new().insert("x", &["not-a-node"], 0.5))
            .is_err());
        // A cie node cannot be re-weighted in isolation.
        let surname = (0..doc.len())
            .find(|&n| doc.label(NodeId(n)) == "surname")
            .unwrap();
        assert!(matches!(
            doc.apply_delta(&Delta::new().set_probability(FactId(surname), 0.5)),
            Err(UpdateError::UnsupportedSetProbability { .. })
        ));
        // Detaching works and reports a rebuild.
        let application = doc
            .apply_delta(&Delta::new().delete(FactId(surname)))
            .unwrap();
        assert_eq!(application.deleted, 1);
        assert!(matches!(application.lineage, LineagePatch::Rebuild));
    }

    #[test]
    fn deletion_rewiring_shifts_survivors() {
        let (pins, remap) = deletion_rewiring(5, &BTreeSet::from([1, 3]));
        assert_eq!(pins, vec![VarId(1), VarId(3)]);
        assert_eq!(remap, vec![(VarId(2), VarId(1)), (VarId(4), VarId(2))]);
    }
}
