//! The naive possible-world enumeration baseline.
//!
//! The paper's introduction points out that representing and querying all
//! possible worlds explicitly is hopeless because there are exponentially
//! many of them. This module implements exactly that strawman so that the
//! benchmarks can show the crossover against the structural approaches:
//! the probability of a circuit is computed by enumerating all `2^n`
//! assignments of its variables.

use crate::circuit::{Circuit, CircuitError, VarId};
use crate::weights::Weights;
use std::collections::BTreeMap;

/// Hard cap on the number of variables the enumerator accepts, to avoid
/// accidentally running a `2^60`-world loop in tests.
pub const ENUMERATION_LIMIT: usize = 30;

stuc_errors::stuc_error! {
    /// Errors specific to the enumeration back-end.
    #[derive(Clone, PartialEq, Eq)]
    pub enum EnumerationError {
        /// The circuit has more variables than [`ENUMERATION_LIMIT`].
        TooManyVariables(usize),
        /// An underlying circuit error.
        Circuit(CircuitError),
    }
    display {
        Self::TooManyVariables(n) => "{n} variables exceed the enumeration limit of {ENUMERATION_LIMIT}",
        Self::Circuit(e) => "{e}",
    }
    from {
        CircuitError => Circuit,
    }
}

/// Computes the probability that the circuit's output is true by enumerating
/// every assignment of its variables (`O(2^n · |C|)`).
pub fn probability_by_enumeration(
    circuit: &Circuit,
    weights: &Weights,
) -> Result<f64, EnumerationError> {
    let vars: Vec<VarId> = circuit.variables().into_iter().collect();
    if vars.len() > ENUMERATION_LIMIT {
        return Err(EnumerationError::TooManyVariables(vars.len()));
    }
    // Check weights up front so the error is deterministic.
    for &v in &vars {
        weights.weight(v, true)?;
    }
    let mut total = 0.0;
    for bits in 0..(1u64 << vars.len()) {
        let mut assignment = BTreeMap::new();
        let mut weight = 1.0;
        for (i, &v) in vars.iter().enumerate() {
            let value = bits & (1 << i) != 0;
            assignment.insert(v, value);
            weight *= weights.weight(v, value)?;
        }
        if weight == 0.0 {
            continue;
        }
        if circuit.evaluate(&assignment)? {
            total += weight;
        }
    }
    Ok(total)
}

/// Counts the models (satisfying assignments) of the circuit over its
/// variables by enumeration. Returns the number of satisfying assignments.
pub fn count_models_by_enumeration(circuit: &Circuit) -> Result<u64, EnumerationError> {
    let vars: Vec<VarId> = circuit.variables().into_iter().collect();
    if vars.len() > ENUMERATION_LIMIT {
        return Err(EnumerationError::TooManyVariables(vars.len()));
    }
    let mut count = 0;
    for bits in 0..(1u64 << vars.len()) {
        let assignment: BTreeMap<VarId, bool> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, bits & (1 << i) != 0))
            .collect();
        if circuit.evaluate(&assignment)? {
            count += 1;
        }
    }
    Ok(count)
}

/// True if some assignment satisfies the circuit (possibility).
pub fn is_possible(circuit: &Circuit) -> Result<bool, EnumerationError> {
    Ok(count_models_by_enumeration(circuit)? > 0)
}

/// True if every assignment satisfies the circuit (certainty).
pub fn is_certain(circuit: &Circuit) -> Result<bool, EnumerationError> {
    let vars = circuit.variables().len() as u32;
    Ok(count_models_by_enumeration(circuit)? == 1u64 << vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::VarId;

    fn xor_circuit() -> Circuit {
        // x XOR y = (x AND NOT y) OR (NOT x AND y)
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let y = c.add_input(VarId(1));
        let nx = c.add_not(x);
        let ny = c.add_not(y);
        let a = c.add_and(vec![x, ny]);
        let b = c.add_and(vec![nx, y]);
        let or = c.add_or(vec![a, b]);
        c.set_output(or);
        c
    }

    #[test]
    fn xor_probability() {
        let c = xor_circuit();
        let mut w = Weights::new();
        w.set(VarId(0), 0.3);
        w.set(VarId(1), 0.6);
        // P(xor) = 0.3·0.4 + 0.7·0.6 = 0.54
        let p = probability_by_enumeration(&c, &w).unwrap();
        assert!((p - 0.54).abs() < 1e-12);
    }

    #[test]
    fn xor_model_count() {
        let c = xor_circuit();
        assert_eq!(count_models_by_enumeration(&c).unwrap(), 2);
    }

    #[test]
    fn possibility_and_certainty() {
        let c = xor_circuit();
        assert!(is_possible(&c).unwrap());
        assert!(!is_certain(&c).unwrap());

        let mut tautology = Circuit::new();
        let x = tautology.add_input(VarId(0));
        let nx = tautology.add_not(x);
        let or = tautology.add_or(vec![x, nx]);
        tautology.set_output(or);
        assert!(is_certain(&tautology).unwrap());

        let mut contradiction = Circuit::new();
        let x = contradiction.add_input(VarId(0));
        let nx = contradiction.add_not(x);
        let and = contradiction.add_and(vec![x, nx]);
        contradiction.set_output(and);
        assert!(!is_possible(&contradiction).unwrap());
    }

    #[test]
    fn variable_free_circuit() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        c.set_output(t);
        assert_eq!(
            probability_by_enumeration(&c, &Weights::new()).unwrap(),
            1.0
        );
        assert_eq!(count_models_by_enumeration(&c).unwrap(), 1);
    }

    #[test]
    fn refuses_huge_circuits() {
        let mut c = Circuit::new();
        let inputs: Vec<_> = (0..=ENUMERATION_LIMIT)
            .map(|i| c.add_input(VarId(i)))
            .collect();
        let or = c.add_or(inputs);
        c.set_output(or);
        assert!(matches!(
            count_models_by_enumeration(&c),
            Err(EnumerationError::TooManyVariables(_))
        ));
    }

    #[test]
    fn missing_weight_error_propagates() {
        let c = xor_circuit();
        let w = Weights::new();
        assert!(matches!(
            probability_by_enumeration(&c, &w),
            Err(EnumerationError::Circuit(CircuitError::UnassignedVariable(
                _
            )))
        ));
    }

    #[test]
    fn deterministic_variables_short_circuit() {
        // With P(x) = 1 the x = false worlds have weight 0 and are skipped.
        let c = xor_circuit();
        let mut w = Weights::new();
        w.set(VarId(0), 1.0);
        w.set(VarId(1), 0.25);
        let p = probability_by_enumeration(&c, &w).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }
}
