//! The Boolean circuit representation used for lineages and annotations.
//!
//! A [`Circuit`] is a DAG of gates stored in an arena; every gate's inputs
//! have smaller indices than the gate itself, so iterating `0..len()` visits
//! gates bottom-up. Circuits serve three roles in STUC:
//!
//! * **lineage circuits** produced by automaton runs (which possible worlds
//!   satisfy the query),
//! * **annotation circuits** of pcc-instances (correlations between facts),
//! * **condition circuits** used by conditioning.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An (event) variable of a circuit — in the paper's terms, a Boolean event
/// such as "this fact is present" or "user Jane is trustworthy".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A handle to a gate of a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub usize);

impl GateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate of a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Reads the value of an event variable.
    Input(VarId),
    /// A Boolean constant.
    Const(bool),
    /// Conjunction of the inputs (true when empty).
    And(Vec<GateId>),
    /// Disjunction of the inputs (false when empty).
    Or(Vec<GateId>),
    /// Negation of the input.
    Not(GateId),
}

impl Gate {
    /// The gates this gate reads from.
    pub fn inputs(&self) -> &[GateId] {
        match self {
            Gate::Input(_) | Gate::Const(_) => &[],
            Gate::And(xs) | Gate::Or(xs) => xs,
            Gate::Not(x) => std::slice::from_ref(x),
        }
    }

    /// True for gates with no inputs (variables and constants).
    pub fn is_leaf(&self) -> bool {
        matches!(self, Gate::Input(_) | Gate::Const(_))
    }
}

stuc_errors::stuc_error! {
    /// Errors raised by circuit construction and evaluation.
    #[derive(Clone, PartialEq, Eq)]
    pub enum CircuitError {
        /// A gate refers to an identifier that does not exist (or is not older
        /// than the referring gate).
        InvalidGateReference(GateId),
        /// The circuit has no designated output gate.
        NoOutput,
        /// A variable needed during evaluation has no assigned value / weight.
        UnassignedVariable(VarId),
    }
    display {
        Self::InvalidGateReference(g) => "invalid gate reference {g}",
        Self::NoOutput => "circuit has no output gate",
        Self::UnassignedVariable(v) => "variable {v} has no value",
    }
}

/// A Boolean circuit stored as a bottom-up arena of gates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    gates: Vec<Gate>,
    output: Option<GateId>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Access a gate.
    pub fn gate(&self, g: GateId) -> &Gate {
        &self.gates[g.0]
    }

    /// Iterate over `(id, gate)` bottom-up.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), g))
    }

    /// The designated output gate, if set.
    pub fn output(&self) -> Option<GateId> {
        self.output
    }

    /// Sets the output gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not exist.
    pub fn set_output(&mut self, g: GateId) {
        assert!(g.0 < self.gates.len(), "output gate out of range");
        self.output = Some(g);
    }

    fn push(&mut self, gate: Gate) -> GateId {
        for &i in gate.inputs() {
            assert!(i.0 < self.gates.len(), "gate input {i} out of range");
        }
        self.gates.push(gate);
        GateId(self.gates.len() - 1)
    }

    /// Adds an input gate reading variable `v`.
    pub fn add_input(&mut self, v: VarId) -> GateId {
        self.push(Gate::Input(v))
    }

    /// Adds a constant gate.
    pub fn add_const(&mut self, value: bool) -> GateId {
        self.push(Gate::Const(value))
    }

    /// Adds an AND gate over the given inputs.
    pub fn add_and(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(Gate::And(inputs))
    }

    /// Adds an OR gate over the given inputs.
    pub fn add_or(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(Gate::Or(inputs))
    }

    /// Adds a NOT gate.
    pub fn add_not(&mut self, input: GateId) -> GateId {
        self.push(Gate::Not(input))
    }

    /// The set of variables read by the circuit.
    pub fn variables(&self) -> BTreeSet<VarId> {
        self.gates
            .iter()
            .filter_map(|g| match g {
                Gate::Input(v) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Evaluates every gate under a total assignment of the variables.
    ///
    /// Returns the value of every gate (indexed by gate id); variables absent
    /// from `assignment` cause [`CircuitError::UnassignedVariable`].
    pub fn evaluate_all(
        &self,
        assignment: &BTreeMap<VarId, bool>,
    ) -> Result<Vec<bool>, CircuitError> {
        let mut values = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate {
                Gate::Input(x) => *assignment
                    .get(x)
                    .ok_or(CircuitError::UnassignedVariable(*x))?,
                Gate::Const(b) => *b,
                Gate::And(xs) => xs.iter().all(|&g| values[g.0]),
                Gate::Or(xs) => xs.iter().any(|&g| values[g.0]),
                Gate::Not(x) => !values[x.0],
            };
            values.push(v);
        }
        Ok(values)
    }

    /// Evaluates the output gate under a total assignment.
    pub fn evaluate(&self, assignment: &BTreeMap<VarId, bool>) -> Result<bool, CircuitError> {
        let out = self.output.ok_or(CircuitError::NoOutput)?;
        Ok(self.evaluate_all(assignment)?[out.0])
    }

    /// True if the circuit is monotone (contains no NOT gate and no `false`
    /// constant feeding the output is required — we use the syntactic
    /// criterion: no NOT gates).
    pub fn is_monotone(&self) -> bool {
        !self.gates.iter().any(|g| matches!(g, Gate::Not(_)))
    }

    /// The number of gates of each kind `(inputs, consts, ands, ors, nots)`.
    pub fn gate_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0, 0);
        for g in &self.gates {
            match g {
                Gate::Input(_) => counts.0 += 1,
                Gate::Const(_) => counts.1 += 1,
                Gate::And(_) => counts.2 += 1,
                Gate::Or(_) => counts.3 += 1,
                Gate::Not(_) => counts.4 += 1,
            }
        }
        counts
    }

    /// The number of wires (total fan-in over all gates).
    pub fn wire_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs().len()).sum()
    }

    /// Depth of the circuit (longest path from a leaf to the output; 0 for
    /// leaf-only circuits).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[i] = g.inputs().iter().map(|x| depth[x.0] + 1).max().unwrap_or(0);
        }
        self.output.map(|o| depth[o.0]).unwrap_or(0)
    }

    /// Builds a new circuit in which every input gate reading a variable that
    /// appears in `substitution` is replaced by a copy of the corresponding
    /// circuit (whose output gate is used in its place).
    ///
    /// This is how pcc-instance lineages are assembled: the automaton-run
    /// circuit reads one variable per *fact*, and each fact variable is then
    /// substituted by the fact's *annotation* sub-circuit over event
    /// variables.
    pub fn substitute(
        &self,
        substitution: &BTreeMap<VarId, Circuit>,
    ) -> Result<Circuit, CircuitError> {
        let mut result = Circuit::new();
        // Import each substituted circuit once, remembering its output gate.
        let mut imported: BTreeMap<VarId, GateId> = BTreeMap::new();
        for (&var, sub) in substitution {
            let out = sub.output.ok_or(CircuitError::NoOutput)?;
            let offset = result.gates.len();
            for gate in &sub.gates {
                let remapped = match gate {
                    Gate::Input(v) => Gate::Input(*v),
                    Gate::Const(b) => Gate::Const(*b),
                    Gate::And(xs) => Gate::And(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
                    Gate::Or(xs) => Gate::Or(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
                    Gate::Not(x) => Gate::Not(GateId(x.0 + offset)),
                };
                result.gates.push(remapped);
            }
            imported.insert(var, GateId(out.0 + offset));
        }
        // Now import this circuit, redirecting substituted inputs.
        let offset = result.gates.len();
        let mut map = vec![GateId(0); self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let new_id = match gate {
                Gate::Input(v) => {
                    if let Some(&target) = imported.get(v) {
                        map[i] = target;
                        continue;
                    } else {
                        result.push(Gate::Input(*v))
                    }
                }
                Gate::Const(b) => result.push(Gate::Const(*b)),
                Gate::And(xs) => {
                    let mapped = xs.iter().map(|g| map[g.0]).collect();
                    result.push(Gate::And(mapped))
                }
                Gate::Or(xs) => {
                    let mapped = xs.iter().map(|g| map[g.0]).collect();
                    result.push(Gate::Or(mapped))
                }
                Gate::Not(x) => result.push(Gate::Not(map[x.0])),
            };
            map[i] = new_id;
        }
        let _ = offset;
        if let Some(out) = self.output {
            result.output = Some(map[out.0]);
        }
        Ok(result)
    }

    /// Returns an equivalent circuit in which every AND/OR gate has fan-in at
    /// most two, by expanding wide gates into left-deep chains.
    ///
    /// Binarisation matters for the treewidth-based back-end: a gate of
    /// fan-in `k` forces a clique of size `k + 1` into the circuit graph,
    /// whereas its binarised chain only adds constraints of scope 3. For
    /// lineage circuits built over path- or tree-shaped data, the binarised
    /// circuit graph keeps bounded treewidth, which is what Theorems 1 and 2
    /// rely on.
    pub fn binarize(&self) -> Circuit {
        let mut result = Circuit::new();
        let mut map: Vec<GateId> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let id = match gate {
                Gate::Input(v) => result.add_input(*v),
                Gate::Const(b) => result.add_const(*b),
                Gate::Not(x) => result.add_not(map[x.0]),
                Gate::And(xs) => match xs.len() {
                    0 => result.add_const(true),
                    1 => map[xs[0].0],
                    _ => {
                        let mut acc = map[xs[0].0];
                        for x in &xs[1..] {
                            acc = result.add_and(vec![acc, map[x.0]]);
                        }
                        acc
                    }
                },
                Gate::Or(xs) => match xs.len() {
                    0 => result.add_const(false),
                    1 => map[xs[0].0],
                    _ => {
                        let mut acc = map[xs[0].0];
                        for x in &xs[1..] {
                            acc = result.add_or(vec![acc, map[x.0]]);
                        }
                        acc
                    }
                },
            };
            map.push(id);
        }
        if let Some(out) = self.output {
            result.output = Some(map[out.0]);
        }
        result
    }

    /// The largest fan-in over all gates.
    pub fn max_fanin(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.inputs().len())
            .max()
            .unwrap_or(0)
    }

    /// Returns an equivalent circuit with constants propagated and gates not
    /// reachable from the output removed. The output gate is preserved
    /// semantically (it may become a constant).
    pub fn simplify(&self) -> Result<Circuit, CircuitError> {
        let out = self.output.ok_or(CircuitError::NoOutput)?;
        // First pass: constant folding bottom-up, producing either a constant
        // or a pending gate description.
        #[derive(Clone)]
        enum Folded {
            Const(bool),
            Gate(Gate),
        }
        let mut folded: Vec<Folded> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let f = match gate {
                Gate::Input(v) => Folded::Gate(Gate::Input(*v)),
                Gate::Const(b) => Folded::Const(*b),
                Gate::And(xs) => {
                    let mut kept = Vec::new();
                    let mut value = Some(true);
                    for &x in xs {
                        match &folded[x.0] {
                            Folded::Const(false) => {
                                value = Some(false);
                                kept.clear();
                                break;
                            }
                            Folded::Const(true) => {}
                            Folded::Gate(_) => {
                                value = None;
                                kept.push(x);
                            }
                        }
                    }
                    match value {
                        Some(b) => Folded::Const(b),
                        None if kept.len() == 1 => folded[kept[0].0].clone(),
                        None => Folded::Gate(Gate::And(kept)),
                    }
                }
                Gate::Or(xs) => {
                    let mut kept = Vec::new();
                    let mut value = Some(false);
                    for &x in xs {
                        match &folded[x.0] {
                            Folded::Const(true) => {
                                value = Some(true);
                                kept.clear();
                                break;
                            }
                            Folded::Const(false) => {}
                            Folded::Gate(_) => {
                                value = None;
                                kept.push(x);
                            }
                        }
                    }
                    match value {
                        Some(b) => Folded::Const(b),
                        None if kept.len() == 1 => folded[kept[0].0].clone(),
                        None => Folded::Gate(Gate::Or(kept)),
                    }
                }
                Gate::Not(x) => match &folded[x.0] {
                    Folded::Const(b) => Folded::Const(!b),
                    Folded::Gate(_) => Folded::Gate(Gate::Not(*x)),
                },
            };
            folded.push(f);
        }
        // Second pass: rebuild only the gates reachable from the output.
        // We rebuild *all* folded gates in order but share leaves aggressively;
        // unreachable gates are then dropped by a reachability filter.
        let mut result = Circuit::new();
        let mut map: Vec<Option<GateId>> = vec![None; self.gates.len()];
        // Mark reachable original gates (through the folded structure).
        let mut reachable = vec![false; self.gates.len()];
        let mut stack = vec![out.0];
        reachable[out.0] = true;
        while let Some(i) = stack.pop() {
            let inputs: Vec<GateId> = match &folded[i] {
                Folded::Const(_) => Vec::new(),
                Folded::Gate(g) => g.inputs().to_vec(),
            };
            for x in inputs {
                if !reachable[x.0] {
                    reachable[x.0] = true;
                    stack.push(x.0);
                }
            }
        }
        for i in 0..self.gates.len() {
            if !reachable[i] {
                continue;
            }
            let id = match &folded[i] {
                Folded::Const(b) => result.add_const(*b),
                Folded::Gate(Gate::Input(v)) => result.add_input(*v),
                Folded::Gate(Gate::And(xs)) => {
                    let mapped = xs.iter().map(|x| map[x.0].expect("input built")).collect();
                    result.add_and(mapped)
                }
                Folded::Gate(Gate::Or(xs)) => {
                    let mapped = xs.iter().map(|x| map[x.0].expect("input built")).collect();
                    result.add_or(mapped)
                }
                Folded::Gate(Gate::Not(x)) => {
                    let mapped = map[x.0].expect("input built");
                    result.add_not(mapped)
                }
                Folded::Gate(Gate::Const(b)) => result.add_const(*b),
            };
            map[i] = Some(id);
        }
        result.output = Some(map[out.0].expect("output built"));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(pairs: &[(usize, bool)]) -> BTreeMap<VarId, bool> {
        pairs.iter().map(|&(v, b)| (VarId(v), b)).collect()
    }

    /// (x0 AND x1) OR NOT x2
    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.add_input(VarId(0));
        let x1 = c.add_input(VarId(1));
        let x2 = c.add_input(VarId(2));
        let and = c.add_and(vec![x0, x1]);
        let not = c.add_not(x2);
        let or = c.add_or(vec![and, not]);
        c.set_output(or);
        c
    }

    #[test]
    fn evaluation_matches_truth_table() {
        let c = sample_circuit();
        let cases = [
            ((false, false, false), true),
            ((false, false, true), false),
            ((true, true, true), true),
            ((true, false, true), false),
            ((true, true, false), true),
        ];
        for ((a, b, d), expected) in cases {
            let asg = assignment(&[(0, a), (1, b), (2, d)]);
            assert_eq!(c.evaluate(&asg).unwrap(), expected, "{a} {b} {d}");
        }
    }

    #[test]
    fn missing_variable_is_an_error() {
        let c = sample_circuit();
        let asg = assignment(&[(0, true), (1, true)]);
        assert_eq!(
            c.evaluate(&asg),
            Err(CircuitError::UnassignedVariable(VarId(2)))
        );
    }

    #[test]
    fn no_output_is_an_error() {
        let mut c = Circuit::new();
        c.add_input(VarId(0));
        assert_eq!(
            c.evaluate(&assignment(&[(0, true)])),
            Err(CircuitError::NoOutput)
        );
    }

    #[test]
    fn variables_are_collected() {
        let c = sample_circuit();
        let vars: Vec<_> = c.variables().into_iter().map(|v| v.0).collect();
        assert_eq!(vars, vec![0, 1, 2]);
    }

    #[test]
    fn monotonicity_detection() {
        let c = sample_circuit();
        assert!(!c.is_monotone());
        let mut m = Circuit::new();
        let a = m.add_input(VarId(0));
        let b = m.add_input(VarId(1));
        let and = m.add_and(vec![a, b]);
        m.set_output(and);
        assert!(m.is_monotone());
    }

    #[test]
    fn gate_statistics() {
        let c = sample_circuit();
        assert_eq!(c.gate_counts(), (3, 0, 1, 1, 1));
        assert_eq!(c.wire_count(), 2 + 1 + 2);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_reference_panics() {
        let mut c = Circuit::new();
        c.add_and(vec![GateId(5)]);
    }

    #[test]
    fn empty_and_or_have_neutral_values() {
        let mut c = Circuit::new();
        let and = c.add_and(vec![]);
        c.set_output(and);
        assert!(c.evaluate(&BTreeMap::new()).unwrap());
        let mut c = Circuit::new();
        let or = c.add_or(vec![]);
        c.set_output(or);
        assert!(!c.evaluate(&BTreeMap::new()).unwrap());
    }

    #[test]
    fn substitution_replaces_fact_variables_by_annotations() {
        // Lineage: f0 AND f1. Annotations: f0 := e0 OR e1, f1 := NOT e0.
        let mut lineage = Circuit::new();
        let f0 = lineage.add_input(VarId(100));
        let f1 = lineage.add_input(VarId(101));
        let and = lineage.add_and(vec![f0, f1]);
        lineage.set_output(and);

        let mut ann0 = Circuit::new();
        let e0 = ann0.add_input(VarId(0));
        let e1 = ann0.add_input(VarId(1));
        let or = ann0.add_or(vec![e0, e1]);
        ann0.set_output(or);

        let mut ann1 = Circuit::new();
        let e0b = ann1.add_input(VarId(0));
        let not = ann1.add_not(e0b);
        ann1.set_output(not);

        let mut subst = BTreeMap::new();
        subst.insert(VarId(100), ann0);
        subst.insert(VarId(101), ann1);
        let combined = lineage.substitute(&subst).unwrap();

        // Combined formula: (e0 OR e1) AND (NOT e0) ≡ e1 AND NOT e0.
        assert!(combined
            .evaluate(&assignment(&[(0, false), (1, true)]))
            .unwrap());
        assert!(!combined
            .evaluate(&assignment(&[(0, true), (1, true)]))
            .unwrap());
        assert!(!combined
            .evaluate(&assignment(&[(0, false), (1, false)]))
            .unwrap());
        // The fact variables are gone.
        assert!(!combined.variables().contains(&VarId(100)));
        assert!(!combined.variables().contains(&VarId(101)));
    }

    #[test]
    fn substitution_keeps_untouched_variables() {
        let mut lineage = Circuit::new();
        let f0 = lineage.add_input(VarId(100));
        let f1 = lineage.add_input(VarId(101));
        let or = lineage.add_or(vec![f0, f1]);
        lineage.set_output(or);

        let mut ann = Circuit::new();
        let e = ann.add_input(VarId(0));
        ann.set_output(e);

        let mut subst = BTreeMap::new();
        subst.insert(VarId(100), ann);
        let combined = lineage.substitute(&subst).unwrap();
        assert!(combined.variables().contains(&VarId(101)));
        assert!(combined.variables().contains(&VarId(0)));
    }

    #[test]
    fn simplify_folds_constants() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        let x = c.add_input(VarId(0));
        let and = c.add_and(vec![t, x]);
        let f = c.add_const(false);
        let or = c.add_or(vec![and, f]);
        c.set_output(or);
        let s = c.simplify().unwrap();
        // Should reduce to just the input gate x0 (possibly plus nothing else).
        assert!(s.len() <= 2, "got {} gates", s.len());
        assert!(s.evaluate(&assignment(&[(0, true)])).unwrap());
        assert!(!s.evaluate(&assignment(&[(0, false)])).unwrap());
    }

    #[test]
    fn simplify_preserves_semantics_on_sample() {
        let c = sample_circuit();
        let s = c.simplify().unwrap();
        for bits in 0..8u32 {
            let asg = assignment(&[(0, bits & 1 != 0), (1, bits & 2 != 0), (2, bits & 4 != 0)]);
            assert_eq!(c.evaluate(&asg).unwrap(), s.evaluate(&asg).unwrap());
        }
    }

    #[test]
    fn simplify_constant_output() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let nx = c.add_not(x);
        let and = c.add_and(vec![x, nx]);
        // x AND NOT x is not folded (we only fold constants), but OR with true is.
        let t = c.add_const(true);
        let or = c.add_or(vec![and, t]);
        c.set_output(or);
        let s = c.simplify().unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.evaluate(&assignment(&[(0, false)])).unwrap());
    }
}
