//! Compiled sweep plans: the message-passing dynamic program flattened into
//! dense tables and precomputed bit permutations.
//!
//! The interpreted sweep in [`crate::wmc`] re-derives everything per run and
//! per node: bag index vectors, constraint scopes, mask projections (linear
//! scans over the bag per table entry) and per-variable weights (a `BTreeMap`
//! lookup in the innermost Forget loop), with a freshly allocated
//! `HashMap<u64, f64>` per node. All of that is *structural* — it depends
//! only on the circuit and its nice decomposition, never on the weights — so
//! a [`SweepPlan`] computes it once per compiled circuit:
//!
//! * **Bag layouts** — every bag is kept sorted, so an introduce/forget is an
//!   *insert-at/remove-at* position and the child-mask → parent-mask
//!   permutation collapses to a split-shift (`low bits stay, high bits shift
//!   by one`), precomputed as a mask + shift pair per node.
//! * **Compiled checks** — each gate constraint that becomes checkable at an
//!   introduce node is resolved to in-bag *bit positions* (an AND gate is
//!   `bit(g) == (mask & in_mask) == in_mask`, etc.); no gate or bag lookup
//!   happens during the sweep.
//! * **Forget multipliers** — the weight source of each forgotten gate is
//!   resolved to a dense *variable slot* (or no-op); at sweep start the
//!   [`crate::weights::Weights`] table is resolved once into a flat
//!   `[w_false, w_true]`-per-slot slab.
//! * **Dense tables** — node tables are `Vec<f64>` of length `1 << |bag|`
//!   (bounded by the evaluation-time width budget) indexed directly by the
//!   assignment mask. Table buffers live in a [`SweepArena`] and are
//!   assigned to *slots* by a static liveness analysis at plan-build time,
//!   so repeated evaluations — batch sweeps, weight-only re-evaluation, the
//!   incremental-update revalidation path — allocate nothing in steady
//!   state.
//! * **Scenario lanes** — [`SweepPlan::run_many`] evaluates K weight tables
//!   in a single traversal by widening every table slot to K adjacent `f64`
//!   lanes: the masks, permutations and checks (the expensive, branchy part)
//!   are computed once and amortized over all K scenarios.
//! * **Semiring-generic inner loop** — the per-node op application is
//!   generic over a [`SweepSemiring`] (how alternatives combine):
//!   [`SumProduct`] is weighted model counting, [`MaxProduct`] is the
//!   Viterbi sweep behind most-probable-world queries.
//! * **Table retention & backward permutations** — posterior inference
//!   needs more than the root total: [`SweepPlan::run_retained`] keeps
//!   every node table alive, [`SweepPlan::marginal_numerators`] runs the
//!   backward (outward) sweep over them — inverting each forward
//!   split-shift permutation — to produce *all* per-variable marginals in
//!   one reverse traversal, and [`SweepPlan::descend`] decodes concrete
//!   worlds top-down (stochastic for exact sampling, argmax for MPE). The
//!   `stuc-infer` crate builds its subsystem on these three.
//!
//! The interpreted HashMap sweep remains in [`crate::wmc`] as the reference
//! implementation; differential tests assert agreement within 1e-9.

use crate::circuit::{Circuit, CircuitError, Gate, GateId, VarId};
use crate::weights::Weights;
use crate::wmc::WmcError;
use std::collections::HashMap;
use stuc_graph::nice::{NiceDecomposition, NiceNodeKind};

/// The scalar semiring one dense sweep runs in. Multiplication is always
/// `f64` product (joint weights compose multiplicatively in both tasks);
/// what varies is how *alternative* partial assignments combine: summing
/// yields weighted model counting, taking the maximum yields max-product
/// (Viterbi) sweeps for most-probable-world queries. Zero (`0.0`) is the
/// annihilator and additive identity of both instances — which is what lets
/// the sweep's zero-entry skipping stay valid for either — so only the
/// combine operation is abstracted.
pub trait SweepSemiring {
    /// Stable name for reports and diagnostics.
    const NAME: &'static str;
    /// `⊕`: folds two alternative partial-assignment weights into one
    /// (`+` for sum-product, `max` for max-product).
    fn combine(a: f64, b: f64) -> f64;
}

/// Sum-product instance: alternatives add. The WMC semiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumProduct;

impl SweepSemiring for SumProduct {
    const NAME: &'static str = "sum-product";
    #[inline(always)]
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Max-product instance: alternatives keep the heavier branch. Running the
/// sweep in this semiring computes the weight of the single most probable
/// consistent assignment (the MPE value); a [`SweepPlan::descend`] over the
/// retained tables with an argmax chooser recovers the assignment itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxProduct;

impl SweepSemiring for MaxProduct {
    const NAME: &'static str = "max-product";
    #[inline(always)]
    fn combine(a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

/// Largest bag size a plan will compile dense tables for. The binding
/// constraint is memory, not mask width (`u64` masks only overflow at 64):
/// a dense table holds `8 << bag` bytes per lane, so bag 25 already costs
/// 256 MiB per live slot. Wider circuits fall back to the interpreted
/// sparse sweep, whose memory is proportional to the *reachable* entries.
pub const MAX_PLANNED_BAG: usize = 25;

/// One compiled gate constraint, resolved to in-bag bit positions. A mask
/// `m` satisfies the check iff the recorded relation holds between the
/// gate's own bit and its input bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledCheck {
    /// The designated output gate must be true.
    OutputTrue { bit: u64 },
    /// A constant gate must carry its constant.
    ConstGate { bit: u64, value: bool },
    /// `bit(g) == !bit(x)`.
    NotGate { out: u64, input: u64 },
    /// `bit(g) == ((m & in_mask) == in_mask)` (empty AND is true).
    AndGate { out: u64, in_mask: u64 },
    /// `bit(g) == ((m & in_mask) != 0)` (empty OR is false).
    OrGate { out: u64, in_mask: u64 },
}

impl CompiledCheck {
    #[inline(always)]
    fn passes(self, mask: u64) -> bool {
        match self {
            CompiledCheck::OutputTrue { bit } => mask & bit != 0,
            CompiledCheck::ConstGate { bit, value } => (mask & bit != 0) == value,
            CompiledCheck::NotGate { out, input } => (mask & out != 0) == (mask & input == 0),
            CompiledCheck::AndGate { out, in_mask } => {
                (mask & out != 0) == (mask & in_mask == in_mask)
            }
            CompiledCheck::OrGate { out, in_mask } => (mask & out != 0) == (mask & in_mask != 0),
        }
    }
}

/// The compiled form of one nice-decomposition node.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Empty bag; the single table entry is 1.
    Leaf,
    /// Insert the introduced gate's bit at `intro_pos` (split-shift
    /// permutation) and filter by the checks in
    /// `checks[checks_start..checks_start + checks_len]`.
    Introduce {
        child: usize,
        /// Bits strictly below the introduced position keep their place.
        low_mask: u64,
        intro_pos: u32,
        checks_start: u32,
        checks_len: u32,
    },
    /// Remove the bit at `forget_pos` (inverse split-shift), multiplying
    /// each entry by the forgotten gate's weight from `multiplier_slot`.
    Forget {
        child: usize,
        low_mask: u64,
        forget_pos: u32,
        /// Dense variable slot of the forgotten input gate, or `u32::MAX`
        /// for non-input gates (multiplier 1).
        multiplier_slot: u32,
    },
    /// Pointwise product of two identical-bag children.
    Join { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct PlanNode {
    op: PlanOp,
    /// `1 << |bag|`: the dense table length at lane width 1.
    table_len: usize,
    /// Arena slot this node's table lives in (slots are reused once the
    /// parent has consumed a table — static liveness analysis).
    slot: u32,
}

/// A reusable scratch buffer for [`SweepPlan`] evaluations: one dense table
/// buffer per plan slot plus the resolved weight slab. In steady state
/// (repeated evaluation of the same plan at the same lane width) no buffer
/// ever grows, so sweeps allocate nothing; [`SweepArena::allocations`]
/// counts how many buffers had to grow, which
/// [`crate::wmc::WmcReport::table_allocations`] surfaces per run.
#[derive(Debug, Default)]
pub struct SweepArena {
    slots: Vec<Vec<f64>>,
    slab: Vec<f64>,
    allocations: usize,
}

impl SweepArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        SweepArena::default()
    }

    /// Total table (re)allocations performed since the arena was created.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Ensures slot `index` holds a zeroed buffer of at least `len`,
    /// counting an allocation when its capacity must grow.
    fn take_zeroed(&mut self, index: usize, len: usize) -> Vec<f64> {
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, Vec::new);
        }
        let mut buffer = std::mem::take(&mut self.slots[index]);
        if buffer.capacity() < len {
            self.allocations += 1;
            buffer = Vec::with_capacity(len);
        }
        buffer.clear();
        buffer.resize(len, 0.0);
        buffer
    }

    fn put_back(&mut self, index: usize, buffer: Vec<f64>) {
        self.slots[index] = buffer;
    }
}

/// The message-passing sweep of one compiled circuit, flattened into dense
/// tables, precomputed permutations and compiled checks. Built once per
/// `(circuit, nice decomposition)` pair; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    nodes: Vec<PlanNode>,
    checks: Vec<CompiledCheck>,
    root: usize,
    /// `(bit position, variable slot)` of every input gate still present in
    /// the root bag; their weights are multiplied in at the final sum.
    root_inputs: Vec<(u32, u32)>,
    /// Slot → event variable; the weight slab is laid out in slot order.
    var_of_slot: Vec<VarId>,
    /// Number of distinct arena slots the static allocation uses.
    slot_count: usize,
}

impl SweepPlan {
    /// Compiles the sweep over `nice` (a nice decomposition of the circuit
    /// graph of `circuit`, which must be prepared: deduplicated inputs,
    /// fan-in ≤ 2). Fails with [`WmcError::WidthTooLarge`] when some bag
    /// exceeds [`MAX_PLANNED_BAG`] (dense tables would overflow).
    pub fn build(
        circuit: &Circuit,
        nice: &NiceDecomposition,
        output_gate: usize,
    ) -> Result<SweepPlan, WmcError> {
        stuc_fault::failpoint!("circuit-plan-build", WmcError::Fault);
        let max_bag = nice.max_bag_len();
        if max_bag > MAX_PLANNED_BAG {
            return Err(WmcError::WidthTooLarge {
                width: max_bag.saturating_sub(1),
                limit: MAX_PLANNED_BAG,
            });
        }

        // Dense variable slots for every input gate of the circuit.
        let mut slot_of_var: HashMap<VarId, u32> = HashMap::new();
        let mut var_of_slot: Vec<VarId> = Vec::new();
        for (_, gate) in circuit.iter() {
            if let Gate::Input(v) = gate {
                slot_of_var.entry(*v).or_insert_with(|| {
                    var_of_slot.push(*v);
                    (var_of_slot.len() - 1) as u32
                });
            }
        }

        let mut nodes: Vec<PlanNode> = Vec::with_capacity(nice.len());
        let mut checks: Vec<CompiledCheck> = Vec::new();
        // Sorted bag layouts, kept only during the build.
        let mut bags: Vec<Vec<usize>> = Vec::with_capacity(nice.len());
        // Static slot allocation: each table is consumed by exactly one
        // parent, so freeing the child slots after assigning the parent's
        // keeps the live-slot count at the sweep's actual peak.
        let mut free_slots: Vec<u32> = Vec::new();
        let mut slot_count = 0u32;
        let mut alloc_slot = |free: &mut Vec<u32>| -> u32 {
            free.pop().unwrap_or_else(|| {
                slot_count += 1;
                slot_count - 1
            })
        };

        let mut gate = stuc_fault::budget::Gate::every(64);
        for (idx, node) in nice.iter_bottom_up() {
            gate.check("sweep plan build")?;
            let bag = node.bag_indices();
            let op = match &node.kind {
                NiceNodeKind::Leaf => PlanOp::Leaf,
                NiceNodeKind::Introduce { vertex, child } => {
                    let v = vertex.index();
                    let intro_pos =
                        bag.iter()
                            .position(|&g| g == v)
                            .expect("introduced gate in bag") as u32;
                    let checks_start = checks.len() as u32;
                    compile_checks(circuit, &bag, v, output_gate, &mut checks);
                    PlanOp::Introduce {
                        child: *child,
                        low_mask: (1u64 << intro_pos) - 1,
                        intro_pos,
                        checks_start,
                        checks_len: checks.len() as u32 - checks_start,
                    }
                }
                NiceNodeKind::Forget { vertex, child } => {
                    let v = vertex.index();
                    let forget_pos = bags[*child]
                        .iter()
                        .position(|&g| g == v)
                        .expect("forgotten gate in child bag")
                        as u32;
                    let multiplier_slot = match circuit.gate(GateId(v)) {
                        Gate::Input(var) => slot_of_var[var],
                        _ => u32::MAX,
                    };
                    PlanOp::Forget {
                        child: *child,
                        low_mask: (1u64 << forget_pos) - 1,
                        forget_pos,
                        multiplier_slot,
                    }
                }
                NiceNodeKind::Join { left, right } => PlanOp::Join {
                    left: *left,
                    right: *right,
                },
            };
            // Allocate this node's slot first, then release the consumed
            // children: a child buffer is read while the parent is written,
            // so they must never share a slot.
            let slot = alloc_slot(&mut free_slots);
            match &op {
                PlanOp::Leaf => {}
                PlanOp::Introduce { child, .. } | PlanOp::Forget { child, .. } => {
                    free_slots.push(nodes[*child].slot);
                }
                PlanOp::Join { left, right } => {
                    free_slots.push(nodes[*left].slot);
                    free_slots.push(nodes[*right].slot);
                }
            }
            nodes.push(PlanNode {
                op,
                table_len: 1usize << bag.len(),
                slot,
            });
            bags.push(bag);
            debug_assert_eq!(nodes.len(), idx + 1);
        }

        let root = nice.root();
        let mut root_inputs = Vec::new();
        for (pos, &g) in bags[root].iter().enumerate() {
            if let Gate::Input(var) = circuit.gate(GateId(g)) {
                root_inputs.push((pos as u32, slot_of_var[var]));
            }
        }

        Ok(SweepPlan {
            nodes,
            checks,
            root,
            root_inputs,
            var_of_slot,
            slot_count: slot_count as usize,
        })
    }

    /// Number of nice nodes the plan sweeps over.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no nodes (never the case for built plans).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct table buffers the static slot allocation needs —
    /// the sweep's peak number of simultaneously live tables.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Total dense table entries across every node of the sweep (the sum of
    /// `1 << |bag|`) — the work one single-lane sweep performs, and the
    /// number EXPLAIN reports as the plan's table volume.
    pub fn table_entry_count(&self) -> usize {
        self.nodes.iter().map(|node| node.table_len).sum()
    }

    /// Resolves `weights` into the dense `[w_false, w_true]`-per-slot slab,
    /// laid out lane-major: `slab[(slot * 2 + value) * lanes + lane]`.
    fn fill_slab(
        &self,
        scenarios: &[&Weights],
        arena: &mut SweepArena,
    ) -> Result<(), CircuitError> {
        let lanes = scenarios.len();
        let len = self.var_of_slot.len() * 2 * lanes;
        if arena.slab.capacity() < len {
            arena.allocations += 1;
        }
        arena.slab.clear();
        arena.slab.resize(len, 0.0);
        for (slot, &var) in self.var_of_slot.iter().enumerate() {
            for (lane, weights) in scenarios.iter().enumerate() {
                let [w_false, w_true] = weights.pair(var)?;
                arena.slab[(slot * 2) * lanes + lane] = w_false;
                arena.slab[(slot * 2 + 1) * lanes + lane] = w_true;
            }
        }
        Ok(())
    }

    /// Runs the planned sweep under one weight table, reusing `arena`'s
    /// buffers. Equivalent to the interpreted
    /// [`crate::wmc`] message passing, within floating-point association.
    pub fn run(&self, weights: &Weights, arena: &mut SweepArena) -> Result<f64, WmcError> {
        self.run_in::<SumProduct>(weights, arena)
    }

    /// Runs the planned sweep in an arbitrary [`SweepSemiring`] — the same
    /// dense tables, permutations and compiled checks, with only the
    /// alternative-combining operation swapped. [`SumProduct`] recovers
    /// [`SweepPlan::run`] exactly; [`MaxProduct`] computes the weight of the
    /// most probable consistent assignment instead of the probability mass.
    pub fn run_in<S: SweepSemiring>(
        &self,
        weights: &Weights,
        arena: &mut SweepArena,
    ) -> Result<f64, WmcError> {
        stuc_fault::failpoint!("circuit-sweep", WmcError::Fault);
        // One unconditional poll per sweep: tiny circuits never reach the
        // gated in-loop checks, yet time may already have been spent (e.g.
        // a sleeping failpoint above) — without this, a tripped deadline on
        // a 3-gate sweep would go unnoticed and the request would succeed.
        stuc_fault::budget::check("circuit sweep")?;
        self.fill_slab(&[weights], arena)?;
        let mut total = 0.0f64;
        let mut gate = stuc_fault::budget::Gate::every(256);
        for (idx, node) in self.nodes.iter().enumerate() {
            gate.check("circuit sweep")?;
            let mut table = arena.take_zeroed(node.slot as usize, node.table_len);
            match node.op {
                PlanOp::Leaf => table[0] = 1.0,
                PlanOp::Introduce { child, .. } | PlanOp::Forget { child, .. } => {
                    let child_table = &arena.slots[self.nodes[child].slot as usize];
                    self.apply_unary::<S>(
                        &node.op,
                        &child_table[..self.nodes[child].table_len],
                        &mut table,
                        &arena.slab,
                    );
                }
                PlanOp::Join { left, right } => {
                    let left_table = &arena.slots[self.nodes[left].slot as usize];
                    let right_table = &arena.slots[self.nodes[right].slot as usize];
                    for (slot, (l, r)) in table
                        .iter_mut()
                        .zip(left_table.iter().zip(right_table.iter()))
                    {
                        *slot = l * r;
                    }
                }
            }
            if idx == self.root {
                for (mask, &weight) in table.iter().enumerate() {
                    if weight == 0.0 {
                        continue;
                    }
                    let mut w = weight;
                    for &(pos, slot) in &self.root_inputs {
                        let value = (mask as u64 >> pos) & 1;
                        w *= arena.slab[slot as usize * 2 + value as usize];
                    }
                    total = S::combine(total, w);
                }
            }
            arena.put_back(node.slot as usize, table);
        }
        Ok(total)
    }

    /// The shared single-lane inner loop of the planned sweep: applies one
    /// Introduce/Forget op to a child table, generic over the semiring.
    /// Reused by the arena-slot sweep ([`SweepPlan::run_in`]) and the
    /// table-retaining sweep ([`SweepPlan::run_retained`]).
    fn apply_unary<S: SweepSemiring>(
        &self,
        op: &PlanOp,
        child_table: &[f64],
        table: &mut [f64],
        slab: &[f64],
    ) {
        match *op {
            PlanOp::Introduce {
                low_mask,
                intro_pos,
                checks_start,
                checks_len,
                ..
            } => {
                let checks =
                    &self.checks[checks_start as usize..(checks_start + checks_len) as usize];
                for (child_mask, &weight) in child_table.iter().enumerate() {
                    if weight == 0.0 {
                        continue;
                    }
                    let child_mask = child_mask as u64;
                    let base = (child_mask & low_mask) | ((child_mask & !low_mask) << 1);
                    for value in 0u64..2 {
                        let mask = base | (value << intro_pos);
                        if checks.iter().all(|c| c.passes(mask)) {
                            // Child masks map to disjoint parent masks, so a
                            // plain store needs no semiring combine.
                            table[mask as usize] = weight;
                        }
                    }
                }
            }
            PlanOp::Forget {
                low_mask,
                forget_pos,
                multiplier_slot,
                ..
            } => {
                let (w_false, w_true) = if multiplier_slot == u32::MAX {
                    (1.0, 1.0)
                } else {
                    let base = multiplier_slot as usize * 2;
                    (slab[base], slab[base + 1])
                };
                for (child_mask, &weight) in child_table.iter().enumerate() {
                    if weight == 0.0 {
                        continue;
                    }
                    let child_mask = child_mask as u64;
                    let value = (child_mask >> forget_pos) & 1;
                    let projected = (child_mask & low_mask) | ((child_mask >> 1) & !low_mask);
                    let multiplier = if value == 0 { w_false } else { w_true };
                    table[projected as usize] =
                        S::combine(table[projected as usize], weight * multiplier);
                }
            }
            PlanOp::Leaf | PlanOp::Join { .. } => unreachable!("apply_unary takes unary ops"),
        }
    }

    /// Runs the planned sweep for K weight tables in a **single traversal**:
    /// every table slot is widened to K adjacent `f64` lanes, so the mask
    /// permutations and constraint checks (the branchy part of the sweep)
    /// are computed once and shared by all K scenarios. Returns one
    /// probability per scenario, in input order; each lane's arithmetic is
    /// performed in exactly the same order as [`SweepPlan::run`], so the
    /// results are bitwise identical to K separate runs.
    pub fn run_many(
        &self,
        scenarios: &[&Weights],
        arena: &mut SweepArena,
    ) -> Result<Vec<f64>, WmcError> {
        let lanes = scenarios.len();
        if lanes == 0 {
            return Ok(Vec::new());
        }
        stuc_fault::failpoint!("circuit-sweep", WmcError::Fault);
        // See `run_in`: small circuits must still poll the budget once.
        stuc_fault::budget::check("circuit sweep")?;
        self.fill_slab(scenarios, arena)?;
        let mut totals = vec![0.0f64; lanes];
        let mut gate = stuc_fault::budget::Gate::every(256);
        for (idx, node) in self.nodes.iter().enumerate() {
            gate.check("circuit sweep")?;
            let mut table = arena.take_zeroed(node.slot as usize, node.table_len * lanes);
            match node.op {
                PlanOp::Leaf => table[..lanes].fill(1.0),
                PlanOp::Introduce {
                    child,
                    low_mask,
                    intro_pos,
                    checks_start,
                    checks_len,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    let checks =
                        &self.checks[checks_start as usize..(checks_start + checks_len) as usize];
                    for (child_mask, source) in child_table[..child_node.table_len * lanes]
                        .chunks_exact(lanes)
                        .enumerate()
                    {
                        if source.iter().all(|&w| w == 0.0) {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let base = (child_mask & low_mask) | ((child_mask & !low_mask) << 1);
                        for value in 0u64..2 {
                            let mask = base | (value << intro_pos);
                            if checks.iter().all(|c| c.passes(mask)) {
                                table[mask as usize * lanes..(mask as usize + 1) * lanes]
                                    .copy_from_slice(source);
                            }
                        }
                    }
                }
                PlanOp::Forget {
                    child,
                    low_mask,
                    forget_pos,
                    multiplier_slot,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    for (child_mask, source) in child_table[..child_node.table_len * lanes]
                        .chunks_exact(lanes)
                        .enumerate()
                    {
                        if source.iter().all(|&w| w == 0.0) {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let value = (child_mask >> forget_pos) & 1;
                        let projected = (child_mask & low_mask) | ((child_mask >> 1) & !low_mask);
                        let target = &mut table
                            [projected as usize * lanes..(projected as usize + 1) * lanes];
                        if multiplier_slot == u32::MAX {
                            for (t, &s) in target.iter_mut().zip(source) {
                                *t += s * 1.0;
                            }
                        } else {
                            let base = (multiplier_slot as usize * 2 + value as usize) * lanes;
                            let multipliers = &arena.slab[base..base + lanes];
                            for ((t, &s), &m) in target.iter_mut().zip(source).zip(multipliers) {
                                *t += s * m;
                            }
                        }
                    }
                }
                PlanOp::Join { left, right } => {
                    let left_table = &arena.slots[self.nodes[left].slot as usize];
                    let right_table = &arena.slots[self.nodes[right].slot as usize];
                    for (slot, (l, r)) in table
                        .iter_mut()
                        .zip(left_table.iter().zip(right_table.iter()))
                    {
                        *slot = l * r;
                    }
                }
            }
            if idx == self.root {
                for (mask, source) in table.chunks_exact(lanes).enumerate() {
                    if source.iter().all(|&w| w == 0.0) {
                        continue;
                    }
                    for (lane, total) in totals.iter_mut().enumerate() {
                        let mut w = source[lane];
                        if w == 0.0 {
                            continue;
                        }
                        for &(pos, slot) in &self.root_inputs {
                            let value = (mask as u64 >> pos) & 1;
                            w *= arena.slab[(slot as usize * 2 + value as usize) * lanes + lane];
                        }
                        *total += w;
                    }
                }
            }
            arena.put_back(node.slot as usize, table);
        }
        Ok(totals)
    }

    /// Resolves `weights` into a standalone `[w_false, w_true]`-per-slot
    /// slab (the non-arena twin of `fill_slab`, for retained sweeps whose
    /// tables outlive any arena).
    fn slab_for(&self, weights: &Weights) -> Result<Vec<f64>, CircuitError> {
        let mut slab = vec![0.0; self.var_of_slot.len() * 2];
        for (slot, &var) in self.var_of_slot.iter().enumerate() {
            let [w_false, w_true] = weights.pair(var)?;
            slab[slot * 2] = w_false;
            slab[slot * 2 + 1] = w_true;
        }
        Ok(slab)
    }

    /// Runs the upward sweep in semiring `S`, **retaining every node table**
    /// instead of recycling arena slots — the table-retention mode that
    /// posterior inference builds on. The retained tables are what a
    /// backward pass ([`SweepPlan::marginal_numerators`]) or a top-down
    /// stochastic/argmax descent ([`SweepPlan::descend`]) consumes; plain
    /// probability queries should keep using [`SweepPlan::run`], which
    /// holds only the peak-live tables.
    ///
    /// Memory is one dense table per nice node (`8 << |bag|` bytes each)
    /// plus the weight slab, reported by [`RetainedSweep::table_entries`].
    pub fn run_retained<S: SweepSemiring>(
        &self,
        weights: &Weights,
    ) -> Result<RetainedSweep, WmcError> {
        // See `run_in`: small circuits must still poll the budget once.
        stuc_fault::budget::check("circuit sweep")?;
        let slab = self.slab_for(weights)?;
        let mut tables: Vec<Vec<f64>> = Vec::with_capacity(self.nodes.len());
        let mut value = 0.0f64;
        let mut gate = stuc_fault::budget::Gate::every(256);
        for (idx, node) in self.nodes.iter().enumerate() {
            gate.check("circuit sweep")?;
            let mut table = vec![0.0f64; node.table_len];
            match node.op {
                PlanOp::Leaf => table[0] = 1.0,
                PlanOp::Introduce { child, .. } | PlanOp::Forget { child, .. } => {
                    self.apply_unary::<S>(&node.op, &tables[child], &mut table, &slab);
                }
                PlanOp::Join { left, right } => {
                    for (slot, (l, r)) in table
                        .iter_mut()
                        .zip(tables[left].iter().zip(tables[right].iter()))
                    {
                        *slot = l * r;
                    }
                }
            }
            if idx == self.root {
                for (mask, &weight) in table.iter().enumerate() {
                    if weight == 0.0 {
                        continue;
                    }
                    let mut w = weight;
                    for &(pos, slot) in &self.root_inputs {
                        let bit = (mask as u64 >> pos) & 1;
                        w *= slab[slot as usize * 2 + bit as usize];
                    }
                    value = S::combine(value, w);
                }
            }
            tables.push(table);
        }
        Ok(RetainedSweep {
            tables,
            slab,
            value,
        })
    }

    /// The backward (outward) sweep: given the retained tables of a
    /// **sum-product** upward sweep, computes in one reverse traversal the
    /// unnormalised marginal `Σ_{worlds ⊨ φ, v true} weight(world)` of
    /// *every* input variable at once, paired with the variable. Dividing
    /// by [`RetainedSweep::value`] (the evidence mass `Z`) yields
    /// `P(v | φ)` — n marginals for the price of ~two sweeps instead of n
    /// conditioned re-evaluations.
    ///
    /// For each node the pass maintains the downward table `D` (the
    /// weight of everything *outside* the node's subtree, per bag mask),
    /// the mirror of the retained upward table `U`; the invariant
    /// `Σ_m U[m]·D[m] = Z` holds at every node, and at the unique place
    /// where an input gate leaves scope — its Forget edge, or the root bag —
    /// the restriction of that sum to masks with the gate's bit set is
    /// exactly the variable's numerator.
    ///
    /// # Panics
    ///
    /// Panics if `retained` was produced by a different plan (table count
    /// mismatch). Results are meaningless (not unsafe) if it was produced
    /// by a max-product sweep.
    pub fn marginal_numerators(&self, retained: &RetainedSweep) -> Vec<(VarId, f64)> {
        assert_eq!(
            retained.tables.len(),
            self.nodes.len(),
            "retained sweep belongs to a different plan"
        );
        let slab = &retained.slab;
        let mut numerators = vec![0.0f64; self.var_of_slot.len()];
        let mut down: Vec<Vec<f64>> = vec![Vec::new(); self.nodes.len()];

        // Seed the root: D is the product of the root-bag input weights.
        let root_len = self.nodes[self.root].table_len;
        let mut d_root = vec![1.0f64; root_len];
        for (mask, d) in d_root.iter_mut().enumerate() {
            for &(pos, slot) in &self.root_inputs {
                let bit = (mask as u64 >> pos) & 1;
                *d *= slab[slot as usize * 2 + bit as usize];
            }
        }
        for &(pos, slot) in &self.root_inputs {
            let mut numerator = 0.0;
            for (mask, (&u, &d)) in retained.tables[self.root].iter().zip(&d_root).enumerate() {
                if (mask >> pos) & 1 == 1 {
                    numerator += u * d;
                }
            }
            numerators[slot as usize] = numerator;
        }
        down[self.root] = d_root;

        // Reverse traversal: parents have larger indices than children, so a
        // descending scan sees every node's D before its children need it.
        for idx in (0..self.nodes.len()).rev() {
            let d_here = std::mem::take(&mut down[idx]);
            if d_here.is_empty() {
                continue; // not reachable from the root (never for built plans)
            }
            match self.nodes[idx].op {
                PlanOp::Leaf => {}
                PlanOp::Introduce {
                    child,
                    low_mask,
                    intro_pos: _,
                    checks_start,
                    checks_len,
                } => {
                    let checks =
                        &self.checks[checks_start as usize..(checks_start + checks_len) as usize];
                    let mut d_child = vec![0.0f64; self.nodes[child].table_len];
                    for (mask, &d) in d_here.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        let mask = mask as u64;
                        if checks.iter().all(|c| c.passes(mask)) {
                            let projected = (mask & low_mask) | ((mask >> 1) & !low_mask);
                            d_child[projected as usize] += d;
                        }
                    }
                    down[child] = d_child;
                }
                PlanOp::Forget {
                    child,
                    low_mask,
                    forget_pos,
                    multiplier_slot,
                } => {
                    let mut d_child = vec![0.0f64; self.nodes[child].table_len];
                    for (child_mask, d) in d_child.iter_mut().enumerate() {
                        let child_mask = child_mask as u64;
                        let value = (child_mask >> forget_pos) & 1;
                        let projected = (child_mask & low_mask) | ((child_mask >> 1) & !low_mask);
                        let multiplier = if multiplier_slot == u32::MAX {
                            1.0
                        } else {
                            slab[multiplier_slot as usize * 2 + value as usize]
                        };
                        *d = multiplier * d_here[projected as usize];
                    }
                    if multiplier_slot != u32::MAX {
                        let mut numerator = 0.0;
                        for (child_mask, (&u, &d)) in
                            retained.tables[child].iter().zip(&d_child).enumerate()
                        {
                            if (child_mask >> forget_pos) & 1 == 1 {
                                numerator += u * d;
                            }
                        }
                        numerators[multiplier_slot as usize] = numerator;
                    }
                    down[child] = d_child;
                }
                PlanOp::Join { left, right } => {
                    let u_left = &retained.tables[left];
                    let u_right = &retained.tables[right];
                    let mut d_left = vec![0.0f64; u_left.len()];
                    let mut d_right = vec![0.0f64; u_right.len()];
                    for (mask, &d) in d_here.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        d_left[mask] = u_right[mask] * d;
                        d_right[mask] = u_left[mask] * d;
                    }
                    down[left] = d_left;
                    down[right] = d_right;
                }
            }
        }

        self.var_of_slot.iter().copied().zip(numerators).collect()
    }

    /// Top-down descent through the retained tables, decoding one concrete
    /// assignment of every input variable. At the root, `choose` picks a
    /// bag mask from the full weighted root table; at every Forget edge it
    /// picks the forgotten gate's value from the two branch weights. The
    /// weights handed to `choose` are unnormalised and non-negative, and
    /// whenever their sum is positive at the root it stays positive at
    /// every later choice point, so a chooser that only ever selects a
    /// positive-weight index decodes a consistent, query-satisfying world.
    ///
    /// Two choosers give the two inference modes:
    /// * a weighted random draw over sum-product tables samples worlds
    ///   exactly proportional to their probability (conditioned on the
    ///   output being true);
    /// * an argmax over max-product tables decodes the most probable world
    ///   (the Viterbi backtrace).
    ///
    /// Returns the `(variable, value)` assignment in slot order.
    ///
    /// Repeated descents over one retained sweep (a sampler drawing many
    /// worlds) should precompute [`SweepPlan::weighted_root_table`] once
    /// and call [`SweepPlan::descend_with_root`]; this convenience wrapper
    /// rebuilds the weighted root table per call.
    ///
    /// # Panics
    ///
    /// Panics if `retained` was produced by a different plan, or if
    /// `choose` returns an out-of-range index.
    pub fn descend(
        &self,
        retained: &RetainedSweep,
        choose: &mut dyn FnMut(&[f64]) -> usize,
    ) -> Vec<(VarId, bool)> {
        let weighted = self.weighted_root_table(retained);
        self.descend_with_root(retained, &weighted, choose)
    }

    /// The root table with the root-bag input weights multiplied in — the
    /// distribution the descent's root choice is made over. Depends only on
    /// the retained sweep, so callers descending many times compute it
    /// once.
    pub fn weighted_root_table(&self, retained: &RetainedSweep) -> Vec<f64> {
        assert_eq!(
            retained.tables.len(),
            self.nodes.len(),
            "retained sweep belongs to a different plan"
        );
        let slab = &retained.slab;
        retained.tables[self.root]
            .iter()
            .enumerate()
            .map(|(mask, &u)| {
                let mut w = u;
                for &(pos, slot) in &self.root_inputs {
                    let bit = (mask as u64 >> pos) & 1;
                    w *= slab[slot as usize * 2 + bit as usize];
                }
                w
            })
            .collect()
    }

    /// [`SweepPlan::descend`] with the weighted root table supplied by the
    /// caller (see [`SweepPlan::weighted_root_table`]): the per-descent
    /// cost is then O(plan nodes), with no per-call root-table rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `retained` or `root_weights` belong to a different plan
    /// (or sweep), or if `choose` returns an out-of-range index.
    pub fn descend_with_root(
        &self,
        retained: &RetainedSweep,
        root_weights: &[f64],
        choose: &mut dyn FnMut(&[f64]) -> usize,
    ) -> Vec<(VarId, bool)> {
        assert_eq!(
            retained.tables.len(),
            self.nodes.len(),
            "retained sweep belongs to a different plan"
        );
        assert_eq!(
            root_weights.len(),
            self.nodes[self.root].table_len,
            "root weights belong to a different plan"
        );
        let slab = &retained.slab;
        let mut values = vec![false; self.var_of_slot.len()];
        let mut masks: Vec<Option<u64>> = vec![None; self.nodes.len()];

        // Root choice over the root-input-weighted table.
        let root_mask = choose(root_weights);
        assert!(root_mask < root_weights.len(), "chooser index out of range");
        let root_mask = root_mask as u64;
        masks[self.root] = Some(root_mask);
        for &(pos, slot) in &self.root_inputs {
            values[slot as usize] = (root_mask >> pos) & 1 == 1;
        }

        for idx in (0..self.nodes.len()).rev() {
            let Some(mask) = masks[idx] else { continue };
            match self.nodes[idx].op {
                PlanOp::Leaf => {}
                PlanOp::Introduce {
                    child, low_mask, ..
                } => {
                    masks[child] = Some((mask & low_mask) | ((mask >> 1) & !low_mask));
                }
                PlanOp::Forget {
                    child,
                    low_mask,
                    forget_pos,
                    multiplier_slot,
                } => {
                    let base = (mask & low_mask) | ((mask & !low_mask) << 1);
                    let child_table = &retained.tables[child];
                    let branch = |value: u64| {
                        let multiplier = if multiplier_slot == u32::MAX {
                            1.0
                        } else {
                            slab[multiplier_slot as usize * 2 + value as usize]
                        };
                        child_table[(base | (value << forget_pos)) as usize] * multiplier
                    };
                    let picked = choose(&[branch(0), branch(1)]);
                    assert!(picked < 2, "chooser index out of range");
                    let picked = picked as u64;
                    masks[child] = Some(base | (picked << forget_pos));
                    if multiplier_slot != u32::MAX {
                        values[multiplier_slot as usize] = picked == 1;
                    }
                }
                PlanOp::Join { left, right } => {
                    masks[left] = Some(mask);
                    masks[right] = Some(mask);
                }
            }
        }

        self.var_of_slot.iter().copied().zip(values).collect()
    }
}

/// The output of a table-retaining sweep ([`SweepPlan::run_retained`]): one
/// dense table per nice node, the resolved weight slab, and the root
/// aggregate (the evidence mass `Z` under [`SumProduct`], the best-world
/// weight under [`MaxProduct`]). Consumed by the backward marginal pass and
/// by top-down descents; must only be used with the plan that produced it.
#[derive(Debug, Clone)]
pub struct RetainedSweep {
    /// Upward message table of every plan node, indexed by node.
    tables: Vec<Vec<f64>>,
    /// `[w_false, w_true]` per variable slot, resolved once at sweep start.
    slab: Vec<f64>,
    /// Root aggregate in the sweep's semiring.
    value: f64,
}

impl RetainedSweep {
    /// The root aggregate: total weight of consistent output-true
    /// assignments (sum-product) or the heaviest one (max-product).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of dense tables kept alive — one per nice node.
    pub fn tables_retained(&self) -> usize {
        self.tables.len()
    }

    /// Total `f64` entries across all retained tables (memory footprint in
    /// units of 8 bytes, slab excluded).
    pub fn table_entries(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }
}

/// Compiles the constraints that become checkable when `introduced` joins
/// `bag`: every gate whose scope (gate + inputs) is contained in the bag and
/// includes the introduced vertex, plus the output-truth requirement. The
/// mirror of `constraints_to_check` in [`crate::wmc`], resolved to bit
/// positions.
fn compile_checks(
    circuit: &Circuit,
    bag: &[usize],
    introduced: usize,
    output_gate: usize,
    out: &mut Vec<CompiledCheck>,
) {
    let bit_of =
        |gate: usize| -> Option<u64> { bag.binary_search(&gate).ok().map(|pos| 1u64 << pos) };
    for &g in bag {
        let gate = circuit.gate(GateId(g));
        if gate.is_leaf() && g != introduced {
            continue;
        }
        let scope_contains_introduced =
            g == introduced || gate.inputs().iter().any(|x| x.0 == introduced);
        if !scope_contains_introduced {
            continue;
        }
        let in_bits = match gate
            .inputs()
            .iter()
            .map(|x| bit_of(x.0))
            .collect::<Option<Vec<u64>>>()
        {
            Some(bits) => bits,
            None => continue, // scope not fully in the bag yet
        };
        let out_bit = bit_of(g).expect("gate is in its own bag");
        let check = match gate {
            Gate::Input(_) => continue, // free variable, no constraint
            Gate::Const(b) => CompiledCheck::ConstGate {
                bit: out_bit,
                value: *b,
            },
            Gate::Not(_) => CompiledCheck::NotGate {
                out: out_bit,
                input: in_bits[0],
            },
            Gate::And(_) => CompiledCheck::AndGate {
                out: out_bit,
                in_mask: in_bits.iter().fold(0, |acc, b| acc | b),
            },
            Gate::Or(_) => CompiledCheck::OrGate {
                out: out_bit,
                in_mask: in_bits.iter().fold(0, |acc, b| acc | b),
            },
        };
        out.push(check);
    }
    if introduced == output_gate {
        out.push(CompiledCheck::OutputTrue {
            bit: bit_of(output_gate).expect("output gate is in the bag"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::wmc::TreewidthWmc;
    use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};

    fn plan_for(circuit: &Circuit) -> (Circuit, SweepPlan) {
        let prepared = TreewidthWmc::prepare(circuit);
        let output = prepared.output().expect("output");
        let graph = TreewidthWmc::circuit_graph(&prepared);
        let td = decompose_with_heuristic(&graph, EliminationHeuristic::MinDegree);
        let nice = NiceDecomposition::from_decomposition(&td);
        let plan = SweepPlan::build(&prepared, &nice, output.index()).expect("plan builds");
        (prepared, plan)
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn planned_sweep_matches_interpreted_sweep() {
        for seed in 0..20 {
            let circuit = builder::random_circuit(10, 18, seed);
            let weights = Weights::uniform(circuit.variables(), 0.4);
            let reference = TreewidthWmc::default()
                .probability(&circuit, &weights)
                .unwrap();
            let (_, plan) = plan_for(&circuit);
            let mut arena = SweepArena::new();
            assert_close(plan.run(&weights, &mut arena).unwrap(), reference);
        }
    }

    #[test]
    fn steady_state_runs_do_not_allocate() {
        let circuit = builder::conjunction_of_disjunctions(6, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let (_, plan) = plan_for(&circuit);
        let mut arena = SweepArena::new();
        let first = plan.run(&weights, &mut arena).unwrap();
        let after_first = arena.allocations();
        assert!(after_first > 0, "first run must populate the arena");
        for _ in 0..5 {
            assert_close(plan.run(&weights, &mut arena).unwrap(), first);
        }
        assert_eq!(
            arena.allocations(),
            after_first,
            "steady-state sweeps must not allocate"
        );
    }

    #[test]
    fn run_many_is_bitwise_identical_to_per_scenario_runs() {
        let circuit = builder::random_circuit(9, 16, 5);
        let scenarios: Vec<Weights> = [0.1, 0.35, 0.5, 0.9]
            .iter()
            .map(|&p| Weights::uniform(circuit.variables(), p))
            .collect();
        let (_, plan) = plan_for(&circuit);
        let mut arena = SweepArena::new();
        let refs: Vec<&Weights> = scenarios.iter().collect();
        let many = plan.run_many(&refs, &mut arena).unwrap();
        for (weights, &lane) in scenarios.iter().zip(&many) {
            let single = plan.run(weights, &mut arena).unwrap();
            assert_eq!(single.to_bits(), lane.to_bits(), "{single} vs {lane}");
        }
    }

    #[test]
    fn run_many_of_zero_scenarios_is_empty() {
        let circuit = builder::xor_chain(4);
        let (_, plan) = plan_for(&circuit);
        assert!(plan
            .run_many(&[], &mut SweepArena::new())
            .unwrap()
            .is_empty());
        assert!(!plan.is_empty());
        assert!(plan.slot_count() >= 1);
        assert!(plan.len() > 1);
    }

    #[test]
    fn retained_sweep_value_matches_arena_run_bitwise() {
        for seed in 0..10 {
            let circuit = builder::random_circuit(8, 14, seed);
            let weights = Weights::uniform(circuit.variables(), 0.45);
            let (_, plan) = plan_for(&circuit);
            let mut arena = SweepArena::new();
            let run = plan.run(&weights, &mut arena).unwrap();
            let retained = plan.run_retained::<SumProduct>(&weights).unwrap();
            assert_eq!(
                run.to_bits(),
                retained.value().to_bits(),
                "retention must not change the arithmetic"
            );
            assert_eq!(retained.tables_retained(), plan.len());
            assert!(retained.table_entries() >= plan.len());
        }
    }

    #[test]
    fn max_product_run_matches_brute_force_best_world() {
        use crate::circuit::VarId as V;
        use std::collections::BTreeMap;
        for seed in 0..12 {
            let circuit = builder::random_circuit(6, 10, seed);
            let vars: Vec<V> = circuit.variables().into_iter().collect();
            let mut weights = Weights::new();
            for (i, &v) in vars.iter().enumerate() {
                weights.set(v, 0.2 + 0.09 * ((seed as usize + i) % 7) as f64);
            }
            let mut best = 0.0f64;
            for mask in 0u64..(1 << vars.len()) {
                let assignment: BTreeMap<V, bool> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (mask >> i) & 1 == 1))
                    .collect();
                if !circuit.evaluate(&assignment).unwrap() {
                    continue;
                }
                let w: f64 = assignment
                    .iter()
                    .map(|(&v, &b)| weights.weight(v, b).unwrap())
                    .product();
                best = best.max(w);
            }
            let (_, plan) = plan_for(&circuit);
            let mpe = plan
                .run_in::<MaxProduct>(&weights, &mut SweepArena::new())
                .unwrap();
            assert_close(mpe, best);
            // The retained max-product sweep agrees, and an argmax descent
            // decodes a world of exactly that weight.
            let retained = plan.run_retained::<MaxProduct>(&weights).unwrap();
            assert_close(retained.value(), best);
            if best > 0.0 {
                let mut argmax = |ws: &[f64]| {
                    let mut top = 0;
                    for (i, &w) in ws.iter().enumerate() {
                        if w > ws[top] {
                            top = i;
                        }
                    }
                    top
                };
                let decoded = plan.descend(&retained, &mut argmax);
                let w: f64 = decoded
                    .iter()
                    .map(|&(v, b)| weights.weight(v, b).unwrap())
                    .product();
                assert_close(w, best);
                let assignment: BTreeMap<V, bool> = decoded.into_iter().collect();
                assert!(circuit.evaluate(&assignment).unwrap());
            }
        }
    }

    #[test]
    fn backward_pass_numerators_match_conditioned_sweeps() {
        for seed in 0..10 {
            let circuit = builder::random_circuit(7, 12, seed);
            let weights = Weights::uniform(circuit.variables(), 0.4);
            let (_, plan) = plan_for(&circuit);
            let retained = plan.run_retained::<SumProduct>(&weights).unwrap();
            let numerators = plan.marginal_numerators(&retained);
            assert_eq!(numerators.len(), circuit.variables().len());
            let mut arena = SweepArena::new();
            for (v, numerator) in numerators {
                // Conditioned reference: fix v true (weight 1) and scale by
                // its prior.
                let prior = weights.weight(v, true).unwrap();
                let mut fixed = weights.clone();
                fixed.fix(v, true);
                let conditioned = plan.run(&fixed, &mut arena).unwrap();
                assert_close(numerator, prior * conditioned);
            }
        }
    }

    #[test]
    fn missing_weight_is_reported() {
        let circuit = builder::xor_chain(3);
        let (_, plan) = plan_for(&circuit);
        let result = plan.run(&Weights::new(), &mut SweepArena::new());
        assert!(matches!(
            result,
            Err(WmcError::Circuit(CircuitError::UnassignedVariable(_)))
        ));
    }

    #[test]
    fn oversized_bags_are_refused() {
        // A fake decomposition with a single giant bag trips the guard.
        use stuc_graph::graph::VertexId;
        use stuc_graph::TreeDecomposition;
        let n = MAX_PLANNED_BAG + 2;
        let mut circuit = Circuit::new();
        let inputs: Vec<GateId> = (0..n).map(|i| circuit.add_input(VarId(i))).collect();
        let out = *inputs.last().unwrap();
        circuit.set_output(out);
        let mut td = TreeDecomposition::new();
        td.add_bag((0..n).map(VertexId));
        let nice = NiceDecomposition::from_decomposition(&td);
        assert!(matches!(
            SweepPlan::build(&circuit, &nice, out.index()),
            Err(WmcError::WidthTooLarge { .. })
        ));
    }
}
