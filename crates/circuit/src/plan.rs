//! Compiled sweep plans: the message-passing dynamic program flattened into
//! dense tables and precomputed bit permutations.
//!
//! The interpreted sweep in [`crate::wmc`] re-derives everything per run and
//! per node: bag index vectors, constraint scopes, mask projections (linear
//! scans over the bag per table entry) and per-variable weights (a `BTreeMap`
//! lookup in the innermost Forget loop), with a freshly allocated
//! `HashMap<u64, f64>` per node. All of that is *structural* — it depends
//! only on the circuit and its nice decomposition, never on the weights — so
//! a [`SweepPlan`] computes it once per compiled circuit:
//!
//! * **Bag layouts** — every bag is kept sorted, so an introduce/forget is an
//!   *insert-at/remove-at* position and the child-mask → parent-mask
//!   permutation collapses to a split-shift (`low bits stay, high bits shift
//!   by one`), precomputed as a mask + shift pair per node.
//! * **Compiled checks** — each gate constraint that becomes checkable at an
//!   introduce node is resolved to in-bag *bit positions* (an AND gate is
//!   `bit(g) == (mask & in_mask) == in_mask`, etc.); no gate or bag lookup
//!   happens during the sweep.
//! * **Forget multipliers** — the weight source of each forgotten gate is
//!   resolved to a dense *variable slot* (or no-op); at sweep start the
//!   [`crate::weights::Weights`] table is resolved once into a flat
//!   `[w_false, w_true]`-per-slot slab.
//! * **Dense tables** — node tables are `Vec<f64>` of length `1 << |bag|`
//!   (bounded by the evaluation-time width budget) indexed directly by the
//!   assignment mask. Table buffers live in a [`SweepArena`] and are
//!   assigned to *slots* by a static liveness analysis at plan-build time,
//!   so repeated evaluations — batch sweeps, weight-only re-evaluation, the
//!   incremental-update revalidation path — allocate nothing in steady
//!   state.
//! * **Scenario lanes** — [`SweepPlan::run_many`] evaluates K weight tables
//!   in a single traversal by widening every table slot to K adjacent `f64`
//!   lanes: the masks, permutations and checks (the expensive, branchy part)
//!   are computed once and amortized over all K scenarios.
//!
//! The interpreted HashMap sweep remains in [`crate::wmc`] as the reference
//! implementation; differential tests assert agreement within 1e-9.

use crate::circuit::{Circuit, CircuitError, Gate, GateId, VarId};
use crate::weights::Weights;
use crate::wmc::WmcError;
use std::collections::HashMap;
use stuc_graph::nice::{NiceDecomposition, NiceNodeKind};

/// Largest bag size a plan will compile dense tables for. The binding
/// constraint is memory, not mask width (`u64` masks only overflow at 64):
/// a dense table holds `8 << bag` bytes per lane, so bag 25 already costs
/// 256 MiB per live slot. Wider circuits fall back to the interpreted
/// sparse sweep, whose memory is proportional to the *reachable* entries.
pub const MAX_PLANNED_BAG: usize = 25;

/// One compiled gate constraint, resolved to in-bag bit positions. A mask
/// `m` satisfies the check iff the recorded relation holds between the
/// gate's own bit and its input bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompiledCheck {
    /// The designated output gate must be true.
    OutputTrue { bit: u64 },
    /// A constant gate must carry its constant.
    ConstGate { bit: u64, value: bool },
    /// `bit(g) == !bit(x)`.
    NotGate { out: u64, input: u64 },
    /// `bit(g) == ((m & in_mask) == in_mask)` (empty AND is true).
    AndGate { out: u64, in_mask: u64 },
    /// `bit(g) == ((m & in_mask) != 0)` (empty OR is false).
    OrGate { out: u64, in_mask: u64 },
}

impl CompiledCheck {
    #[inline(always)]
    fn passes(self, mask: u64) -> bool {
        match self {
            CompiledCheck::OutputTrue { bit } => mask & bit != 0,
            CompiledCheck::ConstGate { bit, value } => (mask & bit != 0) == value,
            CompiledCheck::NotGate { out, input } => (mask & out != 0) == (mask & input == 0),
            CompiledCheck::AndGate { out, in_mask } => {
                (mask & out != 0) == (mask & in_mask == in_mask)
            }
            CompiledCheck::OrGate { out, in_mask } => (mask & out != 0) == (mask & in_mask != 0),
        }
    }
}

/// The compiled form of one nice-decomposition node.
#[derive(Debug, Clone)]
enum PlanOp {
    /// Empty bag; the single table entry is 1.
    Leaf,
    /// Insert the introduced gate's bit at `intro_pos` (split-shift
    /// permutation) and filter by the checks in
    /// `checks[checks_start..checks_start + checks_len]`.
    Introduce {
        child: usize,
        /// Bits strictly below the introduced position keep their place.
        low_mask: u64,
        intro_pos: u32,
        checks_start: u32,
        checks_len: u32,
    },
    /// Remove the bit at `forget_pos` (inverse split-shift), multiplying
    /// each entry by the forgotten gate's weight from `multiplier_slot`.
    Forget {
        child: usize,
        low_mask: u64,
        forget_pos: u32,
        /// Dense variable slot of the forgotten input gate, or `u32::MAX`
        /// for non-input gates (multiplier 1).
        multiplier_slot: u32,
    },
    /// Pointwise product of two identical-bag children.
    Join { left: usize, right: usize },
}

#[derive(Debug, Clone)]
struct PlanNode {
    op: PlanOp,
    /// `1 << |bag|`: the dense table length at lane width 1.
    table_len: usize,
    /// Arena slot this node's table lives in (slots are reused once the
    /// parent has consumed a table — static liveness analysis).
    slot: u32,
}

/// A reusable scratch buffer for [`SweepPlan`] evaluations: one dense table
/// buffer per plan slot plus the resolved weight slab. In steady state
/// (repeated evaluation of the same plan at the same lane width) no buffer
/// ever grows, so sweeps allocate nothing; [`SweepArena::allocations`]
/// counts how many buffers had to grow, which
/// [`crate::wmc::WmcReport::table_allocations`] surfaces per run.
#[derive(Debug, Default)]
pub struct SweepArena {
    slots: Vec<Vec<f64>>,
    slab: Vec<f64>,
    allocations: usize,
}

impl SweepArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        SweepArena::default()
    }

    /// Total table (re)allocations performed since the arena was created.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Ensures slot `index` holds a zeroed buffer of at least `len`,
    /// counting an allocation when its capacity must grow.
    fn take_zeroed(&mut self, index: usize, len: usize) -> Vec<f64> {
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, Vec::new);
        }
        let mut buffer = std::mem::take(&mut self.slots[index]);
        if buffer.capacity() < len {
            self.allocations += 1;
            buffer = Vec::with_capacity(len);
        }
        buffer.clear();
        buffer.resize(len, 0.0);
        buffer
    }

    fn put_back(&mut self, index: usize, buffer: Vec<f64>) {
        self.slots[index] = buffer;
    }
}

/// The message-passing sweep of one compiled circuit, flattened into dense
/// tables, precomputed permutations and compiled checks. Built once per
/// `(circuit, nice decomposition)` pair; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    nodes: Vec<PlanNode>,
    checks: Vec<CompiledCheck>,
    root: usize,
    /// `(bit position, variable slot)` of every input gate still present in
    /// the root bag; their weights are multiplied in at the final sum.
    root_inputs: Vec<(u32, u32)>,
    /// Slot → event variable; the weight slab is laid out in slot order.
    var_of_slot: Vec<VarId>,
    /// Number of distinct arena slots the static allocation uses.
    slot_count: usize,
}

impl SweepPlan {
    /// Compiles the sweep over `nice` (a nice decomposition of the circuit
    /// graph of `circuit`, which must be prepared: deduplicated inputs,
    /// fan-in ≤ 2). Fails with [`WmcError::WidthTooLarge`] when some bag
    /// exceeds [`MAX_PLANNED_BAG`] (dense tables would overflow).
    pub fn build(
        circuit: &Circuit,
        nice: &NiceDecomposition,
        output_gate: usize,
    ) -> Result<SweepPlan, WmcError> {
        let max_bag = nice.max_bag_len();
        if max_bag > MAX_PLANNED_BAG {
            return Err(WmcError::WidthTooLarge {
                width: max_bag.saturating_sub(1),
                limit: MAX_PLANNED_BAG,
            });
        }

        // Dense variable slots for every input gate of the circuit.
        let mut slot_of_var: HashMap<VarId, u32> = HashMap::new();
        let mut var_of_slot: Vec<VarId> = Vec::new();
        for (_, gate) in circuit.iter() {
            if let Gate::Input(v) = gate {
                slot_of_var.entry(*v).or_insert_with(|| {
                    var_of_slot.push(*v);
                    (var_of_slot.len() - 1) as u32
                });
            }
        }

        let mut nodes: Vec<PlanNode> = Vec::with_capacity(nice.len());
        let mut checks: Vec<CompiledCheck> = Vec::new();
        // Sorted bag layouts, kept only during the build.
        let mut bags: Vec<Vec<usize>> = Vec::with_capacity(nice.len());
        // Static slot allocation: each table is consumed by exactly one
        // parent, so freeing the child slots after assigning the parent's
        // keeps the live-slot count at the sweep's actual peak.
        let mut free_slots: Vec<u32> = Vec::new();
        let mut slot_count = 0u32;
        let mut alloc_slot = |free: &mut Vec<u32>| -> u32 {
            free.pop().unwrap_or_else(|| {
                slot_count += 1;
                slot_count - 1
            })
        };

        for (idx, node) in nice.iter_bottom_up() {
            let bag = node.bag_indices();
            let op = match &node.kind {
                NiceNodeKind::Leaf => PlanOp::Leaf,
                NiceNodeKind::Introduce { vertex, child } => {
                    let v = vertex.index();
                    let intro_pos =
                        bag.iter()
                            .position(|&g| g == v)
                            .expect("introduced gate in bag") as u32;
                    let checks_start = checks.len() as u32;
                    compile_checks(circuit, &bag, v, output_gate, &mut checks);
                    PlanOp::Introduce {
                        child: *child,
                        low_mask: (1u64 << intro_pos) - 1,
                        intro_pos,
                        checks_start,
                        checks_len: checks.len() as u32 - checks_start,
                    }
                }
                NiceNodeKind::Forget { vertex, child } => {
                    let v = vertex.index();
                    let forget_pos = bags[*child]
                        .iter()
                        .position(|&g| g == v)
                        .expect("forgotten gate in child bag")
                        as u32;
                    let multiplier_slot = match circuit.gate(GateId(v)) {
                        Gate::Input(var) => slot_of_var[var],
                        _ => u32::MAX,
                    };
                    PlanOp::Forget {
                        child: *child,
                        low_mask: (1u64 << forget_pos) - 1,
                        forget_pos,
                        multiplier_slot,
                    }
                }
                NiceNodeKind::Join { left, right } => PlanOp::Join {
                    left: *left,
                    right: *right,
                },
            };
            // Allocate this node's slot first, then release the consumed
            // children: a child buffer is read while the parent is written,
            // so they must never share a slot.
            let slot = alloc_slot(&mut free_slots);
            match &op {
                PlanOp::Leaf => {}
                PlanOp::Introduce { child, .. } | PlanOp::Forget { child, .. } => {
                    free_slots.push(nodes[*child].slot);
                }
                PlanOp::Join { left, right } => {
                    free_slots.push(nodes[*left].slot);
                    free_slots.push(nodes[*right].slot);
                }
            }
            nodes.push(PlanNode {
                op,
                table_len: 1usize << bag.len(),
                slot,
            });
            bags.push(bag);
            debug_assert_eq!(nodes.len(), idx + 1);
        }

        let root = nice.root();
        let mut root_inputs = Vec::new();
        for (pos, &g) in bags[root].iter().enumerate() {
            if let Gate::Input(var) = circuit.gate(GateId(g)) {
                root_inputs.push((pos as u32, slot_of_var[var]));
            }
        }

        Ok(SweepPlan {
            nodes,
            checks,
            root,
            root_inputs,
            var_of_slot,
            slot_count: slot_count as usize,
        })
    }

    /// Number of nice nodes the plan sweeps over.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no nodes (never the case for built plans).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct table buffers the static slot allocation needs —
    /// the sweep's peak number of simultaneously live tables.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Resolves `weights` into the dense `[w_false, w_true]`-per-slot slab,
    /// laid out lane-major: `slab[(slot * 2 + value) * lanes + lane]`.
    fn fill_slab(
        &self,
        scenarios: &[&Weights],
        arena: &mut SweepArena,
    ) -> Result<(), CircuitError> {
        let lanes = scenarios.len();
        let len = self.var_of_slot.len() * 2 * lanes;
        if arena.slab.capacity() < len {
            arena.allocations += 1;
        }
        arena.slab.clear();
        arena.slab.resize(len, 0.0);
        for (slot, &var) in self.var_of_slot.iter().enumerate() {
            for (lane, weights) in scenarios.iter().enumerate() {
                let [w_false, w_true] = weights.pair(var)?;
                arena.slab[(slot * 2) * lanes + lane] = w_false;
                arena.slab[(slot * 2 + 1) * lanes + lane] = w_true;
            }
        }
        Ok(())
    }

    /// Runs the planned sweep under one weight table, reusing `arena`'s
    /// buffers. Equivalent to the interpreted
    /// [`crate::wmc`] message passing, within floating-point association.
    pub fn run(&self, weights: &Weights, arena: &mut SweepArena) -> Result<f64, WmcError> {
        self.fill_slab(&[weights], arena)?;
        let mut total = 0.0f64;
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut table = arena.take_zeroed(node.slot as usize, node.table_len);
            match node.op {
                PlanOp::Leaf => table[0] = 1.0,
                PlanOp::Introduce {
                    child,
                    low_mask,
                    intro_pos,
                    checks_start,
                    checks_len,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    let checks =
                        &self.checks[checks_start as usize..(checks_start + checks_len) as usize];
                    for (child_mask, &weight) in
                        child_table[..child_node.table_len].iter().enumerate()
                    {
                        if weight == 0.0 {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let base = (child_mask & low_mask) | ((child_mask & !low_mask) << 1);
                        for value in 0u64..2 {
                            let mask = base | (value << intro_pos);
                            if checks.iter().all(|c| c.passes(mask)) {
                                table[mask as usize] = weight;
                            }
                        }
                    }
                }
                PlanOp::Forget {
                    child,
                    low_mask,
                    forget_pos,
                    multiplier_slot,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    let (w_false, w_true) = if multiplier_slot == u32::MAX {
                        (1.0, 1.0)
                    } else {
                        let base = multiplier_slot as usize * 2;
                        (arena.slab[base], arena.slab[base + 1])
                    };
                    for (child_mask, &weight) in
                        child_table[..child_node.table_len].iter().enumerate()
                    {
                        if weight == 0.0 {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let value = (child_mask >> forget_pos) & 1;
                        let projected = (child_mask & low_mask) | ((child_mask >> 1) & !low_mask);
                        let multiplier = if value == 0 { w_false } else { w_true };
                        table[projected as usize] += weight * multiplier;
                    }
                }
                PlanOp::Join { left, right } => {
                    let left_table = &arena.slots[self.nodes[left].slot as usize];
                    let right_table = &arena.slots[self.nodes[right].slot as usize];
                    for (slot, (l, r)) in table
                        .iter_mut()
                        .zip(left_table.iter().zip(right_table.iter()))
                    {
                        *slot = l * r;
                    }
                }
            }
            if idx == self.root {
                for (mask, &weight) in table.iter().enumerate() {
                    if weight == 0.0 {
                        continue;
                    }
                    let mut w = weight;
                    for &(pos, slot) in &self.root_inputs {
                        let value = (mask as u64 >> pos) & 1;
                        w *= arena.slab[slot as usize * 2 + value as usize];
                    }
                    total += w;
                }
            }
            arena.put_back(node.slot as usize, table);
        }
        Ok(total)
    }

    /// Runs the planned sweep for K weight tables in a **single traversal**:
    /// every table slot is widened to K adjacent `f64` lanes, so the mask
    /// permutations and constraint checks (the branchy part of the sweep)
    /// are computed once and shared by all K scenarios. Returns one
    /// probability per scenario, in input order; each lane's arithmetic is
    /// performed in exactly the same order as [`SweepPlan::run`], so the
    /// results are bitwise identical to K separate runs.
    pub fn run_many(
        &self,
        scenarios: &[&Weights],
        arena: &mut SweepArena,
    ) -> Result<Vec<f64>, WmcError> {
        let lanes = scenarios.len();
        if lanes == 0 {
            return Ok(Vec::new());
        }
        self.fill_slab(scenarios, arena)?;
        let mut totals = vec![0.0f64; lanes];
        for (idx, node) in self.nodes.iter().enumerate() {
            let mut table = arena.take_zeroed(node.slot as usize, node.table_len * lanes);
            match node.op {
                PlanOp::Leaf => table[..lanes].fill(1.0),
                PlanOp::Introduce {
                    child,
                    low_mask,
                    intro_pos,
                    checks_start,
                    checks_len,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    let checks =
                        &self.checks[checks_start as usize..(checks_start + checks_len) as usize];
                    for (child_mask, source) in child_table[..child_node.table_len * lanes]
                        .chunks_exact(lanes)
                        .enumerate()
                    {
                        if source.iter().all(|&w| w == 0.0) {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let base = (child_mask & low_mask) | ((child_mask & !low_mask) << 1);
                        for value in 0u64..2 {
                            let mask = base | (value << intro_pos);
                            if checks.iter().all(|c| c.passes(mask)) {
                                table[mask as usize * lanes..(mask as usize + 1) * lanes]
                                    .copy_from_slice(source);
                            }
                        }
                    }
                }
                PlanOp::Forget {
                    child,
                    low_mask,
                    forget_pos,
                    multiplier_slot,
                } => {
                    let child_node = &self.nodes[child];
                    let child_table = &arena.slots[child_node.slot as usize];
                    for (child_mask, source) in child_table[..child_node.table_len * lanes]
                        .chunks_exact(lanes)
                        .enumerate()
                    {
                        if source.iter().all(|&w| w == 0.0) {
                            continue;
                        }
                        let child_mask = child_mask as u64;
                        let value = (child_mask >> forget_pos) & 1;
                        let projected = (child_mask & low_mask) | ((child_mask >> 1) & !low_mask);
                        let target = &mut table
                            [projected as usize * lanes..(projected as usize + 1) * lanes];
                        if multiplier_slot == u32::MAX {
                            for (t, &s) in target.iter_mut().zip(source) {
                                *t += s * 1.0;
                            }
                        } else {
                            let base = (multiplier_slot as usize * 2 + value as usize) * lanes;
                            let multipliers = &arena.slab[base..base + lanes];
                            for ((t, &s), &m) in target.iter_mut().zip(source).zip(multipliers) {
                                *t += s * m;
                            }
                        }
                    }
                }
                PlanOp::Join { left, right } => {
                    let left_table = &arena.slots[self.nodes[left].slot as usize];
                    let right_table = &arena.slots[self.nodes[right].slot as usize];
                    for (slot, (l, r)) in table
                        .iter_mut()
                        .zip(left_table.iter().zip(right_table.iter()))
                    {
                        *slot = l * r;
                    }
                }
            }
            if idx == self.root {
                for (mask, source) in table.chunks_exact(lanes).enumerate() {
                    if source.iter().all(|&w| w == 0.0) {
                        continue;
                    }
                    for (lane, total) in totals.iter_mut().enumerate() {
                        let mut w = source[lane];
                        if w == 0.0 {
                            continue;
                        }
                        for &(pos, slot) in &self.root_inputs {
                            let value = (mask as u64 >> pos) & 1;
                            w *= arena.slab[(slot as usize * 2 + value as usize) * lanes + lane];
                        }
                        *total += w;
                    }
                }
            }
            arena.put_back(node.slot as usize, table);
        }
        Ok(totals)
    }
}

/// Compiles the constraints that become checkable when `introduced` joins
/// `bag`: every gate whose scope (gate + inputs) is contained in the bag and
/// includes the introduced vertex, plus the output-truth requirement. The
/// mirror of `constraints_to_check` in [`crate::wmc`], resolved to bit
/// positions.
fn compile_checks(
    circuit: &Circuit,
    bag: &[usize],
    introduced: usize,
    output_gate: usize,
    out: &mut Vec<CompiledCheck>,
) {
    let bit_of =
        |gate: usize| -> Option<u64> { bag.binary_search(&gate).ok().map(|pos| 1u64 << pos) };
    for &g in bag {
        let gate = circuit.gate(GateId(g));
        if gate.is_leaf() && g != introduced {
            continue;
        }
        let scope_contains_introduced =
            g == introduced || gate.inputs().iter().any(|x| x.0 == introduced);
        if !scope_contains_introduced {
            continue;
        }
        let in_bits = match gate
            .inputs()
            .iter()
            .map(|x| bit_of(x.0))
            .collect::<Option<Vec<u64>>>()
        {
            Some(bits) => bits,
            None => continue, // scope not fully in the bag yet
        };
        let out_bit = bit_of(g).expect("gate is in its own bag");
        let check = match gate {
            Gate::Input(_) => continue, // free variable, no constraint
            Gate::Const(b) => CompiledCheck::ConstGate {
                bit: out_bit,
                value: *b,
            },
            Gate::Not(_) => CompiledCheck::NotGate {
                out: out_bit,
                input: in_bits[0],
            },
            Gate::And(_) => CompiledCheck::AndGate {
                out: out_bit,
                in_mask: in_bits.iter().fold(0, |acc, b| acc | b),
            },
            Gate::Or(_) => CompiledCheck::OrGate {
                out: out_bit,
                in_mask: in_bits.iter().fold(0, |acc, b| acc | b),
            },
        };
        out.push(check);
    }
    if introduced == output_gate {
        out.push(CompiledCheck::OutputTrue {
            bit: bit_of(output_gate).expect("output gate is in the bag"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::wmc::TreewidthWmc;
    use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};

    fn plan_for(circuit: &Circuit) -> (Circuit, SweepPlan) {
        let prepared = TreewidthWmc::prepare(circuit);
        let output = prepared.output().expect("output");
        let graph = TreewidthWmc::circuit_graph(&prepared);
        let td = decompose_with_heuristic(&graph, EliminationHeuristic::MinDegree);
        let nice = NiceDecomposition::from_decomposition(&td);
        let plan = SweepPlan::build(&prepared, &nice, output.index()).expect("plan builds");
        (prepared, plan)
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn planned_sweep_matches_interpreted_sweep() {
        for seed in 0..20 {
            let circuit = builder::random_circuit(10, 18, seed);
            let weights = Weights::uniform(circuit.variables(), 0.4);
            let reference = TreewidthWmc::default()
                .probability(&circuit, &weights)
                .unwrap();
            let (_, plan) = plan_for(&circuit);
            let mut arena = SweepArena::new();
            assert_close(plan.run(&weights, &mut arena).unwrap(), reference);
        }
    }

    #[test]
    fn steady_state_runs_do_not_allocate() {
        let circuit = builder::conjunction_of_disjunctions(6, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let (_, plan) = plan_for(&circuit);
        let mut arena = SweepArena::new();
        let first = plan.run(&weights, &mut arena).unwrap();
        let after_first = arena.allocations();
        assert!(after_first > 0, "first run must populate the arena");
        for _ in 0..5 {
            assert_close(plan.run(&weights, &mut arena).unwrap(), first);
        }
        assert_eq!(
            arena.allocations(),
            after_first,
            "steady-state sweeps must not allocate"
        );
    }

    #[test]
    fn run_many_is_bitwise_identical_to_per_scenario_runs() {
        let circuit = builder::random_circuit(9, 16, 5);
        let scenarios: Vec<Weights> = [0.1, 0.35, 0.5, 0.9]
            .iter()
            .map(|&p| Weights::uniform(circuit.variables(), p))
            .collect();
        let (_, plan) = plan_for(&circuit);
        let mut arena = SweepArena::new();
        let refs: Vec<&Weights> = scenarios.iter().collect();
        let many = plan.run_many(&refs, &mut arena).unwrap();
        for (weights, &lane) in scenarios.iter().zip(&many) {
            let single = plan.run(weights, &mut arena).unwrap();
            assert_eq!(single.to_bits(), lane.to_bits(), "{single} vs {lane}");
        }
    }

    #[test]
    fn run_many_of_zero_scenarios_is_empty() {
        let circuit = builder::xor_chain(4);
        let (_, plan) = plan_for(&circuit);
        assert!(plan
            .run_many(&[], &mut SweepArena::new())
            .unwrap()
            .is_empty());
        assert!(!plan.is_empty());
        assert!(plan.slot_count() >= 1);
        assert!(plan.len() > 1);
    }

    #[test]
    fn missing_weight_is_reported() {
        let circuit = builder::xor_chain(3);
        let (_, plan) = plan_for(&circuit);
        let result = plan.run(&Weights::new(), &mut SweepArena::new());
        assert!(matches!(
            result,
            Err(WmcError::Circuit(CircuitError::UnassignedVariable(_)))
        ));
    }

    #[test]
    fn oversized_bags_are_refused() {
        // A fake decomposition with a single giant bag trips the guard.
        use stuc_graph::graph::VertexId;
        use stuc_graph::TreeDecomposition;
        let n = MAX_PLANNED_BAG + 2;
        let mut circuit = Circuit::new();
        let inputs: Vec<GateId> = (0..n).map(|i| circuit.add_input(VarId(i))).collect();
        let out = *inputs.last().unwrap();
        circuit.set_output(out);
        let mut td = TreeDecomposition::new();
        td.add_bag((0..n).map(VertexId));
        let nice = NiceDecomposition::from_decomposition(&td);
        assert!(matches!(
            SweepPlan::build(&circuit, &nice, out.index()),
            Err(WmcError::WidthTooLarge { .. })
        ));
    }
}
