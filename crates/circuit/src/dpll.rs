//! A Shannon-expansion (DPLL-style) weighted model counter.
//!
//! This is the "knowledge compilation flavoured" baseline: the probability of
//! a circuit is computed by repeatedly branching on a variable, propagating
//! constants, and memoising the probability of the simplified residual
//! circuits. It is exponential in the worst case but much better than naive
//! enumeration on circuits with structure, and it makes no treewidth
//! assumption — which is exactly why the benchmarks compare it against the
//! message-passing back-end of [`crate::wmc`] (experiment A2).

use crate::circuit::{Circuit, CircuitError, Gate, GateId, VarId};
use crate::weights::Weights;
use std::collections::{BTreeMap, HashMap};

/// Configuration for the DPLL back-end.
#[derive(Debug, Clone)]
pub struct DpllCounter {
    /// Stop and report an error after this many recursive branch steps, to
    /// keep runaway instances from hanging the test suite.
    pub max_branches: u64,
}

impl Default for DpllCounter {
    fn default() -> Self {
        DpllCounter {
            max_branches: 10_000_000,
        }
    }
}

stuc_errors::stuc_error! {
    /// Errors raised by the DPLL back-end.
    #[derive(Clone, PartialEq, Eq)]
    pub enum DpllError {
        /// The branch budget was exhausted.
        BranchBudgetExhausted,
        /// An underlying circuit error.
        Circuit(CircuitError),
        /// The ambient evaluation budget (deadline or cancellation) tripped
        /// mid-search.
        Budget(stuc_fault::BudgetError),
    }
    display {
        Self::BranchBudgetExhausted => "DPLL branch budget exhausted",
        Self::Circuit(e) => "{e}",
        Self::Budget(e) => "{e}",
    }
    from {
        CircuitError => Circuit,
        stuc_fault::BudgetError => Budget,
    }
}

/// Statistics reported alongside the probability.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DpllReport {
    /// The computed probability.
    pub probability: f64,
    /// Number of branching steps performed.
    pub branches: u64,
    /// Number of memoisation hits.
    pub cache_hits: u64,
}

type MemoKey = (Vec<Gate>, Option<GateId>);

impl DpllCounter {
    /// Computes the probability that the circuit's output is true.
    pub fn probability(&self, circuit: &Circuit, weights: &Weights) -> Result<f64, DpllError> {
        self.run(circuit, weights).map(|r| r.probability)
    }

    /// Computes the probability together with search statistics.
    pub fn run(&self, circuit: &Circuit, weights: &Weights) -> Result<DpllReport, DpllError> {
        // Validate weights once up front for a deterministic error.
        for v in circuit.variables() {
            weights.weight(v, true)?;
        }
        let mut state = SearchState {
            weights,
            memo: HashMap::new(),
            report: DpllReport::default(),
            max_branches: self.max_branches,
        };
        let simplified = circuit.simplify()?;
        let p = state.count(&simplified)?;
        state.report.probability = p;
        Ok(state.report)
    }
}

struct SearchState<'a> {
    weights: &'a Weights,
    memo: HashMap<MemoKey, f64>,
    report: DpllReport,
    max_branches: u64,
}

impl SearchState<'_> {
    fn count(&mut self, circuit: &Circuit) -> Result<f64, DpllError> {
        // Constant output?
        if let Some(out) = circuit.output() {
            if let Gate::Const(b) = circuit.gate(out) {
                return Ok(if *b { 1.0 } else { 0.0 });
            }
        } else {
            return Err(DpllError::Circuit(CircuitError::NoOutput));
        }

        let key: MemoKey = (
            circuit.iter().map(|(_, g)| g.clone()).collect(),
            circuit.output(),
        );
        if let Some(&p) = self.memo.get(&key) {
            self.report.cache_hits += 1;
            return Ok(p);
        }

        self.report.branches += 1;
        if self.report.branches > self.max_branches {
            return Err(DpllError::BranchBudgetExhausted);
        }
        // Cooperative deadline/cancellation, amortised alongside the branch
        // budget: runaway searches answer within one check interval.
        if self.report.branches.is_multiple_of(256) {
            stuc_fault::budget::check("dpll branching")?;
        }

        let var = pick_branch_variable(circuit);
        let p_true = self.weights.weight(var, true)?;
        let mut total = 0.0;
        for value in [true, false] {
            let weight = if value { p_true } else { 1.0 - p_true };
            if weight == 0.0 {
                continue;
            }
            let restricted = restrict(circuit, var, value)?;
            total += weight * self.count(&restricted)?;
        }
        self.memo.insert(key, total);
        Ok(total)
    }
}

/// Chooses the most frequently read unassigned variable.
fn pick_branch_variable(circuit: &Circuit) -> VarId {
    let mut counts: BTreeMap<VarId, usize> = BTreeMap::new();
    for (_, gate) in circuit.iter() {
        if let Gate::Input(v) = gate {
            *counts.entry(*v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
        .expect("non-constant circuit has at least one variable")
}

/// Replaces every input gate reading `var` by the constant `value`, then
/// simplifies.
fn restrict(circuit: &Circuit, var: VarId, value: bool) -> Result<Circuit, CircuitError> {
    let mut copy = Circuit::new();
    let mut map = Vec::with_capacity(circuit.len());
    for (_, gate) in circuit.iter() {
        let id = match gate {
            Gate::Input(v) if *v == var => copy.add_const(value),
            Gate::Input(v) => copy.add_input(*v),
            Gate::Const(b) => copy.add_const(*b),
            Gate::And(xs) => {
                let mapped = xs.iter().map(|g: &GateId| map[g.0]).collect();
                copy.add_and(mapped)
            }
            Gate::Or(xs) => {
                let mapped = xs.iter().map(|g: &GateId| map[g.0]).collect();
                copy.add_or(mapped)
            }
            Gate::Not(x) => copy.add_not(map[x.0]),
        };
        map.push(id);
    }
    if let Some(out) = circuit.output() {
        copy.set_output(map[out.0]);
    }
    copy.simplify()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::probability_by_enumeration;

    fn weights_uniform(circuit: &Circuit, p: f64) -> Weights {
        Weights::uniform(circuit.variables(), p)
    }

    fn and_or_chain(n: usize) -> Circuit {
        // (x0 AND x1) OR (x2 AND x3) OR ...
        let mut c = Circuit::new();
        let mut terms = Vec::new();
        for i in 0..n {
            let a = c.add_input(VarId(2 * i));
            let b = c.add_input(VarId(2 * i + 1));
            terms.push(c.add_and(vec![a, b]));
        }
        let or = c.add_or(terms);
        c.set_output(or);
        c
    }

    #[test]
    fn agrees_with_enumeration_on_small_circuits() {
        for n in 1..=4 {
            let c = and_or_chain(n);
            let w = weights_uniform(&c, 0.5);
            let dpll = DpllCounter::default().probability(&c, &w).unwrap();
            let brute = probability_by_enumeration(&c, &w).unwrap();
            assert!((dpll - brute).abs() < 1e-12, "n = {n}: {dpll} vs {brute}");
        }
    }

    #[test]
    fn independent_disjunction_formula() {
        // P(or of n independent conjunctions of two p=0.5 vars) = 1 - (3/4)^n.
        let c = and_or_chain(10);
        let w = weights_uniform(&c, 0.5);
        let p = DpllCounter::default().probability(&c, &w).unwrap();
        let expected = 1.0 - (0.75f64).powi(10);
        assert!((p - expected).abs() < 1e-10);
    }

    #[test]
    fn constant_output_circuits() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        c.set_output(t);
        assert_eq!(
            DpllCounter::default()
                .probability(&c, &Weights::new())
                .unwrap(),
            1.0
        );

        let mut c = Circuit::new();
        let f = c.add_const(false);
        c.set_output(f);
        assert_eq!(
            DpllCounter::default()
                .probability(&c, &Weights::new())
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn handles_negation() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let y = c.add_input(VarId(1));
        let nx = c.add_not(x);
        let and = c.add_and(vec![nx, y]);
        c.set_output(and);
        let mut w = Weights::new();
        w.set(VarId(0), 0.2);
        w.set(VarId(1), 0.9);
        let p = DpllCounter::default().probability(&c, &w).unwrap();
        assert!((p - 0.8 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn branch_budget_is_enforced() {
        let c = and_or_chain(12);
        let w = weights_uniform(&c, 0.5);
        let tiny = DpllCounter { max_branches: 2 };
        assert_eq!(
            tiny.run(&c, &w).unwrap_err(),
            DpllError::BranchBudgetExhausted
        );
    }

    #[test]
    fn report_contains_statistics() {
        let c = and_or_chain(6);
        let w = weights_uniform(&c, 0.3);
        let report = DpllCounter::default().run(&c, &w).unwrap();
        assert!(report.branches > 0);
        let expected = 1.0 - (1.0 - 0.09f64).powi(6);
        assert!((report.probability - expected).abs() < 1e-10);
    }

    #[test]
    fn deterministic_weights_prune_branches() {
        let c = and_or_chain(4);
        let mut w = weights_uniform(&c, 0.5);
        // Make the first conjunct certain: probability is 1.
        w.fix(VarId(0), true);
        w.fix(VarId(1), true);
        let p = DpllCounter::default().probability(&c, &w).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_weight_is_an_error() {
        let c = and_or_chain(2);
        let w = Weights::new();
        assert!(matches!(
            DpllCounter::default().probability(&c, &w),
            Err(DpllError::Circuit(CircuitError::UnassignedVariable(_)))
        ));
    }
}
