#![warn(missing_docs)]
//! # stuc-circuit — Boolean circuits, provenance, and exact probability
//!
//! Lineage circuits are the central data structure of the paper's approach:
//! running a tree automaton over the tree encoding of a bounded-treewidth
//! uncertain instance produces a Boolean circuit `C` describing *which
//! possible worlds satisfy the query*; because `C` itself has bounded
//! treewidth, the probability that the query holds can be computed exactly
//! by message passing over a tree decomposition of `C` (Theorems 1 and 2).
//!
//! This crate provides:
//!
//! * [`circuit`] — the circuit representation (inputs, constants, AND, OR,
//!   NOT gates), evaluation, substitution and structural statistics.
//! * [`semiring`] — semiring provenance for monotone circuits (Boolean,
//!   counting, tropical, Why-provenance), matching the paper's observation
//!   that lineage circuits are provenance circuits for absorptive semirings.
//! * [`weights`] — probability assignments to input variables.
//! * [`enumeration`] — the naive possible-world enumeration baseline
//!   (exponential; the paper's "cannot represent them all, much less query
//!   them" strawman).
//! * [`dpll`] — a Shannon-expansion / DPLL-style weighted model counter with
//!   constant propagation and memoisation (a knowledge-compilation-flavoured
//!   baseline).
//! * [`wmc`] — the flagship back-end: exact weighted model counting by
//!   dynamic programming over a (nice) tree decomposition of the circuit
//!   graph, i.e. the "standard message passing techniques" of the paper.
//! * [`compiled`] — compiled circuits: the structural half of the treewidth
//!   back-end (normalisation, circuit-graph decomposition) precomputed once
//!   behind an [`std::sync::Arc`], so probability re-evaluation under new
//!   weights is a single message-passing sweep. This is what the engine's
//!   lineage cache and batch evaluation share across queries and threads.
//! * [`plan`] — the compiled sweep plan behind that sweep: dense tables,
//!   precomputed mask permutations, bit-position constraint checks, an
//!   allocation-free scratch arena, and K-wide scenario lanes
//!   (`run_many`) that evaluate K weight tables in one traversal.
//! * [`builder`] — convenience builders for common circuit shapes used by
//!   tests, examples and benchmarks.
//!
//! ## Example
//!
//! ```
//! use stuc_circuit::circuit::{Circuit, VarId};
//! use stuc_circuit::weights::Weights;
//! use stuc_circuit::wmc::TreewidthWmc;
//!
//! // (x AND y) OR z
//! let mut c = Circuit::new();
//! let x = c.add_input(VarId(0));
//! let y = c.add_input(VarId(1));
//! let z = c.add_input(VarId(2));
//! let and = c.add_and(vec![x, y]);
//! let or = c.add_or(vec![and, z]);
//! c.set_output(or);
//!
//! let mut w = Weights::new();
//! w.set(VarId(0), 0.5);
//! w.set(VarId(1), 0.5);
//! w.set(VarId(2), 0.5);
//!
//! let p = TreewidthWmc::default().probability(&c, &w).unwrap();
//! assert!((p - 0.625).abs() < 1e-12);
//! ```

pub mod builder;
pub mod circuit;
pub mod compiled;
pub mod dpll;
pub mod enumeration;
pub mod plan;
pub mod semiring;
pub mod weights;
pub mod wmc;

pub use circuit::{Circuit, Gate, GateId, VarId};
pub use compiled::{CompiledCircuit, ExtendReport, PatchError, WmcManyReport};
pub use plan::{SweepArena, SweepPlan};
pub use weights::{ProbabilityError, Weights};
pub use wmc::TreewidthWmc;
