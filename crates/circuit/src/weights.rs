//! Probability weights on event variables.
//!
//! A [`Weights`] table assigns to each event variable an independent marginal
//! probability of being true — exactly the probabilistic layer that turns a
//! c-instance into a pc-instance, or a PrXML document into a distribution on
//! documents. All probability back-ends consume this table.

use crate::circuit::{CircuitError, VarId};
use std::collections::BTreeMap;

stuc_errors::stuc_error! {
    /// A value offered as a probability was rejected at a mutation site:
    /// NaN and values outside `[0, 1]` are never silently stored.
    #[derive(Clone, PartialEq)]
    pub enum ProbabilityError {
        /// The offending value (NaN or out of range).
        NotAProbability(f64),
    }
    display {
        Self::NotAProbability(p) => "probability {p} is NaN or outside [0, 1]",
    }
}

/// Validates that `p` is a real probability (finite, in `[0, 1]`).
pub fn validate_probability(p: f64) -> Result<f64, ProbabilityError> {
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(ProbabilityError::NotAProbability(p))
    }
}

/// Independent marginal probabilities for event variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Weights {
    probabilities: BTreeMap<VarId, f64>,
}

impl Weights {
    /// Creates an empty weight table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the probability that `v` is true.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability (outside `[0, 1]` or NaN).
    pub fn set(&mut self, v: VarId, p: f64) {
        self.try_set(v, p)
            .unwrap_or_else(|e| panic!("{e} (for {v})"));
    }

    /// Sets the probability that `v` is true, rejecting NaN and
    /// out-of-range values with a [`ProbabilityError`] instead of panicking
    /// — the mutation-site validation used by the incremental update path.
    pub fn try_set(&mut self, v: VarId, p: f64) -> Result<(), ProbabilityError> {
        validate_probability(p)?;
        self.probabilities.insert(v, p);
        Ok(())
    }

    /// The probability that `v` is true, if assigned.
    pub fn get(&self, v: VarId) -> Option<f64> {
        self.probabilities.get(&v).copied()
    }

    /// Both weights of `v` at once, as a `[w_false, w_true]` pair — the
    /// shape the compiled sweep's dense weight slab
    /// ([`crate::plan::SweepPlan`]) is built from, resolving the `BTreeMap`
    /// once per variable per sweep instead of once per table entry.
    pub fn pair(&self, v: VarId) -> Result<[f64; 2], CircuitError> {
        let p = self
            .probabilities
            .get(&v)
            .copied()
            .ok_or(CircuitError::UnassignedVariable(v))?;
        Ok([1.0 - p, p])
    }

    /// The weight of `v` taking the given value, or an error if unassigned.
    pub fn weight(&self, v: VarId, value: bool) -> Result<f64, CircuitError> {
        let p = self
            .probabilities
            .get(&v)
            .copied()
            .ok_or(CircuitError::UnassignedVariable(v))?;
        Ok(if value { p } else { 1.0 - p })
    }

    /// Number of variables with an assigned probability.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// True when no variable has an assigned probability.
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Iterator over `(variable, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.probabilities.iter().map(|(&v, &p)| (v, p))
    }

    /// True if every variable in `vars` has an assigned probability.
    pub fn covers<'a>(&self, vars: impl IntoIterator<Item = &'a VarId>) -> bool {
        vars.into_iter().all(|v| self.probabilities.contains_key(v))
    }

    /// Builds a weight table where every listed variable gets probability `p`.
    pub fn uniform(vars: impl IntoIterator<Item = VarId>, p: f64) -> Self {
        let mut w = Weights::new();
        for v in vars {
            w.set(v, p);
        }
        w
    }

    /// Overwrites the probability of `v` with 0 or 1, used by conditioning.
    pub fn fix(&mut self, v: VarId, value: bool) {
        self.probabilities.insert(v, if value { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut w = Weights::new();
        w.set(VarId(3), 0.25);
        assert_eq!(w.get(VarId(3)), Some(0.25));
        assert_eq!(w.get(VarId(4)), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn weight_of_true_and_false() {
        let mut w = Weights::new();
        w.set(VarId(0), 0.7);
        assert!((w.weight(VarId(0), true).unwrap() - 0.7).abs() < 1e-12);
        assert!((w.weight(VarId(0), false).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn missing_weight_is_an_error() {
        let w = Weights::new();
        assert_eq!(
            w.weight(VarId(1), true),
            Err(CircuitError::UnassignedVariable(VarId(1)))
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let mut w = Weights::new();
        w.set(VarId(0), 1.5);
    }

    #[test]
    fn try_set_rejects_nan_and_out_of_range() {
        let mut w = Weights::new();
        assert!(matches!(
            w.try_set(VarId(0), f64::NAN),
            Err(ProbabilityError::NotAProbability(_))
        ));
        assert!(w.try_set(VarId(0), -0.1).is_err());
        assert!(w.try_set(VarId(0), 1.1).is_err());
        assert!(w.try_set(VarId(0), 0.0).is_ok());
        assert!(w.try_set(VarId(0), 1.0).is_ok());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn uniform_and_covers() {
        let vars = [VarId(0), VarId(1), VarId(2)];
        let w = Weights::uniform(vars, 0.5);
        assert!(w.covers(vars.iter()));
        assert!(!w.covers([VarId(9)].iter()));
    }

    #[test]
    fn fix_overwrites() {
        let mut w = Weights::uniform([VarId(0)], 0.4);
        w.fix(VarId(0), true);
        assert_eq!(w.get(VarId(0)), Some(1.0));
        w.fix(VarId(0), false);
        assert_eq!(w.get(VarId(0)), Some(0.0));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut w = Weights::new();
        w.set(VarId(5), 0.1);
        w.set(VarId(1), 0.2);
        let order: Vec<_> = w.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![1, 5]);
    }
}
