//! Semiring provenance on monotone circuits.
//!
//! The paper observes (Section 2.2) that for monotone queries the lineage
//! circuits produced by the automaton run are *provenance circuits* in the
//! sense of Deutch–Milo–Roy–Tannen, matching the standard semiring
//! definitions of Green–Karvounarakis–Tannen for **absorptive** semirings.
//! This module provides the semiring abstraction, several standard
//! instances, and the evaluation of a monotone circuit in any of them
//! (experiment E8).

use crate::circuit::{Circuit, Gate, VarId};
use std::collections::BTreeSet;

/// A commutative semiring `(K, ⊕, ⊗, 0, 1)`.
///
/// `⊕` interprets OR gates (alternative derivations) and `⊗` interprets AND
/// gates (joint use of inputs).
pub trait Semiring: Clone {
    /// The additive identity (interpretation of an empty OR).
    fn zero() -> Self;
    /// The multiplicative identity (interpretation of an empty AND).
    fn one() -> Self;
    /// Addition (OR).
    fn add(&self, other: &Self) -> Self;
    /// Multiplication (AND).
    fn mul(&self, other: &Self) -> Self;
}

stuc_errors::stuc_error! {
    /// Errors raised when evaluating provenance.
    #[derive(Clone, PartialEq, Eq)]
    pub enum ProvenanceError {
        /// The circuit contains a NOT gate; semiring provenance is only defined
        /// for monotone circuits.
        NotMonotone,
        /// The circuit has no output gate.
        NoOutput,
    }
    display {
        Self::NotMonotone => "semiring provenance requires a monotone circuit",
        Self::NoOutput => "circuit has no output gate",
    }
}

/// Evaluates a monotone circuit in a semiring, mapping each input variable to
/// an element via `annotation`.
pub fn evaluate_provenance<S: Semiring>(
    circuit: &Circuit,
    annotation: impl Fn(VarId) -> S,
) -> Result<S, ProvenanceError> {
    let output = circuit.output().ok_or(ProvenanceError::NoOutput)?;
    let mut values: Vec<S> = Vec::with_capacity(circuit.len());
    for (_, gate) in circuit.iter() {
        let value = match gate {
            Gate::Input(v) => annotation(*v),
            Gate::Const(true) => S::one(),
            Gate::Const(false) => S::zero(),
            Gate::And(xs) => xs.iter().fold(S::one(), |acc, x| acc.mul(&values[x.0])),
            Gate::Or(xs) => xs.iter().fold(S::zero(), |acc, x| acc.add(&values[x.0])),
            Gate::Not(_) => return Err(ProvenanceError::NotMonotone),
        };
        values.push(value);
    }
    Ok(values[output.0].clone())
}

/// The Boolean semiring `({false, true}, ∨, ∧)`: plain query evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolSemiring(pub bool);

impl Semiring for BoolSemiring {
    fn zero() -> Self {
        BoolSemiring(false)
    }
    fn one() -> Self {
        BoolSemiring(true)
    }
    fn add(&self, other: &Self) -> Self {
        BoolSemiring(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        BoolSemiring(self.0 && other.0)
    }
}

/// The counting semiring `(ℕ, +, ×)`: number of derivations (bag semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingSemiring(pub u64);

impl Semiring for CountingSemiring {
    fn zero() -> Self {
        CountingSemiring(0)
    }
    fn one() -> Self {
        CountingSemiring(1)
    }
    fn add(&self, other: &Self) -> Self {
        CountingSemiring(self.0.saturating_add(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        CountingSemiring(self.0.saturating_mul(other.0))
    }
}

/// The tropical (min-plus) semiring: cheapest derivation cost. `None` is the
/// additive identity `+∞`. This semiring is absorptive, so the paper's
/// provenance-circuit correspondence applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TropicalSemiring(pub Option<u64>);

impl TropicalSemiring {
    /// A finite cost.
    pub fn cost(c: u64) -> Self {
        TropicalSemiring(Some(c))
    }
}

impl Semiring for TropicalSemiring {
    fn zero() -> Self {
        TropicalSemiring(None)
    }
    fn one() -> Self {
        TropicalSemiring(Some(0))
    }
    fn add(&self, other: &Self) -> Self {
        TropicalSemiring(match (self.0, other.0) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(a.min(b)),
        })
    }
    fn mul(&self, other: &Self) -> Self {
        TropicalSemiring(match (self.0, other.0) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        })
    }
}

/// Why-provenance: the set of minimal witness sets (an absorptive semiring of
/// antichains of variable sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyProvenance(pub BTreeSet<BTreeSet<VarId>>);

impl WhyProvenance {
    /// The provenance of a single variable: one singleton witness.
    pub fn var(v: VarId) -> Self {
        WhyProvenance(BTreeSet::from([BTreeSet::from([v])]))
    }

    /// Removes non-minimal witness sets (absorption: `a + ab = a`).
    fn minimise(sets: BTreeSet<BTreeSet<VarId>>) -> Self {
        let minimal: BTreeSet<BTreeSet<VarId>> = sets
            .iter()
            .filter(|s| !sets.iter().any(|other| other != *s && other.is_subset(s)))
            .cloned()
            .collect();
        WhyProvenance(minimal)
    }
}

impl Semiring for WhyProvenance {
    fn zero() -> Self {
        WhyProvenance(BTreeSet::new())
    }
    fn one() -> Self {
        WhyProvenance(BTreeSet::from([BTreeSet::new()]))
    }
    fn add(&self, other: &Self) -> Self {
        let union: BTreeSet<BTreeSet<VarId>> = self.0.union(&other.0).cloned().collect();
        WhyProvenance::minimise(union)
    }
    fn mul(&self, other: &Self) -> Self {
        let mut product = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                product.insert(a.union(b).cloned().collect());
            }
        }
        WhyProvenance::minimise(product)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::circuit::Circuit;

    /// (x0 AND x1) OR x2
    fn sample() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.add_input(VarId(0));
        let x1 = c.add_input(VarId(1));
        let x2 = c.add_input(VarId(2));
        let and = c.add_and(vec![x0, x1]);
        let or = c.add_or(vec![and, x2]);
        c.set_output(or);
        c
    }

    #[test]
    fn boolean_semiring_matches_evaluation() {
        let c = sample();
        // x2 = true makes the output true regardless of the rest.
        let value = evaluate_provenance(&c, |v| BoolSemiring(v == VarId(2))).unwrap();
        assert!(value.0);
        let value = evaluate_provenance(&c, |v| BoolSemiring(v == VarId(0))).unwrap();
        assert!(!value.0);
    }

    #[test]
    fn counting_semiring_counts_derivations() {
        let c = sample();
        // Each variable present once: derivations are {x0x1} and {x2}: 1·1 + 1 = 2.
        let value = evaluate_provenance(&c, |_| CountingSemiring(1)).unwrap();
        assert_eq!(value.0, 2);
    }

    #[test]
    fn tropical_semiring_finds_cheapest_derivation() {
        let c = sample();
        // Costs: x0 = 1, x1 = 2, x2 = 5. Cheapest derivation: x0 AND x1 = 3.
        let value = evaluate_provenance(&c, |v| {
            TropicalSemiring::cost(match v.0 {
                0 => 1,
                1 => 2,
                _ => 5,
            })
        })
        .unwrap();
        assert_eq!(value, TropicalSemiring::cost(3));
    }

    #[test]
    fn tropical_zero_annotations_mean_unavailable() {
        let c = builder::conjunction(2);
        let value = evaluate_provenance(&c, |v| {
            if v.0 == 0 {
                TropicalSemiring::zero()
            } else {
                TropicalSemiring::cost(1)
            }
        })
        .unwrap();
        assert_eq!(value, TropicalSemiring::zero());
    }

    #[test]
    fn why_provenance_lists_minimal_witnesses() {
        let c = sample();
        let value = evaluate_provenance(&c, WhyProvenance::var).unwrap();
        let expected = BTreeSet::from([
            BTreeSet::from([VarId(0), VarId(1)]),
            BTreeSet::from([VarId(2)]),
        ]);
        assert_eq!(value.0, expected);
    }

    #[test]
    fn why_provenance_absorption() {
        // (x0) OR (x0 AND x1) should absorb to just {x0}.
        let mut c = Circuit::new();
        let x0 = c.add_input(VarId(0));
        let x1 = c.add_input(VarId(1));
        let and = c.add_and(vec![x0, x1]);
        let or = c.add_or(vec![x0, and]);
        c.set_output(or);
        let value = evaluate_provenance(&c, WhyProvenance::var).unwrap();
        assert_eq!(value.0, BTreeSet::from([BTreeSet::from([VarId(0)])]));
    }

    #[test]
    fn non_monotone_circuits_are_rejected() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let n = c.add_not(x);
        c.set_output(n);
        assert_eq!(
            evaluate_provenance(&c, |_| BoolSemiring(true)),
            Err(ProvenanceError::NotMonotone)
        );
    }

    #[test]
    fn missing_output_is_rejected() {
        let mut c = Circuit::new();
        c.add_input(VarId(0));
        assert_eq!(
            evaluate_provenance(&c, |_| BoolSemiring(true)),
            Err(ProvenanceError::NoOutput)
        );
    }

    #[test]
    fn constants_map_to_identities() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        let f = c.add_const(false);
        let or = c.add_or(vec![t, f]);
        c.set_output(or);
        let count = evaluate_provenance(&c, |_| CountingSemiring(7)).unwrap();
        assert_eq!(count.0, 1);
    }

    #[test]
    fn semiring_laws_hold_for_samples() {
        // Spot-check associativity/commutativity/absorption interactions on
        // the Why semiring with a few concrete values.
        let a = WhyProvenance::var(VarId(0));
        let b = WhyProvenance::var(VarId(1));
        let c = WhyProvenance::var(VarId(2));
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        assert_eq!(a.mul(&WhyProvenance::one()), a);
        assert_eq!(a.add(&WhyProvenance::zero()), a);
        assert_eq!(a.mul(&WhyProvenance::zero()), WhyProvenance::zero());
        // Absorption: a + a·b = a
        assert_eq!(a.add(&a.mul(&b)), a);
    }
}
