//! Convenience constructors for circuit shapes used across tests, examples
//! and benchmarks.

use crate::circuit::{Circuit, GateId, VarId};

/// A tiny deterministic SplitMix64 generator (kept local so the crate has no
/// dependency on `rand`; benchmark workloads must be reproducible).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// The conjunction `x0 AND x1 AND … AND x(n-1)` as a single AND gate.
pub fn conjunction(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let inputs: Vec<GateId> = (0..n).map(|i| c.add_input(VarId(i))).collect();
    let and = c.add_and(inputs);
    c.set_output(and);
    c
}

/// The disjunction `x0 OR x1 OR … OR x(n-1)` as a single OR gate.
pub fn disjunction(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let inputs: Vec<GateId> = (0..n).map(|i| c.add_input(VarId(i))).collect();
    let or = c.add_or(inputs);
    c.set_output(or);
    c
}

/// A CNF-shaped monotone circuit: the conjunction of `clauses` disjunctions
/// of `clause_size` fresh variables each. Its circuit graph is a collection
/// of small cliques attached to one AND gate, so it has small treewidth.
pub fn conjunction_of_disjunctions(clauses: usize, clause_size: usize) -> Circuit {
    let mut c = Circuit::new();
    let mut clause_gates = Vec::with_capacity(clauses);
    let mut var = 0;
    for _ in 0..clauses {
        let lits: Vec<GateId> = (0..clause_size)
            .map(|_| {
                let g = c.add_input(VarId(var));
                var += 1;
                g
            })
            .collect();
        clause_gates.push(c.add_or(lits));
    }
    let and = c.add_and(clause_gates);
    c.set_output(and);
    c
}

/// A DNF-shaped monotone circuit: the disjunction of `terms` conjunctions of
/// `term_size` fresh variables each (the lineage shape of a self-join-free CQ
/// on a TID instance).
pub fn disjunction_of_conjunctions(terms: usize, term_size: usize) -> Circuit {
    let mut c = Circuit::new();
    let mut term_gates = Vec::with_capacity(terms);
    let mut var = 0;
    for _ in 0..terms {
        let lits: Vec<GateId> = (0..term_size)
            .map(|_| {
                let g = c.add_input(VarId(var));
                var += 1;
                g
            })
            .collect();
        term_gates.push(c.add_and(lits));
    }
    let or = c.add_or(term_gates);
    c.set_output(or);
    c
}

/// An XOR chain `x0 ⊕ x1 ⊕ … ⊕ x(n-1)` built from AND/OR/NOT gates.
/// Its circuit graph is path-like (bounded treewidth) but the function is
/// highly non-monotone — a good stress test for the exact back-ends.
pub fn xor_chain(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new();
    let mut acc = c.add_input(VarId(0));
    for i in 1..n {
        let x = c.add_input(VarId(i));
        let not_acc = c.add_not(acc);
        let not_x = c.add_not(x);
        let left = c.add_and(vec![acc, not_x]);
        let right = c.add_and(vec![not_acc, x]);
        acc = c.add_or(vec![left, right]);
    }
    c.set_output(acc);
    c
}

/// The lineage of the paper's hard query `∃x y  R(x) ∧ S(x,y) ∧ T(y)` on a
/// complete bipartite TID instance with `n` R-facts and `n` T-facts:
/// `OR over (i, j) of (r_i AND s_ij AND t_j)`.
///
/// Variables are laid out as `r_i = i`, `t_j = n + j`, `s_ij = 2n + i·n + j`.
/// Its circuit graph contains a large grid-like structure, so its treewidth
/// grows with `n` — this is the workload of experiment E5.
pub fn rst_bipartite_lineage(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let r: Vec<GateId> = (0..n).map(|i| c.add_input(VarId(i))).collect();
    let t: Vec<GateId> = (0..n).map(|j| c.add_input(VarId(n + j))).collect();
    let mut terms = Vec::with_capacity(n * n);
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in 0..n {
            let s = c.add_input(VarId(2 * n + i * n + j));
            terms.push(c.add_and(vec![r[i], s, t[j]]));
        }
    }
    let or = c.add_or(terms);
    c.set_output(or);
    c
}

/// The lineage of the same query on a *path-shaped* TID instance
/// (`S` only links consecutive elements): `OR over i of (r_i AND s_i AND t_(i+1))`.
/// Its circuit graph has bounded treewidth regardless of `n` — the tractable
/// side of experiment E5.
pub fn rst_path_lineage(n: usize) -> Circuit {
    let mut c = Circuit::new();
    let mut terms = Vec::with_capacity(n);
    for i in 0..n {
        let r = c.add_input(VarId(3 * i));
        let s = c.add_input(VarId(3 * i + 1));
        let t = c.add_input(VarId(3 * i + 2));
        terms.push(c.add_and(vec![r, s, t]));
    }
    let or = c.add_or(terms);
    c.set_output(or);
    c
}

/// A deliberately dense circuit (every variable feeds many gates) whose
/// circuit graph has large treewidth; used to exercise width-limit errors.
pub fn majority_like_dense_circuit(vars: usize, arity: usize) -> Circuit {
    let mut c = Circuit::new();
    let inputs: Vec<GateId> = (0..vars).map(|i| c.add_input(VarId(i))).collect();
    let mut layer = Vec::new();
    for i in 0..vars {
        let picked: Vec<GateId> = (0..arity).map(|k| inputs[(i + k) % vars]).collect();
        layer.push(c.add_and(picked));
    }
    // Second layer mixes everything with everything.
    let mut second = Vec::new();
    for i in 0..vars {
        let picked: Vec<GateId> = (0..arity).map(|k| layer[(i * 7 + k * 3) % vars]).collect();
        second.push(c.add_or(picked));
    }
    let out = c.add_and(second);
    c.set_output(out);
    c
}

/// A random circuit over `vars` variables with `internal` internal gates,
/// each an AND/OR/NOT of previously created gates. Deterministic in `seed`.
pub fn random_circuit(vars: usize, internal: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new();
    let mut pool: Vec<GateId> = (0..vars).map(|i| c.add_input(VarId(i))).collect();
    for _ in 0..internal {
        let kind = rng.next_below(3);
        let gate = match kind {
            0 => {
                let a = pool[rng.next_below(pool.len())];
                let b = pool[rng.next_below(pool.len())];
                c.add_and(vec![a, b])
            }
            1 => {
                let a = pool[rng.next_below(pool.len())];
                let b = pool[rng.next_below(pool.len())];
                c.add_or(vec![a, b])
            }
            _ => {
                let a = pool[rng.next_below(pool.len())];
                c.add_not(a)
            }
        };
        pool.push(gate);
    }
    let out = *pool.last().expect("at least one gate");
    c.set_output(out);
    c
}

/// A read-once "AND of ORs of ANDs" tree over fresh variables, parameterised
/// by fan-out per level; read-once circuits are the easy case for every
/// back-end and serve as the sanity baseline of experiment A2.
pub fn read_once_tree(levels: usize, fanout: usize) -> Circuit {
    fn build(
        c: &mut Circuit,
        level: usize,
        fanout: usize,
        next_var: &mut usize,
        and_level: bool,
    ) -> GateId {
        if level == 0 {
            let g = c.add_input(VarId(*next_var));
            *next_var += 1;
            return g;
        }
        let children: Vec<GateId> = (0..fanout)
            .map(|_| build(c, level - 1, fanout, next_var, !and_level))
            .collect();
        if and_level {
            c.add_and(children)
        } else {
            c.add_or(children)
        }
    }
    let mut c = Circuit::new();
    let mut next_var = 0;
    let root = build(&mut c, levels, fanout, &mut next_var, true);
    c.set_output(root);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::probability_by_enumeration;
    use crate::weights::Weights;

    #[test]
    fn conjunction_probability() {
        let c = conjunction(3);
        let w = Weights::uniform(c.variables(), 0.5);
        let p = probability_by_enumeration(&c, &w).unwrap();
        assert!((p - 0.125).abs() < 1e-12);
    }

    #[test]
    fn disjunction_probability() {
        let c = disjunction(3);
        let w = Weights::uniform(c.variables(), 0.5);
        let p = probability_by_enumeration(&c, &w).unwrap();
        assert!((p - 0.875).abs() < 1e-12);
    }

    #[test]
    fn cnf_and_dnf_have_expected_variable_counts() {
        assert_eq!(conjunction_of_disjunctions(4, 3).variables().len(), 12);
        assert_eq!(disjunction_of_conjunctions(5, 2).variables().len(), 10);
    }

    #[test]
    fn xor_chain_parity() {
        let c = xor_chain(3);
        let w = Weights::uniform(c.variables(), 0.5);
        let p = probability_by_enumeration(&c, &w).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rst_lineages_have_expected_sizes() {
        let bip = rst_bipartite_lineage(3);
        assert_eq!(bip.variables().len(), 3 + 3 + 9);
        let path = rst_path_lineage(4);
        assert_eq!(path.variables().len(), 12);
    }

    #[test]
    fn path_lineage_width_stays_small_while_bipartite_grows() {
        use crate::wmc::TreewidthWmc;
        let small = TreewidthWmc::default().estimated_width(&rst_path_lineage(20));
        let large = TreewidthWmc::default().estimated_width(&rst_bipartite_lineage(6));
        assert!(small <= 4, "path lineage width {small}");
        assert!(
            large > small,
            "bipartite width {large} should exceed path width {small}"
        );
    }

    #[test]
    fn random_circuit_is_reproducible() {
        let a = random_circuit(8, 12, 5);
        let b = random_circuit(8, 12, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn read_once_tree_shape() {
        let c = read_once_tree(2, 3);
        assert_eq!(c.variables().len(), 9);
        assert!(c.is_monotone());
    }
}
