//! Exact probability of a circuit by message passing over a tree
//! decomposition of the circuit graph.
//!
//! This is the back-end behind Theorems 1 and 2 of the paper: the lineage
//! circuit produced by running a tree automaton over a bounded-treewidth
//! instance itself has bounded treewidth, so its probability "can be computed
//! ... via standard message passing techniques" (Lauritzen–Spiegelhalter).
//!
//! Concretely, the circuit is viewed as a constraint network: every gate is a
//! Boolean variable, and every gate contributes the constraint
//! `gate ⇔ op(inputs)`. The *circuit graph* has one vertex per gate and a
//! clique over `{gate} ∪ inputs(gate)` for every gate, so every constraint
//! scope is a clique and is therefore fully contained in some bag of any tree
//! decomposition. A bottom-up dynamic program over a *nice* decomposition
//! then sums the weights of all gate assignments that respect every
//! constraint and set the output gate to true. Input-variable weights are
//! multiplied in when the corresponding gate is forgotten (or at the root),
//! so each weight is counted exactly once.
//!
//! The running time is `O(2^w · |C| · w)` for width `w`: linear in the
//! circuit for fixed treewidth, which is the tractability the paper claims.

use crate::circuit::{Circuit, CircuitError, Gate};
use crate::weights::Weights;
use std::collections::{BTreeSet, HashMap};
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::graph::{Graph, VertexId};
use stuc_graph::nice::{NiceDecomposition, NiceNodeKind};
use stuc_graph::TreeDecomposition;

stuc_errors::stuc_error! {
    /// Errors raised by the treewidth-based weighted model counter.
    #[derive(Clone, PartialEq)]
    pub enum WmcError {
        /// The decomposition found for the circuit graph is too wide for the
        /// configured bag-size limit: the instance is not (recognisably)
        /// structurally tractable, so another back-end should be used.
        WidthTooLarge {
            /// Width of the decomposition that was found.
            width: usize,
            /// The configured bag-size limit it exceeds.
            limit: usize,
        },
        /// An underlying circuit error.
        Circuit(CircuitError),
        /// The ambient evaluation budget (deadline or cancellation) tripped
        /// during plan construction or a sweep.
        Budget(stuc_fault::BudgetError),
        /// An injected fault (only produced by armed failpoints under the
        /// `fault-injection` feature; never in production builds).
        Fault(String),
    }
    display {
        Self::WidthTooLarge { width, limit } => "circuit decomposition width {width} exceeds the configured limit {limit}",
        Self::Circuit(e) => "{e}",
        Self::Budget(e) => "{e}",
        Self::Fault(m) => "injected fault: {m}",
    }
    from {
        CircuitError => Circuit,
        stuc_fault::BudgetError => Budget,
    }
}

/// Result of a message-passing run, with structural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WmcReport {
    /// Probability that the output gate is true.
    pub probability: f64,
    /// Width of the tree decomposition used.
    pub width: usize,
    /// Number of bags in the (non-nice) decomposition.
    pub bag_count: usize,
    /// Number of nodes in the nice decomposition actually traversed.
    pub nice_node_count: usize,
    /// Number of table buffers this run had to (re)allocate. Planned sweeps
    /// ([`crate::compiled::CompiledCircuit`]) reuse a
    /// [`crate::plan::SweepArena`] across runs, so steady-state repeated
    /// evaluation reports 0 here; the interpreted sweep allocates one table
    /// per nice node on every run.
    pub table_allocations: usize,
}

/// The treewidth-based weighted model counter ("message passing" back-end).
#[derive(Debug, Clone)]
pub struct TreewidthWmc {
    /// Heuristic used to decompose the circuit graph.
    pub heuristic: EliminationHeuristic,
    /// Maximum accepted bag size (width + 1). Runs whose decomposition
    /// exceeds this produce [`WmcError::WidthTooLarge`] instead of taking
    /// exponential time unannounced.
    pub max_bag_size: usize,
}

impl Default for TreewidthWmc {
    fn default() -> Self {
        TreewidthWmc {
            heuristic: EliminationHeuristic::MinDegree,
            max_bag_size: 22,
        }
    }
}

impl TreewidthWmc {
    /// Builds the *circuit graph*: one vertex per gate, plus a clique over
    /// every gate and its inputs.
    pub fn circuit_graph(circuit: &Circuit) -> Graph {
        let mut g = Graph::with_vertices(circuit.len());
        for (id, gate) in circuit.iter() {
            let mut clique: Vec<VertexId> = vec![VertexId(id.0)];
            clique.extend(gate.inputs().iter().map(|x| VertexId(x.0)));
            g.add_clique(&clique);
        }
        g
    }

    /// Width of the decomposition this back-end would use for the circuit
    /// (an upper bound on the treewidth of the binarised circuit).
    pub fn estimated_width(&self, circuit: &Circuit) -> usize {
        let prepared = Self::prepare(circuit);
        let graph = Self::circuit_graph(&prepared);
        decompose_with_heuristic(&graph, self.heuristic).width()
    }

    /// Normalises a circuit for the message-passing back-end: merges
    /// duplicate input gates reading the same variable (they must carry the
    /// same value and their weight must be counted exactly once) and
    /// binarises wide gates.
    pub(crate) fn prepare(circuit: &Circuit) -> Circuit {
        let mut deduped = Circuit::new();
        let mut input_of_var: std::collections::BTreeMap<
            crate::circuit::VarId,
            crate::circuit::GateId,
        > = std::collections::BTreeMap::new();
        let mut map: Vec<crate::circuit::GateId> = Vec::with_capacity(circuit.len());
        for (_, gate) in circuit.iter() {
            let id = match gate {
                Gate::Input(v) => *input_of_var
                    .entry(*v)
                    .or_insert_with(|| deduped.add_input(*v)),
                Gate::Const(b) => deduped.add_const(*b),
                Gate::And(xs) => {
                    let inputs = xs.iter().map(|x| map[x.0]).collect();
                    deduped.add_and(inputs)
                }
                Gate::Or(xs) => {
                    let inputs = xs.iter().map(|x| map[x.0]).collect();
                    deduped.add_or(inputs)
                }
                Gate::Not(x) => deduped.add_not(map[x.0]),
            };
            map.push(id);
        }
        if let Some(out) = circuit.output() {
            deduped.set_output(map[out.0]);
        }
        if deduped.max_fanin() > 2 {
            deduped.binarize()
        } else {
            deduped
        }
    }

    /// Computes the probability that the output gate is true.
    pub fn probability(&self, circuit: &Circuit, weights: &Weights) -> Result<f64, WmcError> {
        self.run(circuit, weights).map(|r| r.probability)
    }

    /// Computes the probability together with decomposition statistics.
    ///
    /// The circuit is binarised first (wide gates would otherwise force large
    /// cliques into the circuit graph) and then decomposed with the
    /// configured heuristic.
    pub fn run(&self, circuit: &Circuit, weights: &Weights) -> Result<WmcReport, WmcError> {
        circuit.output().ok_or(CircuitError::NoOutput)?;
        // Validate weights up front.
        for v in circuit.variables() {
            weights.weight(v, true)?;
        }
        let prepared = Self::prepare(circuit);
        let output = prepared.output().ok_or(CircuitError::NoOutput)?;
        let graph = Self::circuit_graph(&prepared);
        let td = decompose_with_heuristic(&graph, self.heuristic);
        self.run_with_decomposition(&prepared, weights, &td, output.0)
    }

    /// Like [`TreewidthWmc::run`] but with a caller-provided decomposition of
    /// the circuit graph (used by Theorem 2 pipelines that already hold a
    /// joint decomposition of instance and annotations).
    pub fn run_with_decomposition(
        &self,
        circuit: &Circuit,
        weights: &Weights,
        td: &TreeDecomposition,
        output_gate: usize,
    ) -> Result<WmcReport, WmcError> {
        if td.max_bag_size() > self.max_bag_size {
            return Err(WmcError::WidthTooLarge {
                width: td.width(),
                limit: self.max_bag_size,
            });
        }
        let nice = NiceDecomposition::from_decomposition(td);
        let probability = message_passing(circuit, weights, &nice, output_gate)?;
        Ok(WmcReport {
            probability,
            width: td.width(),
            bag_count: td.bag_count(),
            nice_node_count: nice.len(),
            // The interpreted sweep allocates one hash table per nice node.
            table_allocations: nice.len(),
        })
    }
}

/// The message-passing dynamic program itself, over an already-built nice
/// decomposition of the circuit graph. Shared by [`TreewidthWmc::run`] and
/// by [`crate::compiled::CompiledCircuit::run_interpreted`].
///
/// This is the *reference* implementation: sparse `HashMap` tables, bag
/// index vectors and constraint scopes re-derived per node, weights looked
/// up in the `BTreeMap` per entry. The production sweep is the compiled
/// dense-table plan in [`crate::plan`]; differential tests assert the two
/// agree within 1e-9 on random, patched and boundary-width circuits.
pub(crate) fn message_passing(
    circuit: &Circuit,
    weights: &Weights,
    nice: &NiceDecomposition,
    output_gate: usize,
) -> Result<f64, WmcError> {
    // tables[node] maps a bag assignment (bitmask over the sorted bag) to
    // the accumulated weight of all consistent extensions below the node.
    let mut tables: Vec<HashMap<u64, f64>> = Vec::with_capacity(nice.len());

    for (idx, node) in nice.iter_bottom_up() {
        let bag: Vec<usize> = node.bag.iter().map(|v| v.index()).collect();
        let table = match &node.kind {
            NiceNodeKind::Leaf => {
                let mut t = HashMap::new();
                t.insert(0u64, 1.0);
                t
            }
            NiceNodeKind::Introduce { vertex, child } => {
                let child_node = nice.node(*child);
                let child_bag: Vec<usize> = child_node.bag.iter().map(|v| v.index()).collect();
                let v = vertex.index();
                // Constraints newly fully contained in the bag: every gate
                // g whose scope includes v and is a subset of the bag.
                let checks = constraints_to_check(circuit, &bag, v, output_gate);
                let mut t = HashMap::new();
                for (&child_mask, &weight) in &tables[*child] {
                    for value in [false, true] {
                        let mask = extend_assignment(&child_bag, child_mask, &bag, v, value);
                        if checks_pass(circuit, &bag, mask, &checks) {
                            *t.entry(mask).or_insert(0.0) += weight;
                        }
                    }
                }
                t
            }
            NiceNodeKind::Forget { vertex, child } => {
                let child_node = nice.node(*child);
                let child_bag: Vec<usize> = child_node.bag.iter().map(|v| v.index()).collect();
                let v = vertex.index();
                let multiplier = |value: bool| -> Result<f64, WmcError> {
                    match circuit.gate(crate::circuit::GateId(v)) {
                        Gate::Input(var) => Ok(weights.weight(*var, value)?),
                        _ => Ok(1.0),
                    }
                };
                let mut t = HashMap::new();
                for (&child_mask, &weight) in &tables[*child] {
                    let position = child_bag
                        .iter()
                        .position(|&g| g == v)
                        .expect("forgotten gate in child bag");
                    let value = child_mask & (1 << position) != 0;
                    let projected = project_assignment(&child_bag, child_mask, &bag);
                    let w = weight * multiplier(value)?;
                    if w != 0.0 {
                        *t.entry(projected).or_insert(0.0) += w;
                    }
                }
                t
            }
            NiceNodeKind::Join { left, right } => {
                let mut t = HashMap::new();
                let (small, large) = if tables[*left].len() <= tables[*right].len() {
                    (&tables[*left], &tables[*right])
                } else {
                    (&tables[*right], &tables[*left])
                };
                for (&mask, &wl) in small {
                    if let Some(&wr) = large.get(&mask) {
                        let w = wl * wr;
                        if w != 0.0 {
                            t.insert(mask, w);
                        }
                    }
                }
                t
            }
        };
        debug_assert_eq!(tables.len(), idx);
        tables.push(table);
    }

    // Root: sum over surviving assignments, multiplying in the weights of
    // input gates still present in the root bag.
    let root = nice.root();
    let root_bag: Vec<usize> = nice.node(root).bag.iter().map(|v| v.index()).collect();
    let mut total = 0.0;
    for (&mask, &weight) in &tables[root] {
        let mut w = weight;
        for (pos, &g) in root_bag.iter().enumerate() {
            if let Gate::Input(var) = circuit.gate(crate::circuit::GateId(g)) {
                let value = mask & (1 << pos) != 0;
                w *= weights.weight(*var, value)?;
            }
        }
        total += w;
    }
    Ok(total)
}

/// The constraints (gate ids) that must be checked when `introduced` joins a
/// bag: every gate whose scope (gate + inputs) is contained in the bag and
/// includes the introduced vertex, plus the output-gate truth requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Check {
    /// Gate semantics: `gate == op(inputs)` for the gate at this index.
    GateSemantics(usize),
    /// The designated output gate must be true.
    OutputTrue(usize),
}

fn constraints_to_check(
    circuit: &Circuit,
    bag: &[usize],
    introduced: usize,
    output_gate: usize,
) -> Vec<Check> {
    let in_bag: BTreeSet<usize> = bag.iter().copied().collect();
    let mut checks = Vec::new();
    for &g in bag {
        let gate = circuit.gate(crate::circuit::GateId(g));
        if gate.is_leaf() && g != introduced {
            // Leaf scopes are {g}; only relevant when g itself is introduced.
            continue;
        }
        let scope_contains_introduced =
            g == introduced || gate.inputs().iter().any(|x| x.0 == introduced);
        if !scope_contains_introduced {
            continue;
        }
        let scope_in_bag = gate.inputs().iter().all(|x| in_bag.contains(&x.0));
        if scope_in_bag {
            checks.push(Check::GateSemantics(g));
        }
    }
    if introduced == output_gate {
        checks.push(Check::OutputTrue(output_gate));
    }
    checks
}

fn checks_pass(circuit: &Circuit, bag: &[usize], mask: u64, checks: &[Check]) -> bool {
    let value_of = |gate: usize| -> bool {
        let pos = bag.iter().position(|&g| g == gate).expect("gate in bag");
        mask & (1 << pos) != 0
    };
    for check in checks {
        match check {
            Check::OutputTrue(g) => {
                if !value_of(*g) {
                    return false;
                }
            }
            Check::GateSemantics(g) => {
                let gate = circuit.gate(crate::circuit::GateId(*g));
                let expected = match gate {
                    Gate::Input(_) => continue, // free variable, no constraint
                    Gate::Const(b) => *b,
                    Gate::And(xs) => xs.iter().all(|x| value_of(x.0)),
                    Gate::Or(xs) => xs.iter().any(|x| value_of(x.0)),
                    Gate::Not(x) => !value_of(x.0),
                };
                if value_of(*g) != expected {
                    return false;
                }
            }
        }
    }
    true
}

/// Extends a child-bag assignment with a value for the introduced vertex,
/// re-indexed to the parent's bag ordering.
fn extend_assignment(
    child_bag: &[usize],
    child_mask: u64,
    bag: &[usize],
    introduced: usize,
    value: bool,
) -> u64 {
    let mut mask = 0u64;
    for (pos, &g) in bag.iter().enumerate() {
        let bit = if g == introduced {
            value
        } else {
            let child_pos = child_bag
                .iter()
                .position(|&x| x == g)
                .expect("gate in child bag");
            child_mask & (1 << child_pos) != 0
        };
        if bit {
            mask |= 1 << pos;
        }
    }
    mask
}

/// Projects a child-bag assignment onto the (smaller) parent bag.
fn project_assignment(child_bag: &[usize], child_mask: u64, bag: &[usize]) -> u64 {
    let mut mask = 0u64;
    for (pos, &g) in bag.iter().enumerate() {
        let child_pos = child_bag
            .iter()
            .position(|&x| x == g)
            .expect("gate in child bag");
        if child_mask & (1 << child_pos) != 0 {
            mask |= 1 << pos;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::circuit::VarId;
    use crate::dpll::DpllCounter;
    use crate::enumeration::probability_by_enumeration;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn single_variable() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        c.set_output(x);
        let mut w = Weights::new();
        w.set(VarId(0), 0.3);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.3);
    }

    #[test]
    fn negated_variable() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let nx = c.add_not(x);
        c.set_output(nx);
        let mut w = Weights::new();
        w.set(VarId(0), 0.3);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.7);
    }

    #[test]
    fn and_or_of_independent_variables() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let y = c.add_input(VarId(1));
        let z = c.add_input(VarId(2));
        let and = c.add_and(vec![x, y]);
        let or = c.add_or(vec![and, z]);
        c.set_output(or);
        let w = Weights::uniform([VarId(0), VarId(1), VarId(2)], 0.5);
        // P = 1 - (1 - 0.25)(1 - 0.5) = 0.625
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.625);
    }

    #[test]
    fn constant_outputs() {
        let mut c = Circuit::new();
        let t = c.add_const(true);
        c.set_output(t);
        assert_close(
            TreewidthWmc::default()
                .probability(&c, &Weights::new())
                .unwrap(),
            1.0,
        );

        let mut c = Circuit::new();
        let f = c.add_const(false);
        c.set_output(f);
        assert_close(
            TreewidthWmc::default()
                .probability(&c, &Weights::new())
                .unwrap(),
            0.0,
        );
    }

    #[test]
    fn agrees_with_enumeration_and_dpll_on_random_circuits() {
        for seed in 0..15 {
            let c = builder::random_circuit(10, 18, seed);
            let w = Weights::uniform(c.variables(), 0.4);
            let brute = probability_by_enumeration(&c, &w).unwrap();
            let dpll = DpllCounter::default().probability(&c, &w).unwrap();
            let mp = TreewidthWmc::default().probability(&c, &w).unwrap();
            assert_close(mp, brute);
            assert_close(dpll, brute);
        }
    }

    #[test]
    fn agrees_on_monotone_chain_circuits() {
        for n in [1, 2, 5, 8] {
            let c = builder::conjunction_of_disjunctions(n, 2);
            let w = Weights::uniform(c.variables(), 0.7);
            let brute = probability_by_enumeration(&c, &w).unwrap();
            let mp = TreewidthWmc::default().probability(&c, &w).unwrap();
            assert_close(mp, brute);
        }
    }

    #[test]
    fn xor_chain_has_bounded_width_and_exact_probability() {
        // XOR chains have pathwidth 2-ish circuit graphs; P(xor of n fair coins) = 0.5.
        let c = builder::xor_chain(16);
        let w = Weights::uniform(c.variables(), 0.5);
        let report = TreewidthWmc::default().run(&c, &w).unwrap();
        assert_close(report.probability, 0.5);
        assert!(
            report.width <= 6,
            "width {} unexpectedly large",
            report.width
        );
    }

    #[test]
    fn width_limit_is_enforced() {
        let c = builder::majority_like_dense_circuit(12, 3);
        let w = Weights::uniform(c.variables(), 0.5);
        let strict = TreewidthWmc {
            max_bag_size: 2,
            ..Default::default()
        };
        assert!(matches!(
            strict.run(&c, &w),
            Err(WmcError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn shared_subcircuits_are_handled() {
        // (x AND y) appears twice: once directly, once under a NOT; the DAG
        // sharing must not break the count.
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let y = c.add_input(VarId(1));
        let and = c.add_and(vec![x, y]);
        let nand = c.add_not(and);
        let or = c.add_or(vec![and, nand]);
        c.set_output(or);
        let w = Weights::uniform([VarId(0), VarId(1)], 0.5);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 1.0);
    }

    #[test]
    fn report_statistics_are_sensible() {
        let c = builder::conjunction_of_disjunctions(6, 3);
        let w = Weights::uniform(c.variables(), 0.5);
        let report = TreewidthWmc::default().run(&c, &w).unwrap();
        assert!(report.bag_count > 0);
        assert!(report.nice_node_count >= report.bag_count);
        assert!(report.probability > 0.0 && report.probability < 1.0);
    }

    #[test]
    fn probability_zero_variables_do_not_contribute() {
        let mut c = Circuit::new();
        let x = c.add_input(VarId(0));
        let y = c.add_input(VarId(1));
        let or = c.add_or(vec![x, y]);
        c.set_output(or);
        let mut w = Weights::new();
        w.set(VarId(0), 0.0);
        w.set(VarId(1), 0.6);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.6);
    }

    #[test]
    fn duplicate_input_gates_for_one_variable_are_merged() {
        // Two input gates reading the same variable must be forced equal and
        // weighted once: x AND (NOT x read through a second gate) is false.
        let mut c = Circuit::new();
        let x1 = c.add_input(VarId(0));
        let x2 = c.add_input(VarId(0));
        let nx2 = c.add_not(x2);
        let and = c.add_and(vec![x1, nx2]);
        c.set_output(and);
        let mut w = Weights::new();
        w.set(VarId(0), 0.5);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.0);

        // x OR (same x through another gate) has probability P(x), not 1-(1-p)².
        let mut c = Circuit::new();
        let x1 = c.add_input(VarId(0));
        let x2 = c.add_input(VarId(0));
        let or = c.add_or(vec![x1, x2]);
        c.set_output(or);
        assert_close(TreewidthWmc::default().probability(&c, &w).unwrap(), 0.5);
    }

    #[test]
    fn min_fill_heuristic_backend_agrees() {
        let c = builder::random_circuit(12, 20, 3);
        let w = Weights::uniform(c.variables(), 0.35);
        let a = TreewidthWmc {
            heuristic: EliminationHeuristic::MinFill,
            ..Default::default()
        }
        .probability(&c, &w)
        .unwrap();
        let b = TreewidthWmc::default().probability(&c, &w).unwrap();
        assert_close(a, b);
    }
}
