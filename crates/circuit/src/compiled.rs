//! Compiled lineage circuits: share once, re-weight many times.
//!
//! The paper's pipeline factors query evaluation into a *structural* phase
//! (decompose the instance, run the automaton, build the lineage circuit,
//! decompose the circuit graph) and a *numerical* phase (propagate the
//! probability weights through the decomposition). Only the numerical phase
//! depends on the probabilities — so when fact probabilities change (what-if
//! analysis, conditioning, weight learning loops), everything structural can
//! be reused verbatim.
//!
//! A [`CompiledCircuit`] is that reusable structural state: the source
//! lineage circuit behind an [`Arc`] (cheap to share across threads and
//! cache entries), its normalised form for message passing, and the nice
//! tree decomposition of its circuit graph. Re-evaluating under a new
//! [`Weights`] table is a single message-passing sweep — no decomposition,
//! no circuit construction, no binarisation.

use crate::circuit::{Circuit, CircuitError, Gate, GateId, VarId};
use crate::plan::{SweepArena, SweepPlan, MAX_PLANNED_BAG};
use crate::weights::Weights;
use crate::wmc::{message_passing, TreewidthWmc, WmcError, WmcReport};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock};
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::graph::VertexId;
use stuc_graph::nice::NiceDecomposition;
use stuc_graph::repair::{repair_decomposition, RepairError};
use stuc_graph::TreeDecomposition;
use stuc_obs::metrics::{registry, Counter};

/// Pre-resolved global counters of the counting sweeps (`stuc_sweep_*`):
/// how many sweeps ran, how many dense-table entries they visited, and
/// whether the reusable arena actually got reused (allocations == 0) or had
/// to allocate (cold arena, or a concurrent sweep held the lock and the
/// sweep fell back to a throwaway arena).
struct SweepMetrics {
    sweeps: Arc<Counter>,
    table_entries: Arc<Counter>,
    arena_allocations: Arc<Counter>,
    arena_reuses: Arc<Counter>,
}

impl SweepMetrics {
    fn observe(&self, nice_nodes: usize, table_allocations: usize) {
        self.sweeps.inc();
        self.table_entries.add(nice_nodes as u64);
        self.arena_allocations.add(table_allocations as u64);
        if table_allocations == 0 {
            self.arena_reuses.inc();
        }
    }
}

fn sweep_metrics() -> &'static SweepMetrics {
    static METRICS: OnceLock<SweepMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = registry();
        SweepMetrics {
            sweeps: reg.counter(
                "stuc_sweep_runs_total",
                "Counting sweeps over compiled circuits (single- and multi-scenario).",
            ),
            table_entries: reg.counter(
                "stuc_sweep_table_entries_total",
                "Nice-decomposition node tables visited by counting sweeps.",
            ),
            arena_allocations: reg.counter(
                "stuc_sweep_arena_allocations_total",
                "Dense sweep tables allocated (0 per sweep once arenas are warm).",
            ),
            arena_reuses: reg.counter(
                "stuc_sweep_arena_reuses_total",
                "Sweeps that ran entirely on reused arena tables (no allocation).",
            ),
        }
    })
}

/// A lineage circuit compiled for repeated probability evaluation.
///
/// Compilation runs the structural half of the treewidth back-end once:
/// input-gate deduplication, binarisation, circuit-graph construction and
/// tree decomposition. Every subsequent [`CompiledCircuit::probability`]
/// call pays only for message passing, which is what makes weight-only
/// re-evaluation (`Engine::reevaluate_with_weights`) and shared batch
/// caches cheap.
///
/// The source circuit is held behind an [`Arc`], so clones of a
/// `CompiledCircuit` (e.g. cache entries handed to worker threads) share
/// every structure instead of deep-copying gate arenas.
#[derive(Debug)]
pub struct CompiledCircuit {
    source: Arc<Circuit>,
    prepared: Circuit,
    output_gate: usize,
    variables: BTreeSet<VarId>,
    heuristic: EliminationHeuristic,
    /// The decomposition of the circuit graph, built on first use: callers
    /// that never run the treewidth back-end (a pinned DPLL engine, say)
    /// skip its cost entirely, and once built it is reused by every
    /// subsequent run.
    structure: OnceLock<CompiledStructure>,
    /// The flattened sweep plan over `structure`'s nice decomposition
    /// ([`SweepPlan`]), built on first counting run. `Some(None)` records
    /// that the circuit's bags are too wide to plan densely (beyond
    /// [`MAX_PLANNED_BAG`]); such circuits fall back to the interpreted
    /// sparse sweep. Invalidated (fresh cell) by the incremental patches —
    /// [`CompiledCircuit::rewire_inputs`] changes gate semantics and
    /// [`CompiledCircuit::extend_or`] changes the decomposition, so the
    /// compiled checks must be re-derived, while the carried-over
    /// *decomposition* stays valid.
    plan: OnceLock<Option<Arc<SweepPlan>>>,
    /// Reusable sweep scratch (dense tables + weight slab): steady-state
    /// repeated evaluation allocates nothing. Guarded by a mutex so the
    /// compiled circuit stays `Sync`; concurrent runs fall back to a
    /// throwaway arena instead of serializing on the lock.
    arena: Mutex<SweepArena>,
}

impl Clone for CompiledCircuit {
    fn clone(&self) -> Self {
        CompiledCircuit {
            source: Arc::clone(&self.source),
            prepared: self.prepared.clone(),
            output_gate: self.output_gate,
            variables: self.variables.clone(),
            heuristic: self.heuristic,
            structure: self.structure.clone(),
            plan: self.plan.clone(),
            // Scratch buffers are per-value: a clone starts with an empty
            // arena and warms it on its first run.
            arena: Mutex::new(SweepArena::new()),
        }
    }
}

/// The lazily-built decomposition state of a [`CompiledCircuit`].
#[derive(Debug, Clone)]
struct CompiledStructure {
    nice: NiceDecomposition,
    width: usize,
    bag_count: usize,
    /// The raw (non-nice) decomposition the nice one was derived from, kept
    /// so incremental patches ([`CompiledCircuit::extend_or`]) can repair it
    /// instead of re-decomposing the grown circuit graph.
    decomposition: TreeDecomposition,
}

stuc_errors::stuc_error! {
    /// Why an incremental circuit patch refused; the caller should fall
    /// back to a fresh compilation.
    #[derive(Clone, PartialEq)]
    pub enum PatchError {
        /// The delta circuit has no output gate.
        Circuit(CircuitError),
        /// The patched circuit-graph decomposition would exceed the bag-size
        /// budget (or failed validation).
        Repair(RepairError),
    }
    display {
        Self::Circuit(e) => "{e}",
        Self::Repair(e) => "{e}",
    }
    from {
        CircuitError => Circuit,
        RepairError => Repair,
    }
}

/// What [`CompiledCircuit::extend_or`] did: the dirty-cone size and the
/// decomposition-repair statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtendReport {
    /// Gates appended to the prepared circuit (the rebuilt cone).
    pub gates_appended: usize,
    /// Existing decomposition bags grown by the repair.
    pub bags_touched: usize,
    /// Bags added by the repair.
    pub bags_added: usize,
    /// Circuit-graph decomposition width before the patch (if built).
    pub width_before: Option<usize>,
    /// Width after the patch (if built).
    pub width_after: Option<usize>,
}

impl CompiledCircuit {
    /// Compiles `source` for repeated evaluation; its circuit graph is
    /// decomposed with `heuristic` on first use.
    ///
    /// Fails with [`CircuitError::NoOutput`] if the circuit has no
    /// designated output gate. Wide circuits still compile — the width
    /// budget is checked at evaluation time, so callers (like the engine's
    /// Auto policy) can inspect [`CompiledCircuit::width`] and route wide
    /// circuits to a width-oblivious back-end instead.
    pub fn compile(
        source: Arc<Circuit>,
        heuristic: EliminationHeuristic,
    ) -> Result<Self, CircuitError> {
        source.output().ok_or(CircuitError::NoOutput)?;
        let prepared = TreewidthWmc::prepare(&source);
        let output_gate = prepared.output().ok_or(CircuitError::NoOutput)?.index();
        let variables = source.variables();
        Ok(CompiledCircuit {
            source,
            prepared,
            output_gate,
            variables,
            heuristic,
            structure: OnceLock::new(),
            plan: OnceLock::new(),
            arena: Mutex::new(SweepArena::new()),
        })
    }

    fn structure(&self) -> &CompiledStructure {
        self.structure.get_or_init(|| {
            let graph = TreewidthWmc::circuit_graph(&self.prepared);
            let decomposition = decompose_with_heuristic(&graph, self.heuristic);
            CompiledStructure {
                width: decomposition.width(),
                bag_count: decomposition.bag_count(),
                nice: NiceDecomposition::from_decomposition(&decomposition),
                decomposition,
            }
        })
    }

    /// The compiled sweep plan over the circuit-graph decomposition, built
    /// on first use; `None` when the bags are too wide to plan densely
    /// (beyond [`MAX_PLANNED_BAG`] — the interpreted sweep still runs for
    /// counting, but plan-based consumers like the posterior-inference
    /// subsystem in `stuc-infer` must fall back or refuse) or when a
    /// transient failure (a tripped evaluation budget, an injected fault)
    /// interrupted the build this time.
    ///
    /// Callers enforcing an evaluation-time width budget should check
    /// [`CompiledCircuit::width`] themselves — the plan only refuses beyond
    /// its own dense-table bound.
    pub fn sweep_plan(&self) -> Option<&Arc<SweepPlan>> {
        self.try_sweep_plan().ok().flatten()
    }

    /// [`CompiledCircuit::sweep_plan`] with transient failures surfaced:
    /// only a built plan or the permanent too-wide refusal is memoized. A
    /// build interrupted by a budget trip or an injected fault returns the
    /// error and leaves the cell empty, so the next call — after the
    /// deadline is lifted or the fault cleared — builds the plan normally
    /// instead of inheriting a permanently degraded sweep.
    pub fn try_sweep_plan(&self) -> Result<Option<&Arc<SweepPlan>>, WmcError> {
        if let Some(cell) = self.plan.get() {
            return Ok(cell.as_ref());
        }
        let structure = self.structure();
        if structure.width + 1 > MAX_PLANNED_BAG {
            return Ok(self.plan.get_or_init(|| None).as_ref());
        }
        let plan = SweepPlan::build(&self.prepared, &structure.nice, self.output_gate)?;
        Ok(self.plan.get_or_init(|| Some(Arc::new(plan))).as_ref())
    }

    /// The original (uncompiled) lineage circuit.
    pub fn source(&self) -> &Arc<Circuit> {
        &self.source
    }

    /// Width of the tree decomposition of the prepared circuit graph — the
    /// quantity the engine's Auto policy compares against its width budget.
    pub fn width(&self) -> usize {
        self.structure().width
    }

    /// Number of bags in the (non-nice) decomposition of the circuit graph.
    pub fn bag_count(&self) -> usize {
        self.structure().bag_count
    }

    /// Gate count of the source circuit.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True if the source circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// The event variables read by the source circuit; a weight table must
    /// cover all of them for evaluation to succeed.
    pub fn variables(&self) -> &BTreeSet<VarId> {
        &self.variables
    }

    /// The elimination heuristic the circuit graph was decomposed with.
    pub fn heuristic(&self) -> EliminationHeuristic {
        self.heuristic
    }

    /// Rewires the input gates: variables in `pin_false` become `false`
    /// constants (the fact can never be present again — deletion), and every
    /// other input variable is renumbered through `remap` (identity when
    /// absent). Returns the patched circuit and the number of input gates
    /// rewired.
    ///
    /// Neither operation changes the circuit *topology*, so the cached
    /// circuit-graph decomposition — the superlinear part of compilation —
    /// is carried over verbatim: this is how a fact deletion patches a
    /// compiled lineage in O(circuit) instead of recompiling.
    ///
    /// `remap` must be injective on the surviving variables (the engine's
    /// deletion remap, which shifts identifiers down, is).
    pub fn rewire_inputs(
        &self,
        pin_false: &BTreeSet<VarId>,
        remap: &BTreeMap<VarId, VarId>,
    ) -> (CompiledCircuit, usize) {
        let mut rewired = 0usize;
        let rewire = |circuit: &Circuit, count: &mut usize| -> Circuit {
            let mut out = Circuit::new();
            for (_, gate) in circuit.iter() {
                let replacement = match gate {
                    Gate::Input(v) if pin_false.contains(v) => {
                        *count += 1;
                        Gate::Const(false)
                    }
                    Gate::Input(v) => match remap.get(v) {
                        Some(&to) => {
                            *count += 1;
                            Gate::Input(to)
                        }
                        None => Gate::Input(*v),
                    },
                    other => other.clone(),
                };
                // Identifiers are preserved one-to-one, so inputs need no
                // remapping; push through the arena directly.
                match replacement {
                    Gate::Input(v) => out.add_input(v),
                    Gate::Const(b) => out.add_const(b),
                    Gate::And(xs) => out.add_and(xs),
                    Gate::Or(xs) => out.add_or(xs),
                    Gate::Not(x) => out.add_not(x),
                };
            }
            if let Some(o) = circuit.output() {
                out.set_output(o);
            }
            out
        };
        let source = rewire(&self.source, &mut rewired);
        let mut prepared_rewired = 0usize;
        let prepared = rewire(&self.prepared, &mut prepared_rewired);
        let variables = source.variables();
        (
            CompiledCircuit {
                source: Arc::new(source),
                prepared,
                output_gate: self.output_gate,
                variables,
                heuristic: self.heuristic,
                // Topology is unchanged: the decomposition of the circuit
                // graph remains valid as-is.
                structure: self.structure.clone(),
                // The *plan* is not: pinned gates changed from `Input` to
                // `Const` and variables were renumbered, so the compiled
                // checks and multiplier slots of the dirty cone must be
                // re-derived. Re-planning is linear in the circuit and
                // happens lazily on the next counting run.
                plan: OnceLock::new(),
                arena: Mutex::new(SweepArena::new()),
            },
            prepared_rewired,
        )
    }

    /// Extends the compiled lineage with a delta circuit: the new output is
    /// `old_output OR delta_output`. This is the insertion patch — the delta
    /// holds the lineage of the *new* query matches only, and instead of
    /// recompiling, the appended gates (the dirty cone) are folded into the
    /// prepared circuit and the cached circuit-graph decomposition is
    /// repaired locally under the `max_bag_size` budget.
    ///
    /// Fails with [`PatchError`] when the delta has no output or the repair
    /// exceeds the budget; callers then fall back to a fresh compilation.
    pub fn extend_or(
        &self,
        delta: &Circuit,
        max_bag_size: usize,
    ) -> Result<(CompiledCircuit, ExtendReport), PatchError> {
        let delta_out = delta.output().ok_or(CircuitError::NoOutput)?;

        // New source: append the delta arena, OR the outputs.
        let mut source = self.source.as_ref().clone();
        let source_out = source.output().ok_or(CircuitError::NoOutput)?;
        let offset = source.len();
        for (_, gate) in delta.iter() {
            let shifted = match gate {
                Gate::Input(v) => Gate::Input(*v),
                Gate::Const(b) => Gate::Const(*b),
                Gate::And(xs) => Gate::And(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
                Gate::Or(xs) => Gate::Or(xs.iter().map(|g| GateId(g.0 + offset)).collect()),
                Gate::Not(x) => Gate::Not(GateId(x.0 + offset)),
            };
            match shifted {
                Gate::Input(v) => source.add_input(v),
                Gate::Const(b) => source.add_const(b),
                Gate::And(xs) => source.add_and(xs),
                Gate::Or(xs) => source.add_or(xs),
                Gate::Not(x) => source.add_not(x),
            };
        }
        let new_source_out = source.add_or(vec![source_out, GateId(delta_out.0 + offset)]);
        source.set_output(new_source_out);

        // New prepared circuit: existing gates keep their identifiers (this
        // is what makes the decomposition patchable); the binarised delta is
        // appended, sharing the existing per-variable input gates.
        let mut prepared = self.prepared.clone();
        let before = prepared.len();
        let mut input_of_var: BTreeMap<VarId, GateId> = BTreeMap::new();
        for (id, gate) in prepared.iter() {
            if let Gate::Input(v) = gate {
                input_of_var.entry(*v).or_insert(id);
            }
        }
        let delta_prepared = delta.binarize();
        let delta_prepared_out = delta_prepared
            .output()
            .expect("binarize preserves the output");
        let mut map: Vec<GateId> = Vec::with_capacity(delta_prepared.len());
        for (_, gate) in delta_prepared.iter() {
            let id = match gate {
                Gate::Input(v) => *input_of_var
                    .entry(*v)
                    .or_insert_with(|| prepared.add_input(*v)),
                Gate::Const(b) => prepared.add_const(*b),
                Gate::And(xs) => {
                    let inputs = xs.iter().map(|x| map[x.0]).collect();
                    prepared.add_and(inputs)
                }
                Gate::Or(xs) => {
                    let inputs = xs.iter().map(|x| map[x.0]).collect();
                    prepared.add_or(inputs)
                }
                Gate::Not(x) => prepared.add_not(map[x.0]),
            };
            map.push(id);
        }
        let old_out = GateId(self.output_gate);
        let new_out = prepared.add_or(vec![old_out, map[delta_prepared_out.0]]);
        prepared.set_output(new_out);

        let mut report = ExtendReport {
            gates_appended: prepared.len() - before,
            ..Default::default()
        };

        // Patch the cached decomposition, if one was ever built; otherwise
        // the grown circuit simply decomposes lazily like a fresh compile.
        let structure = match self.structure.get() {
            None => OnceLock::new(),
            Some(old) => {
                report.width_before = Some(old.width);
                let graph = TreewidthWmc::circuit_graph(&prepared);
                let cliques: Vec<Vec<VertexId>> = (before..prepared.len())
                    .map(|g| {
                        let mut clique = vec![VertexId(g)];
                        clique.extend(
                            prepared
                                .gate(GateId(g))
                                .inputs()
                                .iter()
                                .map(|x| VertexId(x.0)),
                        );
                        clique
                    })
                    .collect();
                let (patched, repair) =
                    repair_decomposition(&old.decomposition, &graph, &cliques, max_bag_size)?;
                report.bags_touched = repair.bags_touched;
                report.bags_added = repair.bags_added;
                report.width_after = Some(repair.width_after);
                let lock = OnceLock::new();
                let _ = lock.set(CompiledStructure {
                    width: patched.width(),
                    bag_count: patched.bag_count(),
                    nice: NiceDecomposition::from_decomposition(&patched),
                    decomposition: patched,
                });
                lock
            }
        };
        let variables = source.variables();
        Ok((
            CompiledCircuit {
                source: Arc::new(source),
                prepared,
                output_gate: new_out.0,
                variables,
                heuristic: self.heuristic,
                structure,
                // The appended dirty cone changed both the circuit and its
                // (repaired) decomposition: the plan is re-derived lazily.
                plan: OnceLock::new(),
                arena: Mutex::new(SweepArena::new()),
            },
            report,
        ))
    }

    /// Probability that the output gate is true under `weights`, refusing
    /// (like [`TreewidthWmc`]) when the cached decomposition's bag size
    /// exceeds `max_bag_size`.
    ///
    /// This is the weight-only fast path: no decomposition or circuit
    /// transformation happens here, just one message-passing sweep.
    pub fn probability(&self, weights: &Weights, max_bag_size: usize) -> Result<f64, WmcError> {
        self.run(weights, max_bag_size).map(|r| r.probability)
    }

    /// Enforces an evaluation-time width budget: refuses with
    /// [`WmcError::WidthTooLarge`] when the circuit-graph decomposition's
    /// bag size (width + 1) exceeds `max_bag_size`. The single refusal
    /// check every evaluation mode — counting, lanes, and the posterior
    /// inference in `stuc-infer` — shares.
    pub fn ensure_width(&self, max_bag_size: usize) -> Result<(), WmcError> {
        let width = self.structure().width;
        if width + 1 > max_bag_size {
            return Err(WmcError::WidthTooLarge {
                width,
                limit: max_bag_size,
            });
        }
        Ok(())
    }

    /// Like [`CompiledCircuit::probability`], but returns the full
    /// [`WmcReport`] with decomposition statistics.
    ///
    /// Runs the compiled dense-table sweep plan (built on first use, see
    /// [`crate::plan::SweepPlan`]); the sweep's scratch tables live in a
    /// reusable arena, so repeated evaluations — batch sweeps, what-if
    /// re-weighting, incremental-update revalidation — allocate nothing in
    /// steady state ([`WmcReport::table_allocations`] is 0).
    pub fn run(&self, weights: &Weights, max_bag_size: usize) -> Result<WmcReport, WmcError> {
        self.ensure_width(max_bag_size)?;
        let structure = self.structure();
        let Some(plan) = self.try_sweep_plan()?.cloned() else {
            return self.run_interpreted(weights, max_bag_size);
        };
        let (probability, table_allocations) = match self.arena.try_lock() {
            Ok(mut arena) => {
                let before = arena.allocations();
                let p = plan.run(weights, &mut arena)?;
                (p, arena.allocations() - before)
            }
            // Another thread is mid-sweep on this very value: run on a
            // throwaway arena rather than serializing the sweeps.
            Err(_) => {
                let mut arena = SweepArena::new();
                let p = plan.run(weights, &mut arena)?;
                (p, arena.allocations())
            }
        };
        sweep_metrics().observe(structure.nice.len(), table_allocations);
        Ok(WmcReport {
            probability,
            width: structure.width,
            bag_count: structure.bag_count,
            nice_node_count: structure.nice.len(),
            table_allocations,
        })
    }

    /// Like [`CompiledCircuit::run`], but forcing the legacy interpreted
    /// sweep (sparse `HashMap` tables, per-node constraint re-derivation).
    /// Kept as the reference implementation for differential testing and
    /// for the plan-vs-interpreted speedup benchmarks.
    pub fn run_interpreted(
        &self,
        weights: &Weights,
        max_bag_size: usize,
    ) -> Result<WmcReport, WmcError> {
        self.ensure_width(max_bag_size)?;
        let structure = self.structure();
        for &v in &self.variables {
            weights.weight(v, true)?;
        }
        let probability =
            message_passing(&self.prepared, weights, &structure.nice, self.output_gate)?;
        Ok(WmcReport {
            probability,
            width: structure.width,
            bag_count: structure.bag_count,
            nice_node_count: structure.nice.len(),
            table_allocations: structure.nice.len(),
        })
    }

    /// Evaluates K weight scenarios in a **single sweep**: every dense table
    /// slot carries K adjacent `f64` lanes, so the traversal, the mask
    /// permutations and the constraint checks are paid once for all K
    /// scenarios instead of once per scenario. The returned probabilities
    /// are bitwise identical to K separate [`CompiledCircuit::run`] calls.
    ///
    /// This is the engine's multi-scenario what-if fast path
    /// (`Engine::reevaluate_with_weights_many`). Falls back to K interpreted
    /// sweeps when the circuit's bags are too wide to plan.
    pub fn run_many(
        &self,
        scenarios: &[Weights],
        max_bag_size: usize,
    ) -> Result<WmcManyReport, WmcError> {
        self.ensure_width(max_bag_size)?;
        let structure = self.structure();
        let Some(plan) = self.try_sweep_plan()?.cloned() else {
            let mut probabilities = Vec::with_capacity(scenarios.len());
            for weights in scenarios {
                probabilities.push(self.run_interpreted(weights, max_bag_size)?.probability);
            }
            return Ok(WmcManyReport {
                probabilities,
                width: structure.width,
                bag_count: structure.bag_count,
                nice_node_count: structure.nice.len(),
                table_allocations: structure.nice.len() * scenarios.len(),
            });
        };
        // Lane counts are chunked: table memory is `8 << bag` bytes *per
        // lane*, so an unbounded K would multiply every dense table by the
        // scenario count. Chunks of `MAX_LANES_PER_SWEEP` keep the buffers
        // bounded while still amortizing the traversal 32-fold; each lane's
        // arithmetic order is unchanged, so results stay bitwise identical
        // to per-scenario runs at any K.
        let sweep_chunk =
            |chunk: &[Weights], arena: &mut SweepArena| -> Result<Vec<f64>, WmcError> {
                let refs: Vec<&Weights> = chunk.iter().collect();
                plan.run_many(&refs, arena)
            };
        let (probabilities, table_allocations) = match self.arena.try_lock() {
            Ok(mut arena) => {
                let before = arena.allocations();
                let mut all = Vec::with_capacity(scenarios.len());
                for chunk in scenarios.chunks(MAX_LANES_PER_SWEEP) {
                    all.extend(sweep_chunk(chunk, &mut arena)?);
                }
                (all, arena.allocations() - before)
            }
            Err(_) => {
                let mut arena = SweepArena::new();
                let mut all = Vec::with_capacity(scenarios.len());
                for chunk in scenarios.chunks(MAX_LANES_PER_SWEEP) {
                    all.extend(sweep_chunk(chunk, &mut arena)?);
                }
                (all, arena.allocations())
            }
        };
        sweep_metrics().observe(structure.nice.len(), table_allocations);
        Ok(WmcManyReport {
            probabilities,
            width: structure.width,
            bag_count: structure.bag_count,
            nice_node_count: structure.nice.len(),
            table_allocations,
        })
    }
}

/// Most scenario lanes one sweep carries; larger scenario sets are chunked
/// so dense-table memory stays bounded by `32 * 8 << bag` bytes per slot.
const MAX_LANES_PER_SWEEP: usize = 32;

/// Result of a multi-scenario sweep ([`CompiledCircuit::run_many`]): one
/// probability per input weight table, plus the shared structural
/// statistics of the single traversal that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct WmcManyReport {
    /// Probability of the output gate under each scenario, in input order.
    pub probabilities: Vec<f64>,
    /// Width of the tree decomposition used.
    pub width: usize,
    /// Number of bags in the (non-nice) decomposition.
    pub bag_count: usize,
    /// Number of nodes in the nice decomposition traversed (once, for all
    /// scenarios).
    pub nice_node_count: usize,
    /// Table buffers (re)allocated by this sweep; 0 in steady state.
    pub table_allocations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::enumeration::probability_by_enumeration;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn compiled_probability_matches_uncompiled_wmc() {
        for seed in 0..10 {
            let circuit = builder::random_circuit(8, 14, seed);
            let weights = Weights::uniform(circuit.variables(), 0.35);
            let direct = TreewidthWmc::default()
                .probability(&circuit, &weights)
                .unwrap();
            let compiled =
                CompiledCircuit::compile(Arc::new(circuit), EliminationHeuristic::MinDegree)
                    .unwrap();
            assert_close(compiled.probability(&weights, 22).unwrap(), direct);
        }
    }

    #[test]
    fn run_many_chunks_large_scenario_sets() {
        // 70 scenarios span three lane chunks; every lane must still be
        // bitwise identical to its single-scenario run.
        let circuit = builder::conjunction_of_disjunctions(4, 2);
        let compiled =
            CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default()).unwrap();
        let scenarios: Vec<Weights> = (0..70)
            .map(|k| Weights::uniform(circuit.variables(), (k as f64 + 1.0) / 72.0))
            .collect();
        let many = compiled.run_many(&scenarios, 22).unwrap();
        assert_eq!(many.probabilities.len(), 70);
        for (weights, &lane) in scenarios.iter().zip(&many.probabilities) {
            let single = compiled.run(weights, 22).unwrap();
            assert_eq!(single.probability.to_bits(), lane.to_bits());
        }
    }

    #[test]
    fn reweighting_reuses_the_compiled_structure() {
        let circuit = builder::conjunction_of_disjunctions(5, 2);
        let vars: Vec<VarId> = circuit.variables().into_iter().collect();
        let compiled = CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default())
            .expect("compiles");
        for p in [0.1, 0.5, 0.9] {
            let weights = Weights::uniform(vars.iter().copied(), p);
            let expected = probability_by_enumeration(&circuit, &weights).unwrap();
            assert_close(compiled.probability(&weights, 22).unwrap(), expected);
        }
    }

    #[test]
    fn width_budget_is_enforced_at_evaluation_time() {
        let circuit = builder::majority_like_dense_circuit(12, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let compiled =
            CompiledCircuit::compile(Arc::new(circuit), Default::default()).expect("compiles");
        assert!(matches!(
            compiled.run(&weights, 2),
            Err(WmcError::WidthTooLarge { .. })
        ));
        // The same compiled circuit still runs under a generous budget.
        assert!(compiled.run(&weights, 64).is_ok());
    }

    #[test]
    fn missing_output_is_rejected_at_compile_time() {
        let mut circuit = Circuit::new();
        circuit.add_input(VarId(0));
        assert_eq!(
            CompiledCircuit::compile(Arc::new(circuit), Default::default()).unwrap_err(),
            CircuitError::NoOutput
        );
    }

    #[test]
    fn rewire_inputs_pins_and_renumbers_without_redecomposing() {
        // Lineage of "two consecutive facts" on a 4-fact chain:
        // (x0 & x1) | (x1 & x2) | (x2 & x3).
        let mut circuit = Circuit::new();
        let xs: Vec<_> = (0..4).map(|i| circuit.add_input(VarId(i))).collect();
        let pairs: Vec<_> = (0..3)
            .map(|i| circuit.add_and(vec![xs[i], xs[i + 1]]))
            .collect();
        let or = circuit.add_or(pairs);
        circuit.set_output(or);
        let compiled =
            CompiledCircuit::compile(Arc::new(circuit), EliminationHeuristic::MinDegree).unwrap();
        let width = compiled.width(); // force the decomposition

        // Delete fact 1: pin x1 false, shift x2 -> x1, x3 -> x2.
        let pins = BTreeSet::from([VarId(1)]);
        let remap = BTreeMap::from([(VarId(2), VarId(1)), (VarId(3), VarId(2))]);
        let (patched, rewired) = compiled.rewire_inputs(&pins, &remap);
        assert!(rewired >= 3);
        assert_eq!(patched.width(), width, "structure carried over verbatim");
        assert_eq!(
            patched.variables(),
            &BTreeSet::from([VarId(0), VarId(1), VarId(2)])
        );

        // Equivalent fresh lineage on the 3 surviving facts: only the pair
        // (old x2, old x3) = (new x1, new x2) remains.
        let mut expected = Circuit::new();
        let y1 = expected.add_input(VarId(1));
        let y2 = expected.add_input(VarId(2));
        let and = expected.add_and(vec![y1, y2]);
        expected.set_output(and);
        for p in [0.2, 0.5, 0.8] {
            let weights = Weights::uniform([VarId(0), VarId(1), VarId(2)], p);
            let want = probability_by_enumeration(&expected, &weights).unwrap();
            assert_close(patched.probability(&weights, 22).unwrap(), want);
        }
    }

    #[test]
    fn extend_or_patches_the_cached_decomposition() {
        // Old lineage: x0 & x1. Delta (new matches): x1 & x2.
        let mut old = Circuit::new();
        let x0 = old.add_input(VarId(0));
        let x1 = old.add_input(VarId(1));
        let and = old.add_and(vec![x0, x1]);
        old.set_output(and);
        let compiled =
            CompiledCircuit::compile(Arc::new(old), EliminationHeuristic::MinDegree).unwrap();
        let _ = compiled.width(); // structure is built, so the patch must repair it

        let mut delta = Circuit::new();
        let d1 = delta.add_input(VarId(1));
        let d2 = delta.add_input(VarId(2));
        let dand = delta.add_and(vec![d1, d2]);
        delta.set_output(dand);

        let (patched, report) = compiled.extend_or(&delta, 22).unwrap();
        assert!(report.gates_appended > 0);
        assert!(report.width_before.is_some() && report.width_after.is_some());

        // Agreement with the full OR circuit by enumeration.
        let mut full = Circuit::new();
        let y0 = full.add_input(VarId(0));
        let y1 = full.add_input(VarId(1));
        let y2 = full.add_input(VarId(2));
        let a = full.add_and(vec![y0, y1]);
        let b = full.add_and(vec![y1, y2]);
        let or = full.add_or(vec![a, b]);
        full.set_output(or);
        for p in [0.25, 0.5, 0.75] {
            let weights = Weights::uniform([VarId(0), VarId(1), VarId(2)], p);
            let want = probability_by_enumeration(&full, &weights).unwrap();
            assert_close(patched.probability(&weights, 22).unwrap(), want);
        }
        // Repeated extension keeps working (patch of a patch).
        let mut delta2 = Circuit::new();
        let e = delta2.add_input(VarId(3));
        delta2.set_output(e);
        let (patched2, _) = patched.extend_or(&delta2, 22).unwrap();
        let weights = Weights::uniform([VarId(0), VarId(1), VarId(2), VarId(3)], 0.5);
        // P((x0&x1)|(x1&x2)|x3) = 1 - (1 - 0.375) * 0.5 = 0.6875.
        assert_close(patched2.probability(&weights, 22).unwrap(), 0.6875);
    }

    #[test]
    fn extend_or_is_lazy_when_no_structure_was_built() {
        let mut old = Circuit::new();
        let x = old.add_input(VarId(0));
        old.set_output(x);
        let compiled = CompiledCircuit::compile(Arc::new(old), Default::default()).unwrap();
        let mut delta = Circuit::new();
        let y = delta.add_input(VarId(1));
        delta.set_output(y);
        let (patched, report) = compiled.extend_or(&delta, 22).unwrap();
        assert_eq!(report.width_before, None);
        assert_eq!(report.width_after, None);
        let weights = Weights::uniform([VarId(0), VarId(1)], 0.5);
        assert_close(patched.probability(&weights, 22).unwrap(), 0.75);
    }

    #[test]
    fn extend_or_refuses_on_budget_and_missing_output() {
        let mut old = Circuit::new();
        let x = old.add_input(VarId(0));
        old.set_output(x);
        let compiled = CompiledCircuit::compile(Arc::new(old), Default::default()).unwrap();
        let _ = compiled.width();
        let mut no_output = Circuit::new();
        no_output.add_input(VarId(1));
        assert!(matches!(
            compiled.extend_or(&no_output, 22),
            Err(PatchError::Circuit(CircuitError::NoOutput))
        ));
        // A bag-size budget of 1 cannot host the OR clique: repair refuses.
        let mut delta = Circuit::new();
        let y = delta.add_input(VarId(1));
        delta.set_output(y);
        assert!(matches!(
            compiled.extend_or(&delta, 1),
            Err(PatchError::Repair(_))
        ));
    }

    #[test]
    fn clones_share_the_source_arc() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        circuit.set_output(x);
        let compiled = CompiledCircuit::compile(Arc::new(circuit), Default::default()).unwrap();
        let clone = compiled.clone();
        assert!(Arc::ptr_eq(compiled.source(), clone.source()));
        assert_eq!(compiled.len(), 1);
        assert!(!compiled.is_empty());
        assert_eq!(compiled.variables().len(), 1);
    }
}
