//! Compiled lineage circuits: share once, re-weight many times.
//!
//! The paper's pipeline factors query evaluation into a *structural* phase
//! (decompose the instance, run the automaton, build the lineage circuit,
//! decompose the circuit graph) and a *numerical* phase (propagate the
//! probability weights through the decomposition). Only the numerical phase
//! depends on the probabilities — so when fact probabilities change (what-if
//! analysis, conditioning, weight learning loops), everything structural can
//! be reused verbatim.
//!
//! A [`CompiledCircuit`] is that reusable structural state: the source
//! lineage circuit behind an [`Arc`] (cheap to share across threads and
//! cache entries), its normalised form for message passing, and the nice
//! tree decomposition of its circuit graph. Re-evaluating under a new
//! [`Weights`] table is a single message-passing sweep — no decomposition,
//! no circuit construction, no binarisation.

use crate::circuit::{Circuit, CircuitError, VarId};
use crate::weights::Weights;
use crate::wmc::{message_passing, TreewidthWmc, WmcError, WmcReport};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::nice::NiceDecomposition;

/// A lineage circuit compiled for repeated probability evaluation.
///
/// Compilation runs the structural half of the treewidth back-end once:
/// input-gate deduplication, binarisation, circuit-graph construction and
/// tree decomposition. Every subsequent [`CompiledCircuit::probability`]
/// call pays only for message passing, which is what makes weight-only
/// re-evaluation (`Engine::reevaluate_with_weights`) and shared batch
/// caches cheap.
///
/// The source circuit is held behind an [`Arc`], so clones of a
/// `CompiledCircuit` (e.g. cache entries handed to worker threads) share
/// every structure instead of deep-copying gate arenas.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    source: Arc<Circuit>,
    prepared: Circuit,
    output_gate: usize,
    variables: BTreeSet<VarId>,
    heuristic: EliminationHeuristic,
    /// The decomposition of the circuit graph, built on first use: callers
    /// that never run the treewidth back-end (a pinned DPLL engine, say)
    /// skip its cost entirely, and once built it is reused by every
    /// subsequent run.
    structure: OnceLock<CompiledStructure>,
}

/// The lazily-built decomposition state of a [`CompiledCircuit`].
#[derive(Debug, Clone)]
struct CompiledStructure {
    nice: NiceDecomposition,
    width: usize,
    bag_count: usize,
}

impl CompiledCircuit {
    /// Compiles `source` for repeated evaluation; its circuit graph is
    /// decomposed with `heuristic` on first use.
    ///
    /// Fails with [`CircuitError::NoOutput`] if the circuit has no
    /// designated output gate. Wide circuits still compile — the width
    /// budget is checked at evaluation time, so callers (like the engine's
    /// Auto policy) can inspect [`CompiledCircuit::width`] and route wide
    /// circuits to a width-oblivious back-end instead.
    pub fn compile(
        source: Arc<Circuit>,
        heuristic: EliminationHeuristic,
    ) -> Result<Self, CircuitError> {
        source.output().ok_or(CircuitError::NoOutput)?;
        let prepared = TreewidthWmc::prepare(&source);
        let output_gate = prepared.output().ok_or(CircuitError::NoOutput)?.index();
        let variables = source.variables();
        Ok(CompiledCircuit {
            source,
            prepared,
            output_gate,
            variables,
            heuristic,
            structure: OnceLock::new(),
        })
    }

    fn structure(&self) -> &CompiledStructure {
        self.structure.get_or_init(|| {
            let graph = TreewidthWmc::circuit_graph(&self.prepared);
            let decomposition = decompose_with_heuristic(&graph, self.heuristic);
            CompiledStructure {
                width: decomposition.width(),
                bag_count: decomposition.bag_count(),
                nice: NiceDecomposition::from_decomposition(&decomposition),
            }
        })
    }

    /// The original (uncompiled) lineage circuit.
    pub fn source(&self) -> &Arc<Circuit> {
        &self.source
    }

    /// Width of the tree decomposition of the prepared circuit graph — the
    /// quantity the engine's Auto policy compares against its width budget.
    pub fn width(&self) -> usize {
        self.structure().width
    }

    /// Number of bags in the (non-nice) decomposition of the circuit graph.
    pub fn bag_count(&self) -> usize {
        self.structure().bag_count
    }

    /// Gate count of the source circuit.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True if the source circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// The event variables read by the source circuit; a weight table must
    /// cover all of them for evaluation to succeed.
    pub fn variables(&self) -> &BTreeSet<VarId> {
        &self.variables
    }

    /// The elimination heuristic the circuit graph was decomposed with.
    pub fn heuristic(&self) -> EliminationHeuristic {
        self.heuristic
    }

    /// Probability that the output gate is true under `weights`, refusing
    /// (like [`TreewidthWmc`]) when the cached decomposition's bag size
    /// exceeds `max_bag_size`.
    ///
    /// This is the weight-only fast path: no decomposition or circuit
    /// transformation happens here, just one message-passing sweep.
    pub fn probability(&self, weights: &Weights, max_bag_size: usize) -> Result<f64, WmcError> {
        self.run(weights, max_bag_size).map(|r| r.probability)
    }

    /// Like [`CompiledCircuit::probability`], but returns the full
    /// [`WmcReport`] with decomposition statistics.
    pub fn run(&self, weights: &Weights, max_bag_size: usize) -> Result<WmcReport, WmcError> {
        let structure = self.structure();
        if structure.width + 1 > max_bag_size {
            return Err(WmcError::WidthTooLarge {
                width: structure.width,
                limit: max_bag_size,
            });
        }
        for &v in &self.variables {
            weights.weight(v, true)?;
        }
        let probability =
            message_passing(&self.prepared, weights, &structure.nice, self.output_gate)?;
        Ok(WmcReport {
            probability,
            width: structure.width,
            bag_count: structure.bag_count,
            nice_node_count: structure.nice.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::enumeration::probability_by_enumeration;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn compiled_probability_matches_uncompiled_wmc() {
        for seed in 0..10 {
            let circuit = builder::random_circuit(8, 14, seed);
            let weights = Weights::uniform(circuit.variables(), 0.35);
            let direct = TreewidthWmc::default()
                .probability(&circuit, &weights)
                .unwrap();
            let compiled =
                CompiledCircuit::compile(Arc::new(circuit), EliminationHeuristic::MinDegree)
                    .unwrap();
            assert_close(compiled.probability(&weights, 22).unwrap(), direct);
        }
    }

    #[test]
    fn reweighting_reuses_the_compiled_structure() {
        let circuit = builder::conjunction_of_disjunctions(5, 2);
        let vars: Vec<VarId> = circuit.variables().into_iter().collect();
        let compiled = CompiledCircuit::compile(Arc::new(circuit.clone()), Default::default())
            .expect("compiles");
        for p in [0.1, 0.5, 0.9] {
            let weights = Weights::uniform(vars.iter().copied(), p);
            let expected = probability_by_enumeration(&circuit, &weights).unwrap();
            assert_close(compiled.probability(&weights, 22).unwrap(), expected);
        }
    }

    #[test]
    fn width_budget_is_enforced_at_evaluation_time() {
        let circuit = builder::majority_like_dense_circuit(12, 3);
        let weights = Weights::uniform(circuit.variables(), 0.5);
        let compiled =
            CompiledCircuit::compile(Arc::new(circuit), Default::default()).expect("compiles");
        assert!(matches!(
            compiled.run(&weights, 2),
            Err(WmcError::WidthTooLarge { .. })
        ));
        // The same compiled circuit still runs under a generous budget.
        assert!(compiled.run(&weights, 64).is_ok());
    }

    #[test]
    fn missing_output_is_rejected_at_compile_time() {
        let mut circuit = Circuit::new();
        circuit.add_input(VarId(0));
        assert_eq!(
            CompiledCircuit::compile(Arc::new(circuit), Default::default()).unwrap_err(),
            CircuitError::NoOutput
        );
    }

    #[test]
    fn clones_share_the_source_arc() {
        let mut circuit = Circuit::new();
        let x = circuit.add_input(VarId(0));
        circuit.set_output(x);
        let compiled = CompiledCircuit::compile(Arc::new(circuit), Default::default()).unwrap();
        let clone = compiled.clone();
        assert!(Arc::ptr_eq(compiled.source(), clone.source()));
        assert_eq!(compiled.len(), 1);
        assert!(!compiled.is_empty());
        assert_eq!(compiled.variables().len(), 1);
    }
}
