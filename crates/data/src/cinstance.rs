//! c-instances and pc-instances.
//!
//! A **c-instance** (Imieliński–Lipski, Green–Tannen) is a relational
//! instance whose facts carry propositional annotations over Boolean events:
//! each event valuation defines one possible world, obtained by keeping the
//! facts whose annotation evaluates to true. A **pc-instance** additionally
//! assigns independent probabilities to the events, inducing a probability
//! distribution on the possible worlds. The paper's Table 1 is a c-instance
//! over the events `pods` and `stoc`.

use crate::formula::Formula;
use crate::instance::{FactId, Instance};
use std::collections::BTreeMap;
use stuc_circuit::circuit::VarId;
use stuc_circuit::weights::Weights;

/// A dictionary interning event names to variable identifiers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventDictionary {
    names: Vec<String>,
    index: BTreeMap<String, VarId>,
}

impl EventDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an event name.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = VarId(self.names.len());
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), v);
        v
    }

    /// Looks up an event without interning.
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of an event.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no event has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all event variables.
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        (0..self.names.len()).map(VarId)
    }
}

/// A c-instance: an instance whose facts carry annotation formulas over
/// named Boolean events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CInstance {
    instance: Instance,
    annotations: Vec<Formula>,
    events: EventDictionary,
}

impl CInstance {
    /// Creates an empty c-instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying (certain) relational instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The event dictionary.
    pub fn events(&self) -> &EventDictionary {
        &self.events
    }

    /// Mutable access to the event dictionary (to pre-declare events).
    pub fn events_mut(&mut self) -> &mut EventDictionary {
        &mut self.events
    }

    /// Adds a fact with an explicit annotation formula.
    pub fn add_annotated_fact(
        &mut self,
        relation: &str,
        args: &[&str],
        annotation: Formula,
    ) -> FactId {
        let id = self.instance.add_fact_named(relation, args);
        self.annotations.push(annotation);
        id
    }

    /// Adds a fact annotated with a formula given in the textual syntax of
    /// [`Formula::parse`]; event names are interned into this instance's
    /// dictionary.
    pub fn add_fact_with_condition(
        &mut self,
        relation: &str,
        args: &[&str],
        condition: &str,
    ) -> Result<FactId, crate::formula::FormulaParseError> {
        let events = &mut self.events;
        let formula = Formula::parse(condition, |name| events.intern(name))?;
        Ok(self.add_annotated_fact(relation, args, formula))
    }

    /// Adds a certain fact (annotation `true`).
    pub fn add_certain_fact(&mut self, relation: &str, args: &[&str]) -> FactId {
        self.add_annotated_fact(relation, args, Formula::True)
    }

    /// The annotation of a fact.
    pub fn annotation(&self, f: FactId) -> &Formula {
        &self.annotations[f.0]
    }

    /// Replaces the annotation of a fact (used by conditioning).
    pub fn set_annotation(&mut self, f: FactId, annotation: Formula) {
        self.annotations[f.0] = annotation;
    }

    /// Removes a fact together with its annotation. Later facts shift down
    /// by one (see [`Instance::remove_fact`]); interned events are kept.
    ///
    /// # Panics
    ///
    /// Panics if the fact does not exist.
    pub fn remove_fact(&mut self, f: FactId) -> Formula {
        self.instance.remove_fact(f);
        self.annotations.remove(f.0)
    }

    /// The facts present in the possible world defined by an event valuation.
    pub fn world(&self, valuation: &BTreeMap<VarId, bool>) -> Vec<FactId> {
        self.instance
            .facts()
            .map(|(id, _)| id)
            .filter(|id| self.annotations[id.0].evaluate(valuation))
            .collect()
    }

    /// Materialises the possible world defined by a valuation as a plain
    /// instance (same interned names, only the retained facts).
    pub fn world_instance(&self, valuation: &BTreeMap<VarId, bool>) -> Instance {
        let mut world = Instance::new();
        for (id, fact) in self.instance.facts() {
            if !self.annotations[id.0].evaluate(valuation) {
                continue;
            }
            let relation = self.instance.relation_name(fact.relation);
            let args: Vec<&str> = fact
                .args
                .iter()
                .map(|&c| self.instance.constant_name(c))
                .collect();
            world.add_fact_named(relation, &args);
        }
        world
    }

    /// Attaches independent probabilities to the events, yielding a
    /// pc-instance.
    pub fn with_probabilities(self, probabilities: Weights) -> PcInstance {
        PcInstance {
            cinstance: self,
            probabilities,
        }
    }

    /// The paper's Table 1: trips to book depending on which conferences the
    /// researcher attends (PODS in Melbourne, STOC in Portland).
    pub fn table1_example() -> CInstance {
        let mut ci = CInstance::new();
        ci.add_fact_with_condition("Trip", &["Paris_CDG", "Melbourne_MEL"], "pods")
            .expect("valid annotation");
        ci.add_fact_with_condition("Trip", &["Melbourne_MEL", "Paris_CDG"], "pods & !stoc")
            .expect("valid annotation");
        ci.add_fact_with_condition("Trip", &["Melbourne_MEL", "Portland_PDX"], "pods & stoc")
            .expect("valid annotation");
        ci.add_fact_with_condition("Trip", &["Paris_CDG", "Portland_PDX"], "!pods & stoc")
            .expect("valid annotation");
        ci.add_fact_with_condition("Trip", &["Portland_PDX", "Paris_CDG"], "stoc")
            .expect("valid annotation");
        ci
    }
}

/// A pc-instance: a c-instance plus independent event probabilities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcInstance {
    cinstance: CInstance,
    probabilities: Weights,
}

impl PcInstance {
    /// The underlying c-instance.
    pub fn cinstance(&self) -> &CInstance {
        &self.cinstance
    }

    /// Mutable access to the underlying c-instance (used by the incremental
    /// update subsystem to insert and remove annotated facts in place).
    pub fn cinstance_mut(&mut self) -> &mut CInstance {
        &mut self.cinstance
    }

    /// The underlying relational instance.
    pub fn instance(&self) -> &Instance {
        self.cinstance.instance()
    }

    /// The event probabilities.
    pub fn probabilities(&self) -> &Weights {
        &self.probabilities
    }

    /// Mutable access to the event probabilities (used by conditioning).
    pub fn probabilities_mut(&mut self) -> &mut Weights {
        &mut self.probabilities
    }

    /// Number of declared events.
    pub fn event_count(&self) -> usize {
        self.cinstance.events().len()
    }

    /// True if every event used by an annotation has a probability.
    pub fn is_fully_weighted(&self) -> bool {
        self.cinstance
            .events()
            .variables()
            .all(|v| self.probabilities.get(v).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valuation(pairs: &[(usize, bool)]) -> BTreeMap<VarId, bool> {
        pairs.iter().map(|&(v, b)| (VarId(v), b)).collect()
    }

    #[test]
    fn event_dictionary_interns_stably() {
        let mut d = EventDictionary::new();
        let a = d.intern("pods");
        let b = d.intern("stoc");
        assert_eq!(d.intern("pods"), a);
        assert_ne!(a, b);
        assert_eq!(d.name(a), "pods");
        assert_eq!(d.find("stoc"), Some(b));
        assert_eq!(d.find("icdt"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn table1_has_five_facts_and_two_events() {
        let ci = CInstance::table1_example();
        assert_eq!(ci.instance().fact_count(), 5);
        assert_eq!(ci.events().len(), 2);
    }

    #[test]
    fn table1_worlds_match_the_paper() {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();

        // Attending only PODS: book CDG→MEL and MEL→CDG.
        let world = ci.world(&valuation(&[(pods.0, true), (stoc.0, false)]));
        assert_eq!(world.len(), 2);

        // Attending both: CDG→MEL, MEL→PDX, PDX→CDG.
        let world = ci.world(&valuation(&[(pods.0, true), (stoc.0, true)]));
        assert_eq!(world.len(), 3);

        // Attending only STOC: CDG→PDX and PDX→CDG.
        let world = ci.world(&valuation(&[(pods.0, false), (stoc.0, true)]));
        assert_eq!(world.len(), 2);

        // Attending neither: no trips.
        let world = ci.world(&valuation(&[(pods.0, false), (stoc.0, false)]));
        assert!(world.is_empty());
    }

    #[test]
    fn world_instance_materialises_facts() {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let world = ci.world_instance(&valuation(&[(pods.0, true), (stoc.0, true)]));
        assert_eq!(world.fact_count(), 3);
        let trip = world.find_relation("Trip").unwrap();
        assert_eq!(world.facts_of(trip).len(), 3);
    }

    #[test]
    fn certain_facts_appear_in_every_world() {
        let mut ci = CInstance::new();
        ci.add_certain_fact("R", &["a"]);
        ci.add_fact_with_condition("R", &["b"], "e").unwrap();
        let empty = ci.world(&BTreeMap::new());
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn set_annotation_overrides() {
        let mut ci = CInstance::new();
        let f = ci.add_certain_fact("R", &["a"]);
        ci.set_annotation(f, Formula::False);
        assert!(ci.world(&BTreeMap::new()).is_empty());
    }

    #[test]
    fn pc_instance_weighting() {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let mut w = Weights::new();
        w.set(pods, 0.7);
        let pc = ci.with_probabilities(w);
        assert!(!pc.is_fully_weighted());
        let mut pc = pc;
        pc.probabilities_mut().set(stoc, 0.4);
        assert!(pc.is_fully_weighted());
        assert_eq!(pc.event_count(), 2);
    }

    #[test]
    fn invalid_condition_reports_parse_error() {
        let mut ci = CInstance::new();
        assert!(ci.add_fact_with_condition("R", &["a"], "e &").is_err());
    }
}
