//! Plain relational instances over interned constants.
//!
//! An [`Instance`] is a bag of ground facts `R(c₁, …, cₖ)`. Constants and
//! relation names are interned to dense identifiers so that the structural
//! algorithms (Gaifman graphs, tree decompositions, tree encodings) can work
//! with plain indices.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use stuc_graph::graph::{Graph, VertexId};

/// An interned relation name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub usize);

/// An interned constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstId(pub usize);

/// The position of a fact within its instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub usize);

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A ground fact: a relation applied to constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The relation symbol.
    pub relation: RelId,
    /// The arguments, in order.
    pub args: Vec<ConstId>,
}

/// A relational instance: interned vocabulary plus a list of facts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Instance {
    relation_names: Vec<String>,
    relation_index: BTreeMap<String, RelId>,
    constant_names: Vec<String>,
    constant_index: BTreeMap<String, ConstId>,
    facts: Vec<Fact>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a relation name.
    pub fn relation(&mut self, name: &str) -> RelId {
        if let Some(&id) = self.relation_index.get(name) {
            return id;
        }
        let id = RelId(self.relation_names.len());
        self.relation_names.push(name.to_string());
        self.relation_index.insert(name.to_string(), id);
        id
    }

    /// Interns a constant name.
    pub fn constant(&mut self, name: &str) -> ConstId {
        if let Some(&id) = self.constant_index.get(name) {
            return id;
        }
        let id = ConstId(self.constant_names.len());
        self.constant_names.push(name.to_string());
        self.constant_index.insert(name.to_string(), id);
        id
    }

    /// Looks up a relation by name without interning.
    pub fn find_relation(&self, name: &str) -> Option<RelId> {
        self.relation_index.get(name).copied()
    }

    /// Looks up a constant by name without interning.
    pub fn find_constant(&self, name: &str) -> Option<ConstId> {
        self.constant_index.get(name).copied()
    }

    /// The name of a relation.
    pub fn relation_name(&self, r: RelId) -> &str {
        &self.relation_names[r.0]
    }

    /// The name of a constant.
    pub fn constant_name(&self, c: ConstId) -> &str {
        &self.constant_names[c.0]
    }

    /// Number of distinct constants.
    pub fn constant_count(&self) -> usize {
        self.constant_names.len()
    }

    /// Number of distinct relation symbols.
    pub fn relation_count(&self) -> usize {
        self.relation_names.len()
    }

    /// Adds a fact from already-interned identifiers and returns its id.
    pub fn add_fact(&mut self, relation: RelId, args: Vec<ConstId>) -> FactId {
        self.facts.push(Fact { relation, args });
        FactId(self.facts.len() - 1)
    }

    /// Adds a fact given by names, interning as needed.
    pub fn add_fact_named(&mut self, relation: &str, args: &[&str]) -> FactId {
        let r = self.relation(relation);
        let a = args.iter().map(|s| self.constant(s)).collect();
        self.add_fact(r, a)
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Removes a fact, returning it. Later facts shift down by one, so every
    /// `FactId` greater than `f` now names the next fact — callers that hold
    /// fact identifiers across a removal must renumber them (the incremental
    /// update subsystem does exactly this). Interned constants and relation
    /// names are never removed.
    ///
    /// # Panics
    ///
    /// Panics if the fact does not exist.
    pub fn remove_fact(&mut self, f: FactId) -> Fact {
        self.facts.remove(f.0)
    }

    /// Access a fact by id.
    pub fn fact(&self, f: FactId) -> &Fact {
        &self.facts[f.0]
    }

    /// Iterator over `(id, fact)`.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().enumerate().map(|(i, f)| (FactId(i), f))
    }

    /// All fact ids of a given relation.
    pub fn facts_of(&self, relation: RelId) -> Vec<FactId> {
        self.facts()
            .filter(|(_, f)| f.relation == relation)
            .map(|(id, _)| id)
            .collect()
    }

    /// True if the instance contains the exact fact.
    pub fn contains(&self, relation: RelId, args: &[ConstId]) -> bool {
        self.facts
            .iter()
            .any(|f| f.relation == relation && f.args == args)
    }

    /// Renders a fact for debugging and examples, e.g. `R(a, b)`.
    pub fn render_fact(&self, f: FactId) -> String {
        let fact = self.fact(f);
        let args: Vec<&str> = fact.args.iter().map(|&c| self.constant_name(c)).collect();
        format!("{}({})", self.relation_name(fact.relation), args.join(", "))
    }

    /// The Gaifman graph over *constants*: one vertex per constant, and a
    /// clique over the constants of every fact. Its treewidth is the
    /// treewidth the paper's Theorem 1 refers to ("the treewidth of a TID
    /// \[is\] that of its underlying relational instance").
    pub fn gaifman_graph(&self) -> Graph {
        let mut g = Graph::with_vertices(self.constant_count());
        for fact in &self.facts {
            let clique: Vec<VertexId> = fact
                .args
                .iter()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .map(|c| VertexId(c.0))
                .collect();
            g.add_clique(&clique);
        }
        g
    }

    /// The *fact graph*: one vertex per fact, with an edge between two facts
    /// that share a constant. Used by the tree-encoding step, which needs to
    /// place facts into bags of a decomposition.
    pub fn fact_graph(&self) -> Graph {
        let mut g = Graph::with_vertices(self.fact_count());
        // Group facts by constant to avoid the quadratic all-pairs scan.
        let mut by_constant: BTreeMap<ConstId, Vec<usize>> = BTreeMap::new();
        for (i, fact) in self.facts.iter().enumerate() {
            for &c in &fact.args {
                by_constant.entry(c).or_default().push(i);
            }
        }
        for (_, fact_ids) in by_constant {
            let clique: Vec<VertexId> = fact_ids
                .iter()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .map(|&i| VertexId(i))
                .collect();
            g.add_clique(&clique);
        }
        g
    }

    /// The set of constants used by a set of facts.
    pub fn constants_of_facts(&self, facts: &[FactId]) -> BTreeSet<ConstId> {
        facts
            .iter()
            .flat_map(|f| self.fact(*f).args.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_graph::exact::exact_treewidth;

    fn path_instance(n: usize) -> Instance {
        // R(c0, c1), R(c1, c2), ..., a path: Gaifman graph is a path.
        let mut inst = Instance::new();
        for i in 0..n {
            inst.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)]);
        }
        inst
    }

    #[test]
    fn interning_is_stable() {
        let mut inst = Instance::new();
        let r1 = inst.relation("R");
        let r2 = inst.relation("R");
        assert_eq!(r1, r2);
        let c1 = inst.constant("a");
        let c2 = inst.constant("a");
        assert_eq!(c1, c2);
        assert_eq!(inst.relation_name(r1), "R");
        assert_eq!(inst.constant_name(c1), "a");
    }

    #[test]
    fn add_and_lookup_facts() {
        let mut inst = Instance::new();
        let f = inst.add_fact_named("R", &["a", "b"]);
        assert_eq!(inst.fact_count(), 1);
        assert_eq!(inst.render_fact(f), "R(a, b)");
        let r = inst.find_relation("R").unwrap();
        let a = inst.find_constant("a").unwrap();
        let b = inst.find_constant("b").unwrap();
        assert!(inst.contains(r, &[a, b]));
        assert!(!inst.contains(r, &[b, a]));
    }

    #[test]
    fn facts_of_relation() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a", "b"]);
        inst.add_fact_named("S", &["a"]);
        inst.add_fact_named("R", &["b", "c"]);
        let r = inst.find_relation("R").unwrap();
        assert_eq!(inst.facts_of(r).len(), 2);
    }

    #[test]
    fn gaifman_graph_of_path_instance_is_a_path() {
        let inst = path_instance(5);
        let g = inst.gaifman_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(exact_treewidth(&g), Some(1));
    }

    #[test]
    fn gaifman_graph_of_triangle() {
        let mut inst = Instance::new();
        inst.add_fact_named("E", &["a", "b"]);
        inst.add_fact_named("E", &["b", "c"]);
        inst.add_fact_named("E", &["c", "a"]);
        let g = inst.gaifman_graph();
        assert_eq!(exact_treewidth(&g), Some(2));
    }

    #[test]
    fn gaifman_handles_repeated_arguments() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["a", "a"]);
        let g = inst.gaifman_graph();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fact_graph_links_facts_sharing_constants() {
        let inst = path_instance(4);
        let g = inst.fact_graph();
        // Consecutive path facts share a constant.
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn fact_graph_of_star_shaped_joins() {
        let mut inst = Instance::new();
        inst.add_fact_named("R", &["hub", "x"]);
        inst.add_fact_named("R", &["hub", "y"]);
        inst.add_fact_named("R", &["hub", "z"]);
        let g = inst.fact_graph();
        assert_eq!(g.edge_count(), 3); // all pairs share "hub"
    }

    #[test]
    fn constants_of_facts_collects_all() {
        let mut inst = Instance::new();
        let f0 = inst.add_fact_named("R", &["a", "b"]);
        let f1 = inst.add_fact_named("S", &["b", "c"]);
        let cs = inst.constants_of_facts(&[f0, f1]);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn ternary_relations_are_supported() {
        let mut inst = Instance::new();
        let f = inst.add_fact_named("T", &["a", "b", "c"]);
        assert_eq!(inst.fact(f).args.len(), 3);
        let g = inst.gaifman_graph();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn arity_zero_facts_are_supported() {
        let mut inst = Instance::new();
        let f = inst.add_fact_named("Alarm", &[]);
        assert_eq!(inst.render_fact(f), "Alarm()");
        assert_eq!(inst.gaifman_graph().vertex_count(), 0);
    }
}
