//! # stuc-data — relational instances and their uncertain variants
//!
//! The paper's relational setting (Section 2.2) is built from the following
//! tower of formalisms, all of which are provided by this crate:
//!
//! * plain **relational instances** ([`instance`]) — named relations over
//!   interned constants, with Gaifman graphs for structural analysis;
//! * **TID instances** ([`tid`]) — tuple-independent probabilistic
//!   instances: every fact is present independently with a probability
//!   (the formalism of Theorem 1);
//! * **c-instances** ([`cinstance`]) — facts annotated with propositional
//!   formulas over Boolean events (Imieliński–Lipski / Green–Tannen), as in
//!   the paper's Table 1;
//! * **pc-instances** — c-instances whose events carry independent
//!   probabilities;
//! * **pcc-instances** ([`pcc`]) — facts annotated with gates of a shared
//!   Boolean *circuit*, the formalism of Theorem 2, together with the joint
//!   instance+circuit graph whose treewidth the theorem bounds;
//! * **possible worlds** ([`worlds`]) — explicit enumeration semantics used
//!   as ground truth in tests and as the naive baseline in benchmarks.
//!
//! ## Example
//!
//! ```
//! use stuc_data::tid::TidInstance;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a", "b"], 0.5);
//! tid.add_fact_named("S", &["b", "c"], 0.25);
//! assert_eq!(tid.instance().fact_count(), 2);
//! let pc = tid.to_pc_instance();
//! assert_eq!(pc.event_count(), 2);
//! ```

pub mod cinstance;
pub mod formula;
pub mod instance;
pub mod pcc;
pub mod tid;
pub mod worlds;

pub use cinstance::{CInstance, PcInstance};
pub use formula::Formula;
pub use instance::{ConstId, Fact, FactId, Instance, RelId};
pub use pcc::PccInstance;
pub use tid::TidInstance;
