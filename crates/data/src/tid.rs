//! Tuple-independent (TID) probabilistic instances.
//!
//! TID instances are "the simplest kind of probabilistic relational
//! instances: all facts are independently present or absent with a given
//! probability" (paper, Section 1). They are the input formalism of
//! Theorem 1: evaluating a fixed MSO query on bounded-treewidth TIDs is
//! linear-time data complexity.

use crate::cinstance::{CInstance, PcInstance};
use crate::formula::Formula;
use crate::instance::{Fact, FactId, Instance};
use stuc_circuit::circuit::VarId;
use stuc_circuit::weights::{validate_probability, ProbabilityError, Weights};
use stuc_graph::graph::Graph;

/// A tuple-independent probabilistic instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TidInstance {
    instance: Instance,
    probabilities: Vec<f64>,
}

impl TidInstance {
    /// Creates an empty TID instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying relational instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Adds a fact present with probability `p`, given by names.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or not in `[0, 1]`; see
    /// [`TidInstance::try_add_fact_named`] for the non-panicking variant.
    pub fn add_fact_named(&mut self, relation: &str, args: &[&str], p: f64) -> FactId {
        self.try_add_fact_named(relation, args, p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a fact present with probability `p`, rejecting NaN and
    /// out-of-range probabilities with an error instead of panicking. On
    /// rejection the instance is left unchanged.
    pub fn try_add_fact_named(
        &mut self,
        relation: &str,
        args: &[&str],
        p: f64,
    ) -> Result<FactId, ProbabilityError> {
        validate_probability(p)?;
        let id = self.instance.add_fact_named(relation, args);
        self.probabilities.push(p);
        Ok(id)
    }

    /// Adds a certain fact (probability 1).
    pub fn add_certain_fact(&mut self, relation: &str, args: &[&str]) -> FactId {
        self.add_fact_named(relation, args, 1.0)
    }

    /// The probability of a fact.
    pub fn probability(&self, f: FactId) -> f64 {
        self.probabilities[f.0]
    }

    /// Overwrites the probability of a fact (used by conditioning).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or not in `[0, 1]`; see
    /// [`TidInstance::try_set_probability`] for the non-panicking variant.
    pub fn set_probability(&mut self, f: FactId, p: f64) {
        self.try_set_probability(f, p)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Overwrites the probability of a fact, rejecting NaN and out-of-range
    /// probabilities with an error instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the fact does not exist (the probability itself never
    /// panics).
    pub fn try_set_probability(&mut self, f: FactId, p: f64) -> Result<(), ProbabilityError> {
        validate_probability(p)?;
        self.probabilities[f.0] = p;
        Ok(())
    }

    /// Removes a fact and its probability. Later facts shift down by one
    /// (see [`Instance::remove_fact`]), and with them the event variables of
    /// [`TidInstance::fact_event`]: the variable of fact `j > f` becomes
    /// `j - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the fact does not exist.
    pub fn remove_fact(&mut self, f: FactId) -> Fact {
        self.probabilities.remove(f.0);
        self.instance.remove_fact(f)
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.probabilities.len()
    }

    /// The event variable canonically associated with a fact when the TID is
    /// viewed as a pc-instance: fact `i` uses variable `i`.
    pub fn fact_event(&self, f: FactId) -> VarId {
        VarId(f.0)
    }

    /// The per-fact event probabilities as a weight table (variable `i` is
    /// the presence event of fact `i`).
    pub fn fact_weights(&self) -> Weights {
        let mut w = Weights::new();
        for (i, &p) in self.probabilities.iter().enumerate() {
            w.set(VarId(i), p);
        }
        w
    }

    /// The treewidth-relevant structure: the Gaifman graph of the underlying
    /// instance ("defining the treewidth of a TID as that of its underlying
    /// relational instance, forgetting about the probabilities" — Theorem 1).
    pub fn gaifman_graph(&self) -> Graph {
        self.instance.gaifman_graph()
    }

    /// Converts the TID into an equivalent pc-instance: each fact gets a
    /// fresh independent event `f<i>` with the fact's probability.
    pub fn to_pc_instance(&self) -> PcInstance {
        let mut ci = CInstance::new();
        let mut weights = Weights::new();
        for (id, fact) in self.instance.facts() {
            let event_name = format!("f{}", id.0);
            let var = ci.events_mut().intern(&event_name);
            weights.set(var, self.probabilities[id.0]);
            let relation = self.instance.relation_name(fact.relation).to_string();
            let args: Vec<String> = fact
                .args
                .iter()
                .map(|&c| self.instance.constant_name(c).to_string())
                .collect();
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            ci.add_annotated_fact(&relation, &arg_refs, Formula::Var(var));
        }
        ci.with_probabilities(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stuc_graph::exact::exact_treewidth;

    fn path_tid(n: usize, p: f64) -> TidInstance {
        let mut tid = TidInstance::new();
        for i in 0..n {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
        }
        tid
    }

    #[test]
    fn add_and_read_probabilities() {
        let mut tid = TidInstance::new();
        let f = tid.add_fact_named("R", &["a", "b"], 0.4);
        assert_eq!(tid.probability(f), 0.4);
        assert_eq!(tid.fact_count(), 1);
        tid.set_probability(f, 0.9);
        assert_eq!(tid.probability(f), 0.9);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 1.2);
    }

    #[test]
    fn try_variants_reject_nan_and_out_of_range() {
        let mut tid = TidInstance::new();
        assert!(tid.try_add_fact_named("R", &["a"], f64::NAN).is_err());
        assert!(tid.try_add_fact_named("R", &["a"], -0.5).is_err());
        assert_eq!(tid.fact_count(), 0, "rejected facts must not be stored");
        let f = tid.try_add_fact_named("R", &["a"], 0.5).unwrap();
        assert!(tid.try_set_probability(f, f64::NAN).is_err());
        assert!(tid.try_set_probability(f, 2.0).is_err());
        assert_eq!(tid.probability(f), 0.5, "rejected updates must not stick");
        tid.try_set_probability(f, 1.0).unwrap();
        assert_eq!(tid.probability(f), 1.0);
    }

    #[test]
    fn remove_fact_shifts_later_facts() {
        let mut tid = path_tid(3, 0.5);
        tid.set_probability(FactId(2), 0.9);
        let removed = tid.remove_fact(FactId(1));
        assert_eq!(tid.fact_count(), 2);
        assert_eq!(removed.args.len(), 2);
        // The old fact 2 is now fact 1, probability carried along.
        assert_eq!(tid.probability(FactId(1)), 0.9);
    }

    #[test]
    fn certain_fact_has_probability_one() {
        let mut tid = TidInstance::new();
        let f = tid.add_certain_fact("R", &["a"]);
        assert_eq!(tid.probability(f), 1.0);
    }

    #[test]
    fn gaifman_graph_matches_underlying_instance() {
        let tid = path_tid(4, 0.5);
        assert_eq!(exact_treewidth(&tid.gaifman_graph()), Some(1));
    }

    #[test]
    fn conversion_to_pc_instance_preserves_facts_and_probabilities() {
        let tid = path_tid(3, 0.25);
        let pc = tid.to_pc_instance();
        assert_eq!(pc.instance().fact_count(), 3);
        assert_eq!(pc.event_count(), 3);
        assert!(pc.is_fully_weighted());
        for v in pc.cinstance().events().variables() {
            assert_eq!(pc.probabilities().get(v), Some(0.25));
        }
    }

    #[test]
    fn pc_worlds_match_tid_semantics() {
        let tid = path_tid(2, 0.5);
        let pc = tid.to_pc_instance();
        // World where only the first event holds contains only the first fact.
        let valuation: BTreeMap<VarId, bool> =
            [(VarId(0), true), (VarId(1), false)].into_iter().collect();
        let world = pc.cinstance().world(&valuation);
        assert_eq!(world, vec![FactId(0)]);
    }

    #[test]
    fn fact_events_are_dense() {
        let tid = path_tid(3, 0.5);
        assert_eq!(tid.fact_event(FactId(2)), VarId(2));
        let w = tid.fact_weights();
        assert_eq!(w.len(), 3);
    }
}
