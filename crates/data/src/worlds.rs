//! Explicit possible-world semantics.
//!
//! "The straightforward way to extend existing data management paradigms to
//! uncertain data is to represent explicitly all possible states of the data
//! (which we call possible worlds) [...] Of course, this simple scheme is not
//! practical: there are often exponentially many possible worlds" (paper,
//! Section 1). This module implements exactly that impractical scheme: it is
//! the ground truth against which every structural algorithm is tested, and
//! the baseline the benchmarks show blowing up.

use crate::cinstance::{CInstance, PcInstance};
use crate::instance::FactId;
use crate::tid::TidInstance;
use std::collections::BTreeMap;
use stuc_circuit::circuit::VarId;

/// Hard cap on the number of events enumerated, to protect the test suite.
pub const WORLD_ENUMERATION_LIMIT: usize = 24;

stuc_errors::stuc_error! {
    /// Errors raised by possible-world enumeration.
    #[derive(Clone, PartialEq, Eq)]
    pub enum WorldError {
        /// Too many events to enumerate all valuations.
        TooManyEvents(usize),
        /// An event used by an annotation has no probability.
        MissingProbability(VarId),
    }
    display {
        Self::TooManyEvents(n) => "{n} events exceed the possible-world enumeration limit of {WORLD_ENUMERATION_LIMIT}",
        Self::MissingProbability(v) => "event {v} has no probability",
    }
}

/// A possible world of a c-instance: the valuation that produced it and the
/// facts it retains.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// The event valuation defining the world.
    pub valuation: BTreeMap<VarId, bool>,
    /// The facts present in the world.
    pub facts: Vec<FactId>,
    /// The probability of the valuation (1.0 when enumerating a c-instance
    /// without probabilities).
    pub probability: f64,
}

/// Enumerates all possible worlds of a c-instance (probability 1.0 each).
pub fn enumerate_worlds(ci: &CInstance) -> Result<Vec<PossibleWorld>, WorldError> {
    let events: Vec<VarId> = ci.events().variables().collect();
    if events.len() > WORLD_ENUMERATION_LIMIT {
        return Err(WorldError::TooManyEvents(events.len()));
    }
    let mut worlds = Vec::with_capacity(1 << events.len());
    for bits in 0..(1u64 << events.len()) {
        let valuation: BTreeMap<VarId, bool> = events
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, bits & (1 << i) != 0))
            .collect();
        let facts = ci.world(&valuation);
        worlds.push(PossibleWorld {
            valuation,
            facts,
            probability: 1.0,
        });
    }
    Ok(worlds)
}

/// Enumerates all possible worlds of a pc-instance with their probabilities.
pub fn enumerate_weighted_worlds(pc: &PcInstance) -> Result<Vec<PossibleWorld>, WorldError> {
    let events: Vec<VarId> = pc.cinstance().events().variables().collect();
    if events.len() > WORLD_ENUMERATION_LIMIT {
        return Err(WorldError::TooManyEvents(events.len()));
    }
    for &v in &events {
        if pc.probabilities().get(v).is_none() {
            return Err(WorldError::MissingProbability(v));
        }
    }
    let mut worlds = Vec::with_capacity(1 << events.len());
    for bits in 0..(1u64 << events.len()) {
        let mut probability = 1.0;
        let valuation: BTreeMap<VarId, bool> = events
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let value = bits & (1 << i) != 0;
                let p = pc.probabilities().get(v).expect("checked above");
                probability *= if value { p } else { 1.0 - p };
                (v, value)
            })
            .collect();
        let facts = pc.cinstance().world(&valuation);
        worlds.push(PossibleWorld {
            valuation,
            facts,
            probability,
        });
    }
    Ok(worlds)
}

/// The probability that a Boolean query (given as a predicate on the set of
/// present facts) holds on a pc-instance, by world enumeration.
pub fn query_probability(
    pc: &PcInstance,
    query: impl Fn(&[FactId]) -> bool,
) -> Result<f64, WorldError> {
    Ok(enumerate_weighted_worlds(pc)?
        .into_iter()
        .filter(|w| query(&w.facts))
        .map(|w| w.probability)
        .sum())
}

/// Whether a Boolean query is possible (holds in some world) on a c-instance.
pub fn is_possible(ci: &CInstance, query: impl Fn(&[FactId]) -> bool) -> Result<bool, WorldError> {
    Ok(enumerate_worlds(ci)?.into_iter().any(|w| query(&w.facts)))
}

/// Whether a Boolean query is certain (holds in every world) on a c-instance.
pub fn is_certain(ci: &CInstance, query: impl Fn(&[FactId]) -> bool) -> Result<bool, WorldError> {
    Ok(enumerate_worlds(ci)?.into_iter().all(|w| query(&w.facts)))
}

/// The probability that a Boolean query holds on a TID instance, by
/// enumerating fact subsets directly (each fact is its own event).
pub fn tid_query_probability(
    tid: &TidInstance,
    query: impl Fn(&[FactId]) -> bool,
) -> Result<f64, WorldError> {
    let n = tid.fact_count();
    if n > WORLD_ENUMERATION_LIMIT {
        return Err(WorldError::TooManyEvents(n));
    }
    let mut total = 0.0;
    for bits in 0..(1u64 << n) {
        let mut probability = 1.0;
        let mut facts = Vec::new();
        for i in 0..n {
            let present = bits & (1 << i) != 0;
            let p = tid.probability(FactId(i));
            probability *= if present { p } else { 1.0 - p };
            if present {
                facts.push(FactId(i));
            }
        }
        if probability > 0.0 && query(&facts) {
            total += probability;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::weights::Weights;

    #[test]
    fn table1_has_four_worlds() {
        let ci = CInstance::table1_example();
        let worlds = enumerate_worlds(&ci).unwrap();
        assert_eq!(worlds.len(), 4);
        // World sizes are 0, 2, 2, 3 in some order.
        let mut sizes: Vec<usize> = worlds.iter().map(|w| w.facts.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![0, 2, 2, 3]);
    }

    #[test]
    fn weighted_worlds_sum_to_one() {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let mut w = Weights::new();
        w.set(pods, 0.8);
        w.set(stoc, 0.3);
        let pc = ci.with_probabilities(w);
        let worlds = enumerate_weighted_worlds(&pc).unwrap();
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_probability_on_table1() {
        // "Some trip leaves Paris CDG" holds when pods or stoc is attended.
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let cdg = ci.instance().find_constant("Paris_CDG").unwrap();
        let mut w = Weights::new();
        w.set(pods, 0.8);
        w.set(stoc, 0.3);
        let pc = ci.with_probabilities(w);
        let p = query_probability(&pc, |facts| {
            facts
                .iter()
                .any(|&f| pc.instance().fact(f).args.first() == Some(&cdg))
        })
        .unwrap();
        // 1 - P(neither) = 1 - 0.2·0.7 = 0.86
        assert!((p - 0.86).abs() < 1e-12);
    }

    #[test]
    fn possibility_and_certainty_on_table1() {
        let ci = CInstance::table1_example();
        // Possible that there are no trips at all (attend nothing).
        assert!(is_possible(&ci, |facts| facts.is_empty()).unwrap());
        // Not certain that some trip exists.
        assert!(!is_certain(&ci, |facts| !facts.is_empty()).unwrap());
        // Certain that there are at most 3 trips.
        assert!(is_certain(&ci, |facts| facts.len() <= 3).unwrap());
    }

    #[test]
    fn missing_probability_is_detected() {
        let ci = CInstance::table1_example();
        let pc = ci.with_probabilities(Weights::new());
        assert!(matches!(
            enumerate_weighted_worlds(&pc),
            Err(WorldError::MissingProbability(_))
        ));
    }

    #[test]
    fn too_many_events_is_detected() {
        let mut ci = CInstance::new();
        for i in 0..=WORLD_ENUMERATION_LIMIT {
            ci.add_fact_with_condition("R", &[&format!("c{i}")], &format!("e{i}"))
                .unwrap();
        }
        assert!(matches!(
            enumerate_worlds(&ci),
            Err(WorldError::TooManyEvents(_))
        ));
    }

    #[test]
    fn tid_query_probability_of_conjunction() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.5);
        tid.add_fact_named("R", &["b"], 0.5);
        // Both facts present: 0.25.
        let p = tid_query_probability(&tid, |facts| facts.len() == 2).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tid_certain_facts() {
        let mut tid = TidInstance::new();
        tid.add_certain_fact("R", &["a"]);
        tid.add_fact_named("R", &["b"], 0.0);
        let p = tid_query_probability(&tid, |facts| facts == [FactId(0)]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
