//! Propositional annotation formulas over Boolean events.
//!
//! c-instances (Imieliński–Lipski) annotate every fact with a propositional
//! formula over event variables; the fact is present in exactly the possible
//! worlds whose event valuation satisfies the formula. The paper's Table 1
//! uses annotations such as `pods ∧ ¬stoc`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use stuc_circuit::circuit::{Circuit, GateId, VarId};

/// A propositional formula over event variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Always true (the annotation of a certain fact).
    True,
    /// Always false.
    False,
    /// An event variable.
    Var(VarId),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (true when empty).
    And(Vec<Formula>),
    /// Disjunction (false when empty).
    Or(Vec<Formula>),
}

impl Formula {
    /// Convenience constructor: the conjunction of two formulas.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Convenience constructor: the disjunction of two formulas.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Convenience constructor: negation.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// The set of event variables appearing in the formula.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        self.collect_variables(&mut vars);
        vars
    }

    fn collect_variables(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(f) => f.collect_variables(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_variables(out);
                }
            }
        }
    }

    /// Evaluates the formula under a (total) event valuation; variables
    /// missing from the valuation are treated as false.
    pub fn evaluate(&self, valuation: &BTreeMap<VarId, bool>) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => valuation.get(v).copied().unwrap_or(false),
            Formula::Not(f) => !f.evaluate(valuation),
            Formula::And(fs) => fs.iter().all(|f| f.evaluate(valuation)),
            Formula::Or(fs) => fs.iter().any(|f| f.evaluate(valuation)),
        }
    }

    /// True if the formula contains no negation.
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => true,
            Formula::Not(_) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_positive),
        }
    }

    /// Appends this formula to an existing circuit and returns the gate that
    /// computes it.
    pub fn append_to_circuit(&self, circuit: &mut Circuit) -> GateId {
        match self {
            Formula::True => circuit.add_const(true),
            Formula::False => circuit.add_const(false),
            Formula::Var(v) => circuit.add_input(*v),
            Formula::Not(f) => {
                let inner = f.append_to_circuit(circuit);
                circuit.add_not(inner)
            }
            Formula::And(fs) => {
                let gates: Vec<GateId> = fs.iter().map(|f| f.append_to_circuit(circuit)).collect();
                circuit.add_and(gates)
            }
            Formula::Or(fs) => {
                let gates: Vec<GateId> = fs.iter().map(|f| f.append_to_circuit(circuit)).collect();
                circuit.add_or(gates)
            }
        }
    }

    /// Builds a standalone circuit computing this formula.
    pub fn to_circuit(&self) -> Circuit {
        let mut circuit = Circuit::new();
        let out = self.append_to_circuit(&mut circuit);
        circuit.set_output(out);
        circuit
    }

    /// Parses a formula from a small textual syntax:
    ///
    /// ```text
    /// formula := or
    /// or      := and ( ('|' | 'or') and )*
    /// and     := not ( ('&' | 'and' | '∧') not )*
    /// not     := ('!' | '¬' | 'not') not | atom
    /// atom    := 'true' | 'false' | identifier | '(' formula ')'
    /// ```
    ///
    /// Identifiers are resolved to variables through `resolve` (typically an
    /// event dictionary).
    pub fn parse(
        text: &str,
        mut resolve: impl FnMut(&str) -> VarId,
    ) -> Result<Formula, FormulaParseError> {
        let tokens = tokenize(text)?;
        let mut parser = Parser {
            tokens,
            position: 0,
        };
        let formula = parser.parse_or(&mut resolve)?;
        if parser.position != parser.tokens.len() {
            return Err(FormulaParseError::TrailingInput(
                parser.tokens[parser.position].clone(),
            ));
        }
        Ok(formula)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Var(v) => write!(f, "{v}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
        }
    }
}

stuc_errors::stuc_error! {
    /// Errors raised while parsing annotation formulas.
    #[derive(Clone, PartialEq, Eq)]
    pub enum FormulaParseError {
        /// An unexpected character in the input.
        UnexpectedCharacter(char),
        /// The input ended while a sub-formula was expected.
        UnexpectedEnd,
        /// A closing parenthesis was expected.
        ExpectedClosingParen,
        /// Leftover tokens after a complete formula.
        TrailingInput(String),
    }
    display {
        Self::UnexpectedCharacter(c) => "unexpected character '{c}'",
        Self::UnexpectedEnd => "unexpected end of formula",
        Self::ExpectedClosingParen => "expected ')'",
        Self::TrailingInput(t) => "unexpected trailing input '{t}'",
    }
}

fn tokenize(text: &str) -> Result<Vec<String>, FormulaParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' | ')' | '!' | '&' | '|' | '¬' | '∧' | '∨' => {
                tokens.push(c.to_string());
                chars.next();
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(ident);
            }
            other => return Err(FormulaParseError::UnexpectedCharacter(other)),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<String>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.position).map(String::as_str)
    }

    fn advance(&mut self) -> Option<String> {
        let t = self.tokens.get(self.position).cloned();
        if t.is_some() {
            self.position += 1;
        }
        t
    }

    fn parse_or(
        &mut self,
        resolve: &mut impl FnMut(&str) -> VarId,
    ) -> Result<Formula, FormulaParseError> {
        let mut terms = vec![self.parse_and(resolve)?];
        while matches!(self.peek(), Some("|") | Some("or") | Some("∨")) {
            self.advance();
            terms.push(self.parse_and(resolve)?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Formula::Or(terms)
        })
    }

    fn parse_and(
        &mut self,
        resolve: &mut impl FnMut(&str) -> VarId,
    ) -> Result<Formula, FormulaParseError> {
        let mut terms = vec![self.parse_not(resolve)?];
        while matches!(self.peek(), Some("&") | Some("and") | Some("∧")) {
            self.advance();
            terms.push(self.parse_not(resolve)?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Formula::And(terms)
        })
    }

    fn parse_not(
        &mut self,
        resolve: &mut impl FnMut(&str) -> VarId,
    ) -> Result<Formula, FormulaParseError> {
        if matches!(self.peek(), Some("!") | Some("not") | Some("¬")) {
            self.advance();
            let inner = self.parse_not(resolve)?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        self.parse_atom(resolve)
    }

    fn parse_atom(
        &mut self,
        resolve: &mut impl FnMut(&str) -> VarId,
    ) -> Result<Formula, FormulaParseError> {
        match self.advance().as_deref() {
            Some("(") => {
                let inner = self.parse_or(resolve)?;
                if self.advance().as_deref() != Some(")") {
                    return Err(FormulaParseError::ExpectedClosingParen);
                }
                Ok(inner)
            }
            Some("true") => Ok(Formula::True),
            Some("false") => Ok(Formula::False),
            Some(ident) if ident.chars().all(|c| c.is_alphanumeric() || c == '_') => {
                Ok(Formula::Var(resolve(ident)))
            }
            Some(other) => Err(FormulaParseError::TrailingInput(other.to_string())),
            None => Err(FormulaParseError::UnexpectedEnd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valuation(pairs: &[(usize, bool)]) -> BTreeMap<VarId, bool> {
        pairs.iter().map(|&(v, b)| (VarId(v), b)).collect()
    }

    fn resolver() -> impl FnMut(&str) -> VarId {
        let mut names: Vec<String> = Vec::new();
        move |name: &str| {
            if let Some(i) = names.iter().position(|n| n == name) {
                VarId(i)
            } else {
                names.push(name.to_string());
                VarId(names.len() - 1)
            }
        }
    }

    #[test]
    fn evaluation_of_table1_annotations() {
        // "pods ∧ ¬stoc" — the Melbourne → Paris trip of Table 1.
        let pods = Formula::Var(VarId(0));
        let stoc = Formula::Var(VarId(1));
        let annotation = pods.clone().and(stoc.clone().negate());
        assert!(annotation.evaluate(&valuation(&[(0, true), (1, false)])));
        assert!(!annotation.evaluate(&valuation(&[(0, true), (1, true)])));
        assert!(!annotation.evaluate(&valuation(&[(0, false), (1, false)])));
    }

    #[test]
    fn variables_are_collected() {
        let f = Formula::Var(VarId(3)).and(Formula::Var(VarId(1)).or(Formula::Var(VarId(3))));
        assert_eq!(f.variables(), BTreeSet::from([VarId(1), VarId(3)]));
    }

    #[test]
    fn positivity_detection() {
        assert!(Formula::Var(VarId(0)).and(Formula::True).is_positive());
        assert!(!Formula::Var(VarId(0)).negate().is_positive());
    }

    #[test]
    fn to_circuit_matches_formula_semantics() {
        let f = Formula::Var(VarId(0))
            .and(Formula::Var(VarId(1)).negate())
            .or(Formula::Var(VarId(2)));
        let c = f.to_circuit();
        for bits in 0..8u32 {
            let val = valuation(&[(0, bits & 1 != 0), (1, bits & 2 != 0), (2, bits & 4 != 0)]);
            assert_eq!(f.evaluate(&val), c.evaluate(&val).unwrap(), "bits {bits}");
        }
    }

    #[test]
    fn parse_simple_formulas() {
        let mut resolve = resolver();
        let f = Formula::parse("pods & !stoc", &mut resolve).unwrap();
        assert_eq!(
            f,
            Formula::And(vec![
                Formula::Var(VarId(0)),
                Formula::Not(Box::new(Formula::Var(VarId(1))))
            ])
        );
    }

    #[test]
    fn parse_precedence_and_parens() {
        let mut resolve = resolver();
        // a | b & c parses as a | (b & c)
        let f = Formula::parse("a | b & c", &mut resolve).unwrap();
        assert_eq!(
            f,
            Formula::Or(vec![
                Formula::Var(VarId(0)),
                Formula::And(vec![Formula::Var(VarId(1)), Formula::Var(VarId(2))])
            ])
        );
        let mut resolve = resolver();
        let g = Formula::parse("(a | b) & c", &mut resolve).unwrap();
        assert_eq!(
            g,
            Formula::And(vec![
                Formula::Or(vec![Formula::Var(VarId(0)), Formula::Var(VarId(1))]),
                Formula::Var(VarId(2))
            ])
        );
    }

    #[test]
    fn parse_constants_and_keywords() {
        let mut resolve = resolver();
        let f = Formula::parse("true & not false", &mut resolve).unwrap();
        assert!(f.evaluate(&BTreeMap::new()));
    }

    #[test]
    fn parse_errors() {
        let mut resolve = resolver();
        assert!(matches!(
            Formula::parse("a &", &mut resolve),
            Err(FormulaParseError::UnexpectedEnd)
        ));
        assert!(matches!(
            Formula::parse("(a", &mut resolve),
            Err(FormulaParseError::ExpectedClosingParen)
        ));
        assert!(matches!(
            Formula::parse("a b", &mut resolve),
            Err(FormulaParseError::TrailingInput(_))
        ));
        assert!(matches!(
            Formula::parse("a # b", &mut resolve),
            Err(FormulaParseError::UnexpectedCharacter('#'))
        ));
    }

    #[test]
    fn display_round_trips_through_parser_semantics() {
        let mut resolve = resolver();
        let f = Formula::parse("a & (b | !c)", &mut resolve).unwrap();
        let shown = format!("{f}");
        assert!(shown.contains('∧'));
        assert!(shown.contains('∨'));
    }

    #[test]
    fn empty_connectives() {
        assert!(Formula::And(vec![]).evaluate(&BTreeMap::new()));
        assert!(!Formula::Or(vec![]).evaluate(&BTreeMap::new()));
    }
}
