//! pcc-instances: facts annotated with gates of a shared Boolean circuit.
//!
//! The paper's Theorem 2 needs a formalism where fact correlations are
//! expressed as a *circuit* rather than arbitrary formulas: "our idea is to
//! write annotations as Boolean circuits rather than formulae, and look at
//! the treewidth of the annotation circuit. [...] we must require the
//! existence of a bounded-width tree decomposition of the instance and
//! circuit, which respects the link between circuit gates and the facts that
//! they annotate."
//!
//! A [`PccInstance`] is therefore an instance, a shared annotation
//! [`Circuit`] over event variables, a per-fact pointer into that circuit,
//! and independent probabilities on the events. Its *joint graph* has one
//! vertex per instance constant and one per circuit gate; fact cliques,
//! gate–input cliques, and fact-to-annotation links all contribute edges,
//! so its treewidth is exactly the quantity Theorem 2 bounds.

use crate::cinstance::PcInstance;
use crate::instance::{FactId, Instance};
use std::collections::BTreeSet;
use stuc_circuit::circuit::{Circuit, GateId, VarId};
use stuc_circuit::weights::Weights;
use stuc_graph::graph::{Graph, VertexId};

/// A pcc-instance: facts annotated by gates of a shared circuit, with
/// independent event probabilities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PccInstance {
    instance: Instance,
    annotation_circuit: Circuit,
    fact_gates: Vec<GateId>,
    probabilities: Weights,
}

impl PccInstance {
    /// Creates an empty pcc-instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying relational instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Mutable access to the underlying instance (to pre-intern vocabulary).
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// The shared annotation circuit.
    pub fn annotation_circuit(&self) -> &Circuit {
        &self.annotation_circuit
    }

    /// Mutable access to the annotation circuit, for building annotations.
    pub fn annotation_circuit_mut(&mut self) -> &mut Circuit {
        &mut self.annotation_circuit
    }

    /// The event probabilities.
    pub fn probabilities(&self) -> &Weights {
        &self.probabilities
    }

    /// Mutable access to the event probabilities.
    pub fn probabilities_mut(&mut self) -> &mut Weights {
        &mut self.probabilities
    }

    /// Adds a fact annotated by the given gate of the annotation circuit.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not exist in the annotation circuit.
    pub fn add_fact_with_gate(&mut self, relation: &str, args: &[&str], gate: GateId) -> FactId {
        assert!(
            gate.0 < self.annotation_circuit.len(),
            "annotation gate {gate} out of range"
        );
        let id = self.instance.add_fact_named(relation, args);
        self.fact_gates.push(gate);
        id
    }

    /// The annotation gate of a fact.
    pub fn fact_gate(&self, f: FactId) -> GateId {
        self.fact_gates[f.0]
    }

    /// Removes a fact and its gate pointer. Later facts shift down by one
    /// (see [`Instance::remove_fact`]); the annotation circuit itself is
    /// untouched — unreferenced gates simply stop mattering.
    ///
    /// # Panics
    ///
    /// Panics if the fact does not exist.
    pub fn remove_fact(&mut self, f: FactId) -> GateId {
        self.instance.remove_fact(f);
        self.fact_gates.remove(f.0)
    }

    /// Number of facts.
    pub fn fact_count(&self) -> usize {
        self.fact_gates.len()
    }

    /// The *joint graph* of instance and annotations, whose treewidth is the
    /// structural parameter of Theorem 2.
    ///
    /// Vertices `0 .. constant_count` are the instance constants; vertices
    /// `constant_count ..` are the circuit gates. Edges:
    ///
    /// * a clique over the constants of each fact (instance structure),
    /// * a clique over each gate and its inputs (circuit structure),
    /// * an edge between every constant of a fact and the fact's annotation
    ///   gate (the "link" the paper requires the decomposition to respect).
    pub fn joint_graph(&self) -> Graph {
        let constants = self.instance.constant_count();
        let gates = self.annotation_circuit.len();
        let mut g = Graph::with_vertices(constants + gates);

        for (_, fact) in self.instance.facts() {
            let clique: Vec<VertexId> = fact
                .args
                .iter()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .map(|c| VertexId(c.0))
                .collect();
            g.add_clique(&clique);
        }
        for (id, gate) in self.annotation_circuit.iter() {
            let mut clique: Vec<VertexId> = vec![VertexId(constants + id.0)];
            clique.extend(gate.inputs().iter().map(|x| VertexId(constants + x.0)));
            g.add_clique(&clique);
        }
        for (fid, fact) in self.instance.facts() {
            let gate_vertex = VertexId(constants + self.fact_gates[fid.0].0);
            for &c in fact.args.iter().collect::<BTreeSet<_>>() {
                g.add_edge(VertexId(c.0), gate_vertex);
            }
        }
        g
    }

    /// The facts present in the possible world defined by an event valuation.
    pub fn world(&self, valuation: &std::collections::BTreeMap<VarId, bool>) -> Vec<FactId> {
        let values = self
            .annotation_circuit
            .evaluate_all(valuation)
            .expect("valuation must cover all annotation events");
        self.instance
            .facts()
            .map(|(id, _)| id)
            .filter(|id| values[self.fact_gates[id.0].0])
            .collect()
    }

    /// The set of event variables used by the annotation circuit.
    pub fn event_variables(&self) -> BTreeSet<VarId> {
        self.annotation_circuit.variables()
    }

    /// Builds a pcc-instance from a pc-instance by compiling each fact's
    /// annotation formula into the shared circuit.
    pub fn from_pc_instance(pc: &PcInstance) -> PccInstance {
        let mut pcc = PccInstance::new();
        pcc.probabilities = pc.probabilities().clone();
        for (fid, fact) in pc.instance().facts() {
            let gate = pc
                .cinstance()
                .annotation(fid)
                .append_to_circuit(&mut pcc.annotation_circuit);
            let relation = pc.instance().relation_name(fact.relation).to_string();
            let args: Vec<String> = fact
                .args
                .iter()
                .map(|&c| pc.instance().constant_name(c).to_string())
                .collect();
            let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
            pcc.add_fact_with_gate(&relation, &arg_refs, gate);
        }
        pcc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cinstance::CInstance;
    use crate::tid::TidInstance;
    use std::collections::BTreeMap;
    use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};

    /// A pcc-instance modelling two facts correlated by one trust event
    /// (the "user Jane" pattern of the paper's Figure 1, relationally).
    fn jane_pcc() -> PccInstance {
        let mut pcc = PccInstance::new();
        let jane = VarId(0);
        let g = pcc.annotation_circuit_mut().add_input(jane);
        pcc.probabilities_mut().set(jane, 0.9);
        pcc.add_fact_with_gate("PlaceOfBirth", &["Manning", "Crescent"], g);
        pcc.add_fact_with_gate("Surname", &["Manning", "Manning_surname"], g);
        pcc
    }

    #[test]
    fn correlated_facts_share_a_gate() {
        let pcc = jane_pcc();
        assert_eq!(pcc.fact_gate(FactId(0)), pcc.fact_gate(FactId(1)));
        let world_trust: BTreeMap<VarId, bool> = [(VarId(0), true)].into_iter().collect();
        assert_eq!(pcc.world(&world_trust).len(), 2);
        let world_vandal: BTreeMap<VarId, bool> = [(VarId(0), false)].into_iter().collect();
        assert!(pcc.world(&world_vandal).is_empty());
    }

    #[test]
    fn joint_graph_contains_instance_circuit_and_links() {
        let pcc = jane_pcc();
        let g = pcc.joint_graph();
        // 3 constants + 1 gate.
        assert_eq!(g.vertex_count(), 3 + 1);
        // Fact cliques (2 edges) + fact-gate links (4 edges, one per
        // constant-fact incidence) and no gate-input edges (single input gate).
        assert!(g.edge_count() >= 4);
    }

    #[test]
    fn joint_graph_of_tid_conversion_has_small_width() {
        // A path TID converted to pc then pcc keeps a tree-like joint graph.
        let mut tid = TidInstance::new();
        for i in 0..10 {
            tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], 0.5);
        }
        let pcc = PccInstance::from_pc_instance(&tid.to_pc_instance());
        let joint = pcc.joint_graph();
        let td = decompose_with_heuristic(&joint, EliminationHeuristic::MinFill);
        assert!(td.validate(&joint).is_ok());
        assert!(td.width() <= 3, "joint width {} too large", td.width());
    }

    #[test]
    fn from_pc_instance_preserves_worlds() {
        let ci = CInstance::table1_example();
        let pods = ci.events().find("pods").unwrap();
        let stoc = ci.events().find("stoc").unwrap();
        let weights = Weights::uniform([pods, stoc], 0.5);
        let pc = ci.with_probabilities(weights);
        let pcc = PccInstance::from_pc_instance(&pc);
        for bits in 0..4u32 {
            let valuation: BTreeMap<VarId, bool> = [(pods, bits & 1 != 0), (stoc, bits & 2 != 0)]
                .into_iter()
                .collect();
            let pc_world = pc.cinstance().world(&valuation);
            let pcc_world = pcc.world(&valuation);
            assert_eq!(pc_world.len(), pcc_world.len(), "bits {bits}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_gate_panics() {
        let mut pcc = PccInstance::new();
        pcc.add_fact_with_gate("R", &["a"], GateId(3));
    }

    #[test]
    fn event_variables_are_reported() {
        let pcc = jane_pcc();
        assert_eq!(pcc.event_variables(), BTreeSet::from([VarId(0)]));
    }
}
