//! The tractable evaluation pipeline (Theorems 1 and 2) and its baselines.

use std::collections::BTreeMap;
use stuc_automata::courcelle::{cq_lineage_circuit, cq_probability_tid, CourcelleError};
use stuc_circuit::circuit::{Circuit, VarId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::enumeration::probability_by_enumeration;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::{TreewidthWmc, WmcError};
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::TreeDecomposition;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::lineage::tid_lineage;
use stuc_query::safe::{safe_plan_probability, SafePlanError};

/// Errors raised by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The Courcelle-style run failed (query or anchoring limits).
    Courcelle(CourcelleError),
    /// The circuit back-end failed (width limit exceeded).
    Wmc(WmcError),
    /// The extensional baseline refused the query.
    SafePlan(SafePlanError),
    /// Some other back-end failure, with a description.
    Backend(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Courcelle(e) => write!(f, "{e}"),
            PipelineError::Wmc(e) => write!(f, "{e}"),
            PipelineError::SafePlan(e) => write!(f, "{e}"),
            PipelineError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CourcelleError> for PipelineError {
    fn from(e: CourcelleError) -> Self {
        PipelineError::Courcelle(e)
    }
}

impl From<WmcError> for PipelineError {
    fn from(e: WmcError) -> Self {
        PipelineError::Wmc(e)
    }
}

impl From<SafePlanError> for PipelineError {
    fn from(e: SafePlanError) -> Self {
        PipelineError::SafePlan(e)
    }
}

/// The outcome of a pipeline evaluation, with structural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The probability that the Boolean query holds.
    pub probability: f64,
    /// Width of the tree decomposition used for the instance.
    pub decomposition_width: usize,
    /// Number of facts in the instance.
    pub fact_count: usize,
}

impl EvaluationReport {
    /// The query is possible (holds in some world).
    pub fn is_possible(&self) -> bool {
        self.probability > 0.0
    }

    /// The query is certain (holds in every world), up to rounding.
    pub fn is_certain(&self) -> bool {
        (self.probability - 1.0).abs() < 1e-9
    }
}

/// The structurally tractable evaluation pipeline.
#[derive(Debug, Clone)]
pub struct TractablePipeline {
    /// Heuristic used to decompose the Gaifman / joint graphs.
    pub heuristic: EliminationHeuristic,
    /// Width limit passed to the circuit back-end.
    pub max_bag_size: usize,
}

impl Default for TractablePipeline {
    fn default() -> Self {
        TractablePipeline { heuristic: EliminationHeuristic::MinDegree, max_bag_size: 22 }
    }
}

impl TractablePipeline {
    /// Decomposes the Gaifman graph of a TID instance.
    pub fn decompose_tid(&self, tid: &TidInstance) -> TreeDecomposition {
        decompose_with_heuristic(&tid.gaifman_graph(), self.heuristic)
    }

    /// **Theorem 1** — exact probability of a Boolean CQ on a TID instance,
    /// by the deterministic automaton run over a tree decomposition of its
    /// Gaifman graph. Linear-time data complexity at fixed width.
    pub fn evaluate_cq_on_tid(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<EvaluationReport, PipelineError> {
        let decomposition = self.decompose_tid(tid);
        let probability = cq_probability_tid(tid, &decomposition, query)?;
        Ok(EvaluationReport {
            probability,
            decomposition_width: decomposition.width(),
            fact_count: tid.fact_count(),
        })
    }

    /// The lineage circuit of a Boolean CQ on a TID instance, produced by the
    /// nondeterministic automaton run (inputs are the per-fact events).
    pub fn tid_lineage_circuit(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<Circuit, PipelineError> {
        let decomposition = self.decompose_tid(tid);
        Ok(cq_lineage_circuit(tid.instance(), &decomposition, query, |f| tid.fact_event(f))?)
    }

    /// **Theorem 2** — exact probability of a Boolean CQ on a pcc-instance:
    /// the automaton run produces a lineage over per-fact variables, each
    /// fact variable is substituted by the fact's annotation gate in the
    /// shared circuit, and the resulting bounded-treewidth circuit is
    /// evaluated by message passing.
    pub fn evaluate_cq_on_pcc(
        &self,
        pcc: &PccInstance,
        query: &ConjunctiveQuery,
    ) -> Result<EvaluationReport, PipelineError> {
        // Decompose the joint graph (instance + annotation circuit), whose
        // width is the Theorem 2 parameter; report that width.
        let joint = pcc.joint_graph();
        let joint_decomposition = decompose_with_heuristic(&joint, self.heuristic);

        // Run the automaton over the instance decomposition with one fresh
        // variable per fact, then substitute annotations.
        let instance_decomposition =
            decompose_with_heuristic(&pcc.instance().gaifman_graph(), self.heuristic);
        // Fact variables start above the event variables to avoid collisions.
        let offset = pcc
            .event_variables()
            .iter()
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0);
        let lineage = cq_lineage_circuit(pcc.instance(), &instance_decomposition, query, |f| {
            VarId(offset + f.0)
        })?;
        // Substitute each fact variable by its annotation sub-circuit.
        let mut substitution: BTreeMap<VarId, Circuit> = BTreeMap::new();
        for (fid, _) in pcc.instance().facts() {
            let mut annotation = pcc.annotation_circuit().clone();
            annotation.set_output(pcc.fact_gate(fid));
            substitution.insert(VarId(offset + fid.0), annotation);
        }
        let combined = lineage
            .substitute(&substitution)
            .map_err(|e| PipelineError::Backend(e.to_string()))?;
        let wmc = TreewidthWmc {
            heuristic: self.heuristic,
            max_bag_size: self.max_bag_size,
        };
        let probability = wmc.probability(&combined, pcc.probabilities())?;
        Ok(EvaluationReport {
            probability,
            decomposition_width: joint_decomposition.width(),
            fact_count: pcc.fact_count(),
        })
    }

    /// Intensional baseline: build the DNF-style lineage by enumerating
    /// query matches and evaluate it with the DPLL counter (no treewidth
    /// assumption; exponential in the worst case).
    pub fn baseline_dpll(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        let lineage = tid_lineage(tid, query);
        DpllCounter::default()
            .probability(&lineage, &tid.fact_weights())
            .map_err(|e| PipelineError::Backend(e.to_string()))
    }

    /// Naive baseline: possible-world enumeration over the DNF lineage
    /// (exponential in the number of facts involved).
    pub fn baseline_enumeration(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        let lineage = tid_lineage(tid, query);
        probability_by_enumeration(&lineage, &tid.fact_weights())
            .map_err(|e| PipelineError::Backend(e.to_string()))
    }

    /// Extensional baseline: Dalvi–Suciu safe-plan evaluation. Only works
    /// for hierarchical self-join-free queries, on any TID instance.
    pub fn baseline_safe_plan(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        Ok(safe_plan_probability(tid, query)?)
    }

    /// Evaluates an arbitrary lineage circuit with this pipeline's
    /// treewidth-based back-end.
    pub fn circuit_probability(
        &self,
        circuit: &Circuit,
        weights: &Weights,
    ) -> Result<f64, PipelineError> {
        let wmc = TreewidthWmc { heuristic: self.heuristic, max_bag_size: self.max_bag_size };
        Ok(wmc.probability(circuit, weights)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn theorem1_matches_baselines_on_path_workload() {
        let tid = workloads::path_tid(8, 0.5, 11);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let pipeline = TractablePipeline::default();
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let dpll = pipeline.baseline_dpll(&tid, &query).unwrap();
        let brute = pipeline.baseline_enumeration(&tid, &query).unwrap();
        assert!(close(exact.probability, dpll));
        assert!(close(exact.probability, brute));
        assert!(exact.decomposition_width <= 2);
    }

    #[test]
    fn theorem1_matches_safe_plan_on_hierarchical_query() {
        let tid = workloads::rst_star_tid(5, 0.4, 3);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let pipeline = TractablePipeline::default();
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let extensional = pipeline.baseline_safe_plan(&tid, &query).unwrap();
        assert!(close(exact.probability, extensional));
    }

    #[test]
    fn unsafe_query_still_exact_on_tree_shaped_data() {
        // The paper's hard query: unsafe (extensional baseline refuses), but
        // tractable on path-shaped data through the decomposition pipeline.
        let tid = workloads::rst_path_tid(6, 0.5, 5);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let pipeline = TractablePipeline::default();
        assert!(matches!(
            pipeline.baseline_safe_plan(&tid, &query),
            Err(PipelineError::SafePlan(SafePlanError::NotHierarchical))
        ));
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let brute = pipeline.baseline_enumeration(&tid, &query).unwrap();
        assert!(close(exact.probability, brute));
    }

    #[test]
    fn theorem2_pcc_with_correlated_annotations() {
        let pcc = workloads::contributor_pcc(6, 3, 0.8, 0.9, 21);
        let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
        let pipeline = TractablePipeline::default();
        let report = pipeline.evaluate_cq_on_pcc(&pcc, &query).unwrap();
        // Cross-check against world enumeration over the events.
        let reference = workloads::pcc_query_probability_by_enumeration(&pcc, &query);
        assert!(close(report.probability, reference), "{} vs {reference}", report.probability);
    }

    #[test]
    fn report_possibility_and_certainty() {
        let mut tid = TidInstance::new();
        tid.add_certain_fact("R", &["a", "b"]);
        let pipeline = TractablePipeline::default();
        let query = ConjunctiveQuery::parse("R(x, y)").unwrap();
        let report = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        assert!(report.is_certain());
        assert!(report.is_possible());
        let query = ConjunctiveQuery::parse("Missing(x)").unwrap();
        let report = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        assert!(!report.is_possible());
    }

    #[test]
    fn lineage_circuit_agrees_with_direct_probability() {
        let tid = workloads::path_tid(6, 0.3, 2);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let pipeline = TractablePipeline::default();
        let direct = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap().probability;
        let lineage = pipeline.tid_lineage_circuit(&tid, &query).unwrap();
        let via_circuit = pipeline
            .circuit_probability(&lineage, &tid.fact_weights())
            .unwrap();
        assert!(close(direct, via_circuit));
    }
}
