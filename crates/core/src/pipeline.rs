//! The original tractable evaluation pipeline, now a deprecated façade over
//! [`crate::engine::Engine`].
//!
//! `TractablePipeline` predates the unified engine: it exposed Theorem 1
//! (TID) and Theorem 2 (pcc) behind separate methods and its own error enum,
//! while the other representations shipped bespoke entry points. Everything
//! here now delegates to the engine; new code should call
//! [`crate::engine::Engine::evaluate`] directly, which covers every
//! representation through one method and reports which back-end ran.
//!
//! ## Migration
//!
//! | pre-engine call                            | engine call |
//! |--------------------------------------------|-------------|
//! | `pipeline.evaluate_cq_on_tid(&tid, &q)`    | `engine.evaluate(&tid, &q)` |
//! | `pipeline.evaluate_cq_on_pcc(&pcc, &q)`    | `engine.evaluate(&pcc, &q)` |
//! | `pipeline.tid_lineage_circuit(&tid, &q)`   | `engine.lineage(&tid, &q)` |
//! | `pipeline.baseline_dpll(&tid, &q)`         | `Engine::builder().backend(BackendKind::Dpll).build().evaluate(&tid, &q)` |
//! | `pipeline.baseline_enumeration(&tid, &q)`  | `Engine::builder().backend(BackendKind::Enumeration).build().evaluate(&tid, &q)` |
//! | `pipeline.baseline_safe_plan(&tid, &q)`    | `Engine::builder().backend(BackendKind::SafePlan).build().evaluate(&tid, &q)` |
//! | `pipeline.circuit_probability(&c, &w)`     | `TreewidthWmcBackend` via `Backend::solve`, or `TreewidthWmc` directly |

use crate::engine::{Backend, BackendKind, Engine, EvaluationTask, StucError, TreewidthWmcBackend};
use stuc_automata::courcelle::CourcelleError;
use stuc_circuit::circuit::Circuit;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::WmcError;
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::TreeDecomposition;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::safe::SafePlanError;

stuc_errors::stuc_error! {
    /// Errors raised by the pipeline.
    #[derive(Clone, PartialEq)]
    pub enum PipelineError {
        /// The Courcelle-style run failed (query or anchoring limits).
        Courcelle(CourcelleError),
        /// The circuit back-end failed (width limit exceeded).
        Wmc(WmcError),
        /// The extensional baseline refused the query.
        SafePlan(SafePlanError),
        /// Some other back-end failure, with a description.
        Backend(String),
    }
    display {
        Self::Courcelle(e) => "{e}",
        Self::Wmc(e) => "{e}",
        Self::SafePlan(e) => "{e}",
        Self::Backend(e) => "{e}",
    }
    from {
        CourcelleError => Courcelle,
        WmcError => Wmc,
        SafePlanError => SafePlan,
    }
}

impl From<StucError> for PipelineError {
    fn from(e: StucError) -> Self {
        match e {
            StucError::Courcelle(e) => PipelineError::Courcelle(e),
            StucError::Wmc(e) => PipelineError::Wmc(e),
            StucError::SafePlan(e) => PipelineError::SafePlan(e),
            other => PipelineError::Backend(other.to_string()),
        }
    }
}

/// The outcome of a pipeline evaluation, with structural statistics.
///
/// The engine's [`crate::engine::EvaluationReport`] supersedes this: it
/// additionally names the back-end that ran, the lineage gate count, the
/// wall time and the strategy notes.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The probability that the Boolean query holds.
    pub probability: f64,
    /// Width of the tree decomposition used for the instance.
    pub decomposition_width: usize,
    /// Number of facts in the instance.
    pub fact_count: usize,
}

impl EvaluationReport {
    /// The query is possible (holds in some world).
    pub fn is_possible(&self) -> bool {
        self.probability > 0.0
    }

    /// The query is certain (holds in every world), up to rounding.
    pub fn is_certain(&self) -> bool {
        (self.probability - 1.0).abs() < 1e-9
    }
}

/// The structurally tractable evaluation pipeline.
#[deprecated(
    since = "0.2.0",
    note = "use stuc_core::engine::Engine, which evaluates every representation \
            (TID, c-, pc-, pcc-instances, PrXML) through one `evaluate` method \
            with automatic back-end selection"
)]
#[derive(Debug, Clone)]
pub struct TractablePipeline {
    /// Heuristic used to decompose the Gaifman / joint graphs.
    pub heuristic: EliminationHeuristic,
    /// Width limit passed to the circuit back-end.
    pub max_bag_size: usize,
}

#[allow(deprecated)]
impl Default for TractablePipeline {
    fn default() -> Self {
        TractablePipeline {
            heuristic: EliminationHeuristic::MinDegree,
            max_bag_size: 22,
        }
    }
}

#[allow(deprecated)]
impl TractablePipeline {
    /// An [`Engine`] with this pipeline's configuration, pinned to the
    /// treewidth back-end: the pre-engine pipeline always ran the structural
    /// (Theorem 1/2) path and reported a real decomposition width, so the
    /// shims must not let Auto shortcut hierarchical queries through the
    /// safe plan (which builds no decomposition and would report width 0).
    fn engine(&self) -> Engine {
        Engine::builder()
            .heuristic(self.heuristic)
            .width_budget(self.max_bag_size)
            .backend(BackendKind::TreewidthWmc)
            .build()
    }

    /// Decomposes the Gaifman graph of a TID instance.
    pub fn decompose_tid(&self, tid: &TidInstance) -> TreeDecomposition {
        decompose_with_heuristic(&tid.gaifman_graph(), self.heuristic)
    }

    /// **Theorem 1** — exact probability of a Boolean CQ on a TID instance.
    /// Delegates to [`Engine::evaluate`].
    pub fn evaluate_cq_on_tid(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<EvaluationReport, PipelineError> {
        let report = self.engine().evaluate(tid, query)?;
        Ok(EvaluationReport {
            probability: report.probability,
            decomposition_width: report.decomposition_width.unwrap_or(0),
            fact_count: tid.fact_count(),
        })
    }

    /// The lineage circuit of a Boolean CQ on a TID instance. Delegates to
    /// [`Engine::lineage`].
    pub fn tid_lineage_circuit(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<Circuit, PipelineError> {
        Ok(self.engine().lineage(tid, query)?)
    }

    /// **Theorem 2** — exact probability of a Boolean CQ on a pcc-instance.
    /// Delegates to [`Engine::evaluate`].
    pub fn evaluate_cq_on_pcc(
        &self,
        pcc: &PccInstance,
        query: &ConjunctiveQuery,
    ) -> Result<EvaluationReport, PipelineError> {
        let report = self.engine().evaluate(pcc, query)?;
        Ok(EvaluationReport {
            probability: report.probability,
            decomposition_width: report.decomposition_width.unwrap_or(0),
            fact_count: pcc.fact_count(),
        })
    }

    /// Intensional baseline: DPLL over the match-enumeration lineage.
    pub fn baseline_dpll(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        let engine = Engine::builder().backend(BackendKind::Dpll).build();
        Ok(engine.evaluate(tid, query)?.probability)
    }

    /// Naive baseline: possible-world enumeration over the lineage.
    pub fn baseline_enumeration(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        let engine = Engine::builder().backend(BackendKind::Enumeration).build();
        Ok(engine.evaluate(tid, query)?.probability)
    }

    /// Extensional baseline: Dalvi–Suciu safe-plan evaluation. Only works
    /// for hierarchical self-join-free queries, on any TID instance.
    pub fn baseline_safe_plan(
        &self,
        tid: &TidInstance,
        query: &ConjunctiveQuery,
    ) -> Result<f64, PipelineError> {
        let engine = Engine::builder().backend(BackendKind::SafePlan).build();
        Ok(engine.evaluate(tid, query)?.probability)
    }

    /// Evaluates an arbitrary lineage circuit with the treewidth back-end.
    pub fn circuit_probability(
        &self,
        circuit: &Circuit,
        weights: &Weights,
    ) -> Result<f64, PipelineError> {
        let backend = TreewidthWmcBackend {
            heuristic: self.heuristic,
            max_bag_size: self.max_bag_size,
        };
        Ok(backend.solve(&EvaluationTask::Circuit {
            lineage: circuit,
            weights,
        })?)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::workloads;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn theorem1_matches_baselines_on_path_workload() {
        let tid = workloads::path_tid(8, 0.5, 11);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let pipeline = TractablePipeline::default();
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let dpll = pipeline.baseline_dpll(&tid, &query).unwrap();
        let brute = pipeline.baseline_enumeration(&tid, &query).unwrap();
        assert!(close(exact.probability, dpll));
        assert!(close(exact.probability, brute));
        assert!(exact.decomposition_width <= 2);
    }

    #[test]
    fn theorem1_matches_safe_plan_on_hierarchical_query() {
        let tid = workloads::rst_star_tid(5, 0.4, 3);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let pipeline = TractablePipeline::default();
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let extensional = pipeline.baseline_safe_plan(&tid, &query).unwrap();
        assert!(close(exact.probability, extensional));
    }

    #[test]
    fn unsafe_query_still_exact_on_tree_shaped_data() {
        // The paper's hard query: unsafe (extensional baseline refuses), but
        // tractable on path-shaped data through the decomposition pipeline.
        let tid = workloads::rst_path_tid(6, 0.5, 5);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let pipeline = TractablePipeline::default();
        assert!(matches!(
            pipeline.baseline_safe_plan(&tid, &query),
            Err(PipelineError::SafePlan(SafePlanError::NotHierarchical))
        ));
        let exact = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        let brute = pipeline.baseline_enumeration(&tid, &query).unwrap();
        assert!(close(exact.probability, brute));
    }

    #[test]
    fn theorem2_pcc_with_correlated_annotations() {
        let pcc = workloads::contributor_pcc(6, 3, 0.8, 0.9, 21);
        let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
        let pipeline = TractablePipeline::default();
        let report = pipeline.evaluate_cq_on_pcc(&pcc, &query).unwrap();
        // Cross-check against world enumeration over the events.
        let reference = workloads::pcc_query_probability_by_enumeration(&pcc, &query);
        assert!(
            close(report.probability, reference),
            "{} vs {reference}",
            report.probability
        );
    }

    #[test]
    fn report_possibility_and_certainty() {
        let mut tid = TidInstance::new();
        tid.add_certain_fact("R", &["a", "b"]);
        let pipeline = TractablePipeline::default();
        let query = ConjunctiveQuery::parse("R(x, y)").unwrap();
        let report = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        assert!(report.is_certain());
        assert!(report.is_possible());
        let query = ConjunctiveQuery::parse("Missing(x)").unwrap();
        let report = pipeline.evaluate_cq_on_tid(&tid, &query).unwrap();
        assert!(!report.is_possible());
    }

    #[test]
    fn lineage_circuit_agrees_with_direct_probability() {
        let tid = workloads::path_tid(6, 0.3, 2);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let pipeline = TractablePipeline::default();
        let direct = pipeline
            .evaluate_cq_on_tid(&tid, &query)
            .unwrap()
            .probability;
        let lineage = pipeline.tid_lineage_circuit(&tid, &query).unwrap();
        let via_circuit = pipeline
            .circuit_probability(&lineage, &tid.fact_weights())
            .unwrap();
        assert!(close(direct, via_circuit));
    }
}
