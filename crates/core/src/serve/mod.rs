//! `stuc-serve` — a long-running query service over one shared [`Engine`].
//!
//! The engine's sharded caches make it cheaply shareable across threads
//! ([`Engine`] is `Send + Sync`); this module puts a network front on that:
//! a hand-rolled HTTP/1.1 server over `std::net` (the container is offline;
//! zero new dependencies) that loads a `stuc-lang` program once and serves
//! its goals to any number of clients.
//!
//! Architecture — three moving parts, all `std`:
//!
//! * an **acceptor** thread that accepts connections and pushes them onto a
//!   **bounded queue** — when the queue is full the acceptor immediately
//!   writes a typed `503 {"error":{"kind":"overload",…}}` and closes, so
//!   overload degrades to fast rejections instead of unbounded queueing or
//!   stalled clients (admission control);
//! * a **worker pool** (thread-per-core by default) popping connections,
//!   reading one request each ([`http`]), evaluating `POST /query` bodies
//!   through [`Engine::evaluate_goal`] against the loaded instance, and
//!   reporting per-goal probability, cost-model route, back-end and
//!   cache-hit flag in the JSON response;
//! * a [`ServeStats`] block of atomics (accepted / served / rejected /
//!   in-flight / errors) that tests and the `/stats` endpoint read.
//!
//! Protocol: one request per connection (`Connection: close`), endpoints
//! `POST /query` (body = `stuc-lang` rules + goals; inline facts are
//! rejected — the instance is the one loaded at startup; append
//! `?timings=1` for a per-stage wall-time breakdown per goal),
//! `GET /health`, `GET /stats`, `GET /metrics` (Prometheus text format),
//! `GET /debug/slow` (the ring-buffered slow-query log). Default responses
//! are deterministic given the request and the loaded program, which is
//! what the byte-exact golden protocol test (`tests/serve_golden.rs`,
//! `ci/serve_session.golden`) pins down; `/metrics`, `/debug/slow` and
//! `?timings=1` responses carry live timings and are asserted by parsing,
//! not byte equality.

pub mod http;

use crate::engine::{Engine, StucError};
use http::{escape_json, HttpError, Request, Response};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use stuc_data::tid::TidInstance;
use stuc_lang::ast::RuleAst;
use stuc_lang::lower::program_instance;
use stuc_lang::{parse_program, LangError};
use stuc_obs::metrics::{registry, Counter, Gauge, Histogram};
use stuc_obs::{slowlog, Stopwatch};

/// Pre-resolved global `stuc_serve_*` metric handles, mirroring the
/// per-server [`ServeStats`] atomics into the process-wide registry (the
/// per-server atomics stay authoritative for [`Server::stats`] and the
/// golden-deterministic `/stats` endpoint).
struct ServeMetrics {
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    rejected_overload: Arc<Counter>,
    served: Arc<Counter>,
    request_errors: Arc<Counter>,
    request_seconds: Arc<Histogram>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = registry();
        ServeMetrics {
            queue_depth: reg.gauge(
                "stuc_serve_queue_depth",
                "Connections waiting in the bounded accept queue.",
            ),
            in_flight: reg.gauge(
                "stuc_serve_in_flight",
                "Requests currently being handled by workers.",
            ),
            rejected_overload: reg.counter(
                "stuc_serve_rejected_overload_total",
                "Connections rejected by admission control (queue full).",
            ),
            served: reg.counter(
                "stuc_serve_requests_total",
                "Requests answered (any status).",
            ),
            request_errors: reg.counter(
                "stuc_serve_request_errors_total",
                "Requests that failed to parse as HTTP (timeout included).",
            ),
            request_seconds: reg.histogram(
                "stuc_serve_request_seconds",
                "Wall time from dequeue to response written, per request.",
            ),
        }
    })
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`; port 0 picks a free port.
    pub addr: String,
    /// Worker threads; 0 (default) uses
    /// [`std::thread::available_parallelism`] (thread-per-core).
    pub workers: usize,
    /// Bounded accept-queue capacity; connections arriving while the queue
    /// is full are rejected with a typed overload response.
    pub queue_capacity: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 1024,
            io_timeout: Duration::from_secs(10),
            max_body: 64 * 1024,
        }
    }
}

/// Everything the workers share: the engine, the loaded instance, and the
/// program's rules (kept for goal unfolding, exactly like the REPL).
#[derive(Debug)]
pub struct ServiceState {
    engine: Engine,
    instance: TidInstance,
    rules: Vec<RuleAst>,
    /// Service-local trace-id sequence. Query responses carry this (not the
    /// process-global id) so a fresh service produces the same ids for the
    /// same request sequence — the byte-exact golden depends on it.
    trace_seq: AtomicU64,
}

impl ServiceState {
    /// A service over an explicit engine, instance and rule set.
    pub fn new(engine: Engine, instance: TidInstance, rules: Vec<RuleAst>) -> ServiceState {
        ServiceState {
            engine,
            instance,
            rules,
            trace_seq: AtomicU64::new(0),
        }
    }

    /// Builds the service from `stuc-lang` source: facts become the served
    /// instance, rules stay in scope for every request's goals.
    pub fn from_program(engine: Engine, src: &str) -> Result<ServiceState, StucError> {
        let program = parse_program(src).map_err(LangError::from)?;
        let instance = program_instance(&program).map_err(LangError::from)?;
        let rules = program.rules().into_iter().cloned().collect();
        Ok(ServiceState::new(engine, instance, rules))
    }

    /// The shared engine (e.g. to read [`Engine::cache_stats`]).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Facts in the served instance.
    pub fn fact_count(&self) -> usize {
        self.instance.fact_count()
    }

    /// Rules in scope for every request.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Evaluates one request body (rules + goals) and renders the response.
    /// Exposed for the golden test, which also replays bodies in-process.
    pub fn respond(&self, request: &Request) -> Response {
        // Split an optional query string off the path: `/query?timings=1`
        // routes like `/query` with the timings switch set.
        let (path, params) = match request.path.split_once('?') {
            Some((path, params)) => (path, params),
            None => (request.path.as_str(), ""),
        };
        match (request.method.as_str(), path) {
            ("POST", "/query") => {
                let timings = params.split('&').any(|p| p == "timings=1");
                self.respond_query(&request.body, timings)
            }
            ("GET", "/health") => Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"facts\":{},\"rules\":{}}}",
                    self.fact_count(),
                    self.rule_count()
                ),
            ),
            ("GET", "/metrics") => Response::text(200, registry().render_prometheus()),
            ("GET", "/debug/slow") => respond_slow(),
            (method, path) => Response::error(
                404,
                "not-found",
                &format!("no such endpoint: {method} {path}"),
            ),
        }
    }

    fn respond_query(&self, body: &str, timings: bool) -> Response {
        let program = match parse_program(body) {
            Ok(program) => program,
            Err(error) => return Response::error(400, "parse", &error.to_string()),
        };
        let facts = program.facts().count();
        if facts > 0 {
            return Response::error(
                400,
                "facts",
                &format!(
                    "request declares {facts} inline fact(s); the served instance is fixed at \
                     startup — send rules and goals only"
                ),
            );
        }
        let mut rules: Vec<&RuleAst> = self.rules.iter().collect();
        rules.extend(program.rules());
        let trace_id = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut results = Vec::new();
        for query in program.queries() {
            match self
                .engine
                .evaluate_goal(&self.instance, &query.goal, &rules)
            {
                Ok(goal) => {
                    // The slow-log entry carries the *service* trace id, the
                    // same one the response body reports.
                    slowlog::global().note("serve-query", goal.report.wall_time, trace_id, || {
                        goal.source.clone()
                    });
                    let mut fields = format!(
                        "{{\"goal\":\"{}\",\"probability\":{:.9},\"route\":\"{}\",\"backend\":\"{}\",\"lineage_cached\":{},\"gates\":{}",
                        escape_json(&goal.source),
                        goal.probability,
                        goal.decision.route,
                        goal.report.backend_name(),
                        goal.report.lineage_cached,
                        goal.report.circuit_gates
                    );
                    if timings {
                        // Live microsecond laps: only rendered on request,
                        // so the default response stays deterministic.
                        let stages: Vec<String> = goal
                            .report
                            .stage_timings
                            .stages()
                            .iter()
                            .map(|stage| {
                                format!(
                                    "{{\"stage\":\"{}\",\"micros\":{}}}",
                                    escape_json(stage.name),
                                    stage.duration.as_micros()
                                )
                            })
                            .collect();
                        fields.push_str(&format!(
                            ",\"wall_micros\":{},\"stages\":[{}]",
                            goal.report.wall_time.as_micros(),
                            stages.join(",")
                        ));
                    }
                    fields.push('}');
                    results.push(fields);
                }
                Err(error) => {
                    return Response::error(422, "evaluate", &error.to_string());
                }
            }
        }
        Response::json(
            200,
            format!(
                "{{\"trace_id\":{trace_id},\"results\":[{}]}}",
                results.join(",")
            ),
        )
    }
}

/// Renders the process-global slow-query log (`GET /debug/slow`).
fn respond_slow() -> Response {
    let log = slowlog::global();
    let entries: Vec<String> = log
        .entries()
        .iter()
        .map(|entry| {
            format!(
                "{{\"seq\":{},\"what\":\"{}\",\"trace_id\":{},\"wall_micros\":{},\"detail\":\"{}\"}}",
                entry.seq,
                escape_json(entry.what),
                entry.trace_id,
                entry.wall.as_micros(),
                escape_json(&entry.detail)
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"threshold_micros\":{},\"entries\":[{}]}}",
            log.threshold().as_micros(),
            entries.join(",")
        ),
    )
}

/// Lifetime counters of a running server, all atomics — cheap to bump on
/// the hot path, coherent enough for tests and dashboards.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    served: AtomicU64,
    request_errors: AtomicU64,
    in_flight: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`] plus the live queue depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Connections accepted (admitted to the queue).
    pub accepted: u64,
    /// Connections rejected with the typed overload response.
    pub rejected_overload: u64,
    /// Requests answered (any status).
    pub served: u64,
    /// Requests that failed to parse as HTTP (timeout included).
    pub request_errors: u64,
    /// Requests currently being handled by workers.
    pub in_flight: u64,
    /// Connections currently waiting in the accept queue.
    pub queued: usize,
}

/// The bounded hand-off between the acceptor and the workers.
#[derive(Debug)]
struct ConnQueue {
    inner: Mutex<VecQueue>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug, Default)]
struct VecQueue {
    connections: std::collections::VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecQueue::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission control: enqueue, or hand the connection back on overflow.
    fn try_push(&self, connection: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if queue.closed || queue.connections.len() >= self.capacity {
            return Err(connection);
        }
        queue.connections.push_back(connection);
        drop(queue);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(connection) = queue.connections.pop_front() {
                return Some(connection);
            }
            if queue.closed {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .connections
            .len()
    }

    /// Closes the queue: workers drain what is left, then exit. Remaining
    /// connections after the drain are dropped (the peer sees a close).
    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.available.notify_all();
    }
}

/// A running `stuc-serve` instance: acceptor + bounded queue + worker pool
/// over one shared [`ServiceState`]. Dropping without calling
/// [`Server::shutdown`] detaches the threads (the process-exit case);
/// tests call `shutdown` for a clean join.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stats: Arc<ServeStats>,
    queue: Arc<ConnQueue>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving. Returns as soon as the acceptor and the
    /// workers are running; [`Server::addr`] has the actual address (useful
    /// with port 0).
    pub fn spawn(config: ServeConfig, state: ServiceState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let stats = Arc::new(ServeStats::default());
        let queue = Arc::new(ConnQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));

        let worker_count = match config.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        let workers = (0..worker_count)
            .map(|index| {
                let state = Arc::clone(&state);
                let stats = Arc::clone(&stats);
                let queue = Arc::clone(&queue);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("stuc-serve-worker-{index}"))
                    .spawn(move || {
                        while let Some(connection) = queue.pop() {
                            let metrics = serve_metrics();
                            metrics.queue_depth.sub(1);
                            metrics.in_flight.add(1);
                            stats.in_flight.fetch_add(1, Ordering::SeqCst);
                            handle_connection(connection, &state, &stats, &config);
                            stats.in_flight.fetch_sub(1, Ordering::SeqCst);
                            metrics.in_flight.sub(1);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let capacity = config.queue_capacity;
            let io_timeout = config.io_timeout;
            std::thread::Builder::new()
                .name("stuc-serve-acceptor".into())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(mut connection) = connection else {
                            continue;
                        };
                        match queue.try_push(connection) {
                            Ok(()) => {
                                stats.accepted.fetch_add(1, Ordering::SeqCst);
                                serve_metrics().queue_depth.add(1);
                            }
                            Err(rejected) => {
                                // Admission control: typed rejection, written
                                // inline (small fixed-size response), never a
                                // stall.
                                connection = rejected;
                                let _ = connection.set_write_timeout(Some(io_timeout));
                                stats.rejected_overload.fetch_add(1, Ordering::SeqCst);
                                serve_metrics().rejected_overload.inc();
                                Response::error(
                                    503,
                                    "overload",
                                    &format!(
                                        "request queue full (capacity {capacity}); retry later"
                                    ),
                                )
                                .write_to(&mut connection);
                                reject_close(connection);
                            }
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            addr,
            state,
            stats,
            queue,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (engine, instance, rules).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> ServeSnapshot {
        ServeSnapshot {
            accepted: self.stats.accepted.load(Ordering::SeqCst),
            rejected_overload: self.stats.rejected_overload.load(Ordering::SeqCst),
            served: self.stats.served.load(Ordering::SeqCst),
            request_errors: self.stats.request_errors.load(Ordering::SeqCst),
            in_flight: self.stats.in_flight.load(Ordering::SeqCst),
            queued: self.queue.len(),
        }
    }

    /// Blocks forever serving requests — the `stuc-serve` binary's main
    /// loop (the process is stopped by signal/kill).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Closes a rejected connection without triggering a TCP reset. The
/// rejection path never reads the request, so the client's bytes are still
/// in our receive buffer; closing now would send RST and the client could
/// lose the 503 it was owed. Instead: FIN our side, then drain whatever the
/// client sends until it sees the response and closes (bounded by a short
/// timeout so a stalled peer cannot hold the acceptor).
fn reject_close(mut connection: TcpStream) {
    use std::io::Read;
    let _ = connection.shutdown(std::net::Shutdown::Write);
    let _ = connection.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    while let Ok(n) = connection.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// One connection end to end: read a request, route it, write the
/// response, close. Errors become typed 4xx responses (best effort).
fn handle_connection(
    mut connection: TcpStream,
    state: &ServiceState,
    stats: &ServeStats,
    config: &ServeConfig,
) {
    let watch = Stopwatch::start();
    let _ = connection.set_read_timeout(Some(config.io_timeout));
    let _ = connection.set_write_timeout(Some(config.io_timeout));
    let response = match http::read_request(&connection, config.max_body) {
        Ok(request) => match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/stats") => {
                let snapshot = ServeSnapshot {
                    accepted: stats.accepted.load(Ordering::SeqCst),
                    rejected_overload: stats.rejected_overload.load(Ordering::SeqCst),
                    served: stats.served.load(Ordering::SeqCst),
                    request_errors: stats.request_errors.load(Ordering::SeqCst),
                    in_flight: stats.in_flight.load(Ordering::SeqCst),
                    queued: 0,
                };
                let caches = state.engine().cache_stats();
                Response::json(
                    200,
                    format!(
                        "{{\"accepted\":{},\"served\":{},\"rejected_overload\":{},\"request_errors\":{},\"in_flight\":{},\
                         \"caches\":{{\"decompositions\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},\
                         \"lineages\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}}}}}",
                        snapshot.accepted,
                        snapshot.served,
                        snapshot.rejected_overload,
                        snapshot.request_errors,
                        snapshot.in_flight,
                        caches.decompositions.hits,
                        caches.decompositions.misses,
                        caches.decompositions.evictions,
                        caches.lineages.hits,
                        caches.lineages.misses,
                        caches.lineages.evictions,
                    ),
                )
            }
            _ => state.respond(&request),
        },
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(
                413,
                "too-large",
                &format!("body of {declared} bytes exceeds limit {limit}"),
            )
        }
        Err(HttpError::Malformed(what)) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(400, "malformed", &format!("malformed request: {what}"))
        }
        Err(HttpError::Io(error)) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(408, "read", &format!("could not read request: {error}"))
        }
    };
    response.write_to(&mut connection);
    stats.served.fetch_add(1, Ordering::SeqCst);
    let metrics = serve_metrics();
    metrics.served.inc();
    metrics.request_seconds.observe(watch.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const PROGRAM: &str = "\
        0.9 :: Train(\"paris\", \"lyon\").\n\
        0.8 :: Train(\"lyon\", \"nice\").\n\
        Hop(x, y) :- Train(x, y).\n";

    fn request(addr: SocketAddr, payload: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn post_query(addr: SocketAddr, body: &str) -> String {
        request(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        )
    }

    #[test]
    fn serves_goals_health_and_errors_end_to_end() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let server = Server::spawn(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();

        let health = request(addr, "GET /health HTTP/1.1\r\n\r\n");
        assert!(health.contains("200 OK"));
        assert!(health.ends_with("{\"status\":\"ok\",\"facts\":2,\"rules\":1}"));

        let answer = post_query(addr, "?- Train(x, y).");
        assert!(answer.contains("200 OK"), "{answer}");
        assert!(answer.contains("\"probability\":0.980000000"), "{answer}");
        assert!(answer.contains("\"route\":\"safe-plan\""), "{answer}");

        // Rules from the loaded program stay in scope.
        let hop = post_query(addr, "?- Hop(x, y), Hop(y, z).");
        assert!(hop.contains("200 OK"), "{hop}");
        assert!(hop.contains("\"route\":\"circuit\""), "{hop}");

        let parse_error = post_query(addr, "?- Train(x");
        assert!(parse_error.contains("400 Bad Request"), "{parse_error}");
        assert!(parse_error.contains("\"kind\":\"parse\""), "{parse_error}");

        let facts = post_query(addr, "0.5 :: Train(\"a\", \"b\").");
        assert!(facts.contains("\"kind\":\"facts\""), "{facts}");

        let missing = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.contains("404 Not Found"), "{missing}");

        let snapshot = server.stats();
        assert!(snapshot.served >= 6);
        assert_eq!(snapshot.rejected_overload, 0);
        server.shutdown();
    }

    #[test]
    fn repeated_goals_hit_the_shared_lineage_cache() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let server = Server::spawn(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();
        let goal = "?- Hop(x, y), Hop(y, z).";
        let cold = post_query(addr, goal);
        assert!(cold.contains("\"lineage_cached\":false"), "{cold}");
        let warm = post_query(addr, goal);
        assert!(warm.contains("\"lineage_cached\":true"), "{warm}");
        let stats = server.state().engine().cache_stats();
        assert!(stats.lineages.hits >= 1, "{stats:?}");
        server.shutdown();
    }
}
