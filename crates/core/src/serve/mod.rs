//! `stuc-serve` — a long-running query service over one shared [`Engine`].
//!
//! The engine's sharded caches make it cheaply shareable across threads
//! ([`Engine`] is `Send + Sync`); this module puts a network front on that:
//! a hand-rolled HTTP/1.1 server over `std::net` (the container is offline;
//! zero new dependencies) that loads a `stuc-lang` program once and serves
//! its goals to any number of clients.
//!
//! Architecture — three moving parts, all `std`:
//!
//! * an **acceptor** thread that accepts connections and pushes them onto a
//!   **bounded queue** — when the queue is full the acceptor immediately
//!   writes a typed `503 {"error":{"kind":"overload",…}}` and closes, so
//!   overload degrades to fast rejections instead of unbounded queueing or
//!   stalled clients (admission control);
//! * a **worker pool** (thread-per-core by default) popping connections,
//!   reading one request each ([`http`]), evaluating `POST /query` bodies
//!   through [`Engine::evaluate_goal`] against the loaded instance, and
//!   reporting per-goal probability, cost-model route, back-end and
//!   cache-hit flag in the JSON response;
//! * a [`ServeStats`] block of atomics (accepted / served / rejected /
//!   in-flight / shed / timed-out / errors) that tests and the `/stats`
//!   endpoint read.
//!
//! Fault tolerance, layered over that skeleton:
//!
//! * **deadlines** — [`ServeConfig::deadline`] caps every request,
//!   tightened per request by `?deadline_ms=`, anchored at *accept* time
//!   so queueing counts; requests that expired in the queue are answered
//!   `504` without touching the engine, and evaluation trips surface as
//!   typed `504 {"error":{"kind":"deadline",…}}` naming nothing the
//!   client should not see (the stage is in the message);
//! * **cancellation** — a per-request watcher polls the socket during
//!   evaluation and raises the budget's cancel flag when the client
//!   disconnects, so abandoned work stops at the next checkpoint;
//! * **panic isolation** — the whole request path runs under
//!   `catch_unwind`; a panic (bug or injected fault) becomes a typed
//!   `500` and the worker survives;
//! * **load shedding** — beyond queue-full rejection,
//!   [`ServeConfig::shed_cost_ceiling`] sheds queries whose cost-model
//!   estimate exceeds the ceiling while other connections wait
//!   (`503 {"error":{"kind":"shed",…}}` + `Retry-After`), so cheap goals
//!   keep answering under saturation.
//!
//! Protocol: one request per connection (`Connection: close`), endpoints
//! `POST /query` (body = `stuc-lang` rules + goals; inline facts are
//! rejected — the instance is the one loaded at startup; append
//! `?timings=1` for a per-stage wall-time breakdown per goal),
//! `GET /health`, `GET /stats`, `GET /metrics` (Prometheus text format),
//! `GET /debug/slow` (the ring-buffered slow-query log). Default responses
//! are deterministic given the request and the loaded program, which is
//! what the byte-exact golden protocol test (`tests/serve_golden.rs`,
//! `ci/serve_session.golden`) pins down; `/metrics`, `/debug/slow` and
//! `?timings=1` responses carry live timings and are asserted by parsing,
//! not byte equality.

pub mod http;

use crate::engine::metrics::engine_metrics;
use crate::engine::{CancelHandle, Engine, EvalBudget, StucError};
use http::{escape_json, HttpError, Request, Response};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stuc_data::tid::TidInstance;
use stuc_lang::ast::RuleAst;
use stuc_lang::lower::program_instance;
use stuc_lang::{parse_program, LangError};
use stuc_obs::metrics::{registry, Counter, Gauge, Histogram};
use stuc_obs::{slowlog, Stopwatch};

/// Pre-resolved global `stuc_serve_*` metric handles, mirroring the
/// per-server [`ServeStats`] atomics into the process-wide registry (the
/// per-server atomics stay authoritative for [`Server::stats`] and the
/// golden-deterministic `/stats` endpoint).
struct ServeMetrics {
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    rejected_overload: Arc<Counter>,
    served: Arc<Counter>,
    request_errors: Arc<Counter>,
    request_seconds: Arc<Histogram>,
    shed: Arc<Counter>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = registry();
        ServeMetrics {
            queue_depth: reg.gauge(
                "stuc_serve_queue_depth",
                "Connections waiting in the bounded accept queue.",
            ),
            in_flight: reg.gauge(
                "stuc_serve_in_flight",
                "Requests currently being handled by workers.",
            ),
            rejected_overload: reg.counter(
                "stuc_serve_rejected_overload_total",
                "Connections rejected by admission control (queue full).",
            ),
            served: reg.counter(
                "stuc_serve_requests_total",
                "Requests answered (any status).",
            ),
            request_errors: reg.counter(
                "stuc_serve_request_errors_total",
                "Requests that failed to parse as HTTP (timeout included).",
            ),
            request_seconds: reg.histogram(
                "stuc_serve_request_seconds",
                "Wall time from dequeue to response written, per request.",
            ),
            shed: reg.counter(
                "stuc_serve_shed_total",
                "Queries shed by the cost ceiling under queue pressure.",
            ),
        }
    })
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7878`; port 0 picks a free port.
    pub addr: String,
    /// Worker threads; 0 (default) uses
    /// [`std::thread::available_parallelism`] (thread-per-core).
    pub workers: usize,
    /// Bounded accept-queue capacity; connections arriving while the queue
    /// is full are rejected with a typed overload response.
    pub queue_capacity: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Maximum accepted request-body size in bytes.
    pub max_body: usize,
    /// Server-wide per-request deadline, anchored at *accept* time (so
    /// time spent waiting in the queue counts against it). `None` means
    /// unlimited. Clients may tighten it per request with `?deadline_ms=`
    /// but can never exceed it.
    pub deadline: Option<Duration>,
    /// Cost-ceiling load shedding: when set and the server is under
    /// pressure (other connections are waiting in the queue when a request
    /// reaches a worker), queries whose cost-model estimate exceeds this
    /// ceiling are shed with `503 {"error":{"kind":"shed",…}}` and a
    /// `Retry-After` header instead of being evaluated — expensive queries
    /// go first, cheap ones keep answering.
    pub shed_cost_ceiling: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 1024,
            io_timeout: Duration::from_secs(10),
            max_body: 64 * 1024,
            deadline: None,
            shed_cost_ceiling: None,
        }
    }
}

/// Everything the workers share: the engine, the loaded instance, and the
/// program's rules (kept for goal unfolding, exactly like the REPL).
#[derive(Debug)]
pub struct ServiceState {
    engine: Engine,
    instance: TidInstance,
    rules: Vec<RuleAst>,
    /// Service-local trace-id sequence. Query responses carry this (not the
    /// process-global id) so a fresh service produces the same ids for the
    /// same request sequence — the byte-exact golden depends on it.
    trace_seq: AtomicU64,
}

impl ServiceState {
    /// A service over an explicit engine, instance and rule set.
    pub fn new(engine: Engine, instance: TidInstance, rules: Vec<RuleAst>) -> ServiceState {
        ServiceState {
            engine,
            instance,
            rules,
            trace_seq: AtomicU64::new(0),
        }
    }

    /// Builds the service from `stuc-lang` source: facts become the served
    /// instance, rules stay in scope for every request's goals.
    pub fn from_program(engine: Engine, src: &str) -> Result<ServiceState, StucError> {
        let program = parse_program(src).map_err(LangError::from)?;
        let instance = program_instance(&program).map_err(LangError::from)?;
        let rules = program.rules().into_iter().cloned().collect();
        Ok(ServiceState::new(engine, instance, rules))
    }

    /// The shared engine (e.g. to read [`Engine::cache_stats`]).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Facts in the served instance.
    pub fn fact_count(&self) -> usize {
        self.instance.fact_count()
    }

    /// Rules in scope for every request.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The cost model's estimate for a request body (sum over its goals of
    /// the cheaper route's cost), the admission-control signal behind
    /// load shedding. Goals over predicates only the *service* program
    /// defines are estimated as base scans (the estimate parses the body
    /// stand-alone), which under-counts derived goals — acceptable for a
    /// shedding heuristic, which fails open on any error anyway.
    pub fn estimate_cost(&self, body: &str) -> Result<f64, StucError> {
        self.engine.estimate_text_cost(&self.instance, body)
    }

    /// Evaluates one request body (rules + goals) and renders the response.
    /// Exposed for the golden test, which also replays bodies in-process.
    pub fn respond(&self, request: &Request) -> Response {
        // Split an optional query string off the path: `/query?timings=1`
        // routes like `/query` with the timings switch set.
        let (path, params) = match request.path.split_once('?') {
            Some((path, params)) => (path, params),
            None => (request.path.as_str(), ""),
        };
        match (request.method.as_str(), path) {
            ("POST", "/query") => {
                let timings = params.split('&').any(|p| p == "timings=1");
                let explain = params.split('&').any(|p| p == "explain=1");
                self.respond_query(&request.body, timings, explain)
            }
            ("GET", "/health") => Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"facts\":{},\"rules\":{}}}",
                    self.fact_count(),
                    self.rule_count()
                ),
            ),
            ("GET", "/metrics") => Response::text(200, registry().render_prometheus()),
            ("GET", "/debug/slow") => respond_slow(),
            ("GET", "/debug/profile") => respond_profile(params),
            (method, path) => Response::error(
                404,
                "not-found",
                &format!("no such endpoint: {method} {path}"),
            ),
        }
    }

    fn respond_query(&self, body: &str, timings: bool, explain: bool) -> Response {
        let program = match parse_program(body) {
            Ok(program) => program,
            Err(error) => return Response::error(400, "parse", &error.to_string()),
        };
        let facts = program.facts().count();
        if facts > 0 {
            return Response::error(
                400,
                "facts",
                &format!(
                    "request declares {facts} inline fact(s); the served instance is fixed at \
                     startup — send rules and goals only"
                ),
            );
        }
        let mut rules: Vec<&RuleAst> = self.rules.iter().collect();
        rules.extend(program.rules());
        let trace_id = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut results = Vec::new();
        for query in program.queries() {
            // Panic isolation: a panic inside evaluation (bug or injected
            // fault) becomes a typed 500 for this request; the worker
            // thread and the shared engine survive.
            match crate::engine::catch_panic(|| {
                self.engine
                    .evaluate_goal(&self.instance, &query.goal, &rules)
            }) {
                Ok(goal) => {
                    // The slow-log entry carries the *service* trace id, the
                    // same one the response body reports.
                    slowlog::global().note("serve-query", goal.report.wall_time, trace_id, || {
                        goal.source.clone()
                    });
                    let mut fields = format!(
                        "{{\"goal\":\"{}\",\"probability\":{:.9},\"route\":\"{}\",\"backend\":\"{}\",\"lineage_cached\":{},\"gates\":{}",
                        escape_json(&goal.source),
                        goal.probability,
                        goal.decision.route,
                        goal.report.backend_name(),
                        goal.report.lineage_cached,
                        goal.report.circuit_gates
                    );
                    if timings {
                        // Live microsecond laps: only rendered on request,
                        // so the default response stays deterministic.
                        let stages: Vec<String> = goal
                            .report
                            .stage_timings
                            .stages()
                            .iter()
                            .map(|stage| {
                                format!(
                                    "{{\"stage\":\"{}\",\"micros\":{}}}",
                                    escape_json(stage.name),
                                    stage.duration.as_micros()
                                )
                            })
                            .collect();
                        fields.push_str(&format!(
                            ",\"wall_micros\":{},\"stages\":[{}]",
                            goal.report.wall_time.as_micros(),
                            stages.join(",")
                        ));
                    }
                    if explain {
                        // The explanation runs *after* the evaluation, so
                        // it sees the cache the run just warmed and agrees
                        // with the report above on route/backend/width.
                        // Its JSON is deterministic (no floats, no
                        // timings), so it is part of the golden protocol.
                        match self
                            .engine
                            .explain_goal(&self.instance, &query.goal, &rules)
                        {
                            Ok(explanation) => {
                                fields.push_str(&format!(",\"explain\":{}", explanation.to_json()));
                            }
                            Err(error) => {
                                fields.push_str(&format!(
                                    ",\"explain_error\":\"{}\"",
                                    escape_json(&error.to_string())
                                ));
                            }
                        }
                    }
                    fields.push('}');
                    results.push(fields);
                }
                Err(StucError::DeadlineExceeded { stage }) => {
                    engine_metrics().deadline_exceeded.inc();
                    // Failed evaluations are outliers by definition:
                    // retained past the threshold, tagged with the stage
                    // that noticed the trip.
                    slowlog::global().note_failure(
                        "serve-query",
                        "deadline-exceeded",
                        Duration::ZERO,
                        trace_id,
                        || format!("{}: stage={stage}", query.goal),
                    );
                    return Response::error(
                        504,
                        "deadline",
                        &format!("deadline exceeded during {stage}"),
                    );
                }
                Err(StucError::Cancelled { stage }) => {
                    engine_metrics().cancelled.inc();
                    slowlog::global().note_failure(
                        "serve-query",
                        "cancelled",
                        Duration::ZERO,
                        trace_id,
                        || format!("{}: stage={stage}", query.goal),
                    );
                    return Response::error(
                        504,
                        "cancelled",
                        &format!("evaluation cancelled during {stage} (client went away?)"),
                    );
                }
                Err(StucError::Internal { message }) => {
                    // Panics land in the slow log with the goal that caused
                    // them: `/debug/slow` is the operator's first stop.
                    slowlog::global().note_failure(
                        "serve-query",
                        "panic",
                        Duration::ZERO,
                        trace_id,
                        || format!("{}: {message}", query.goal),
                    );
                    return Response::error(500, "internal", &message);
                }
                Err(error) => {
                    return Response::error(422, "evaluate", &error.to_string());
                }
            }
        }
        Response::json(
            200,
            format!(
                "{{\"trace_id\":{trace_id},\"results\":[{}]}}",
                results.join(",")
            ),
        )
    }
}

/// Renders the process-global slow-query log (`GET /debug/slow`).
fn respond_slow() -> Response {
    let log = slowlog::global();
    let entries: Vec<String> = log
        .entries()
        .iter()
        .map(|entry| {
            format!(
                "{{\"seq\":{},\"what\":\"{}\",\"outcome\":\"{}\",\"trace_id\":{},\"wall_micros\":{},\"detail\":\"{}\"}}",
                entry.seq,
                escape_json(entry.what),
                escape_json(entry.outcome),
                entry.trace_id,
                entry.wall.as_micros(),
                escape_json(&entry.detail)
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"threshold_micros\":{},\"entries\":[{}]}}",
            log.threshold().as_micros(),
            entries.join(",")
        ),
    )
}

/// `GET /debug/profile?seconds=N&hz=H` — block this worker for `N`
/// seconds sampling every registered thread's span-stack shadow, then
/// return the aggregate as collapsed flamegraph stacks (`stack count`
/// lines, `flamegraph.pl`/speedscope-compatible). Other workers keep
/// serving queries while one samples.
///
/// Gated on the profiler being armed (`--profile-hz` on `stuc-serve`, or
/// `stuc_obs::profile::set_enabled(true)` in-process): an unarmed process
/// has no span shadows to sample, so the endpoint answers a typed `409`
/// instead of returning 100% idle samples.
fn respond_profile(params: &str) -> Response {
    if !stuc_obs::profile::enabled() {
        return Response::error(
            409,
            "profiling-disabled",
            "the sampling profiler is off; start stuc-serve with --profile-hz N",
        );
    }
    let mut seconds = 2.0f64;
    let mut hz = stuc_obs::profile::default_hz();
    for param in params.split('&') {
        if let Some(value) = param.strip_prefix("seconds=") {
            match value.parse::<f64>() {
                Ok(s) if s.is_finite() && s > 0.0 => seconds = s,
                _ => return Response::error(400, "profile", "seconds= needs a positive number"),
            }
        } else if let Some(value) = param.strip_prefix("hz=") {
            match value.parse::<u32>() {
                Ok(h) if h > 0 => hz = h,
                _ => return Response::error(400, "profile", "hz= needs a positive integer"),
            }
        }
    }
    // Bound the worker-blocking window and the sampling rate: profiling is
    // diagnostics, not a denial-of-service lever.
    let seconds = seconds.min(60.0);
    let hz = hz.min(1000);
    let report = stuc_obs::profile::sample_for(Duration::from_secs_f64(seconds), hz);
    Response::text(200, report.flamegraph_collapsed())
}

/// Lifetime counters of a running server, all atomics — cheap to bump on
/// the hot path, coherent enough for tests and dashboards.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    served: AtomicU64,
    request_errors: AtomicU64,
    in_flight: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`] plus the live queue depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Connections accepted (admitted to the queue).
    pub accepted: u64,
    /// Connections rejected with the typed overload response.
    pub rejected_overload: u64,
    /// Requests answered (any status).
    pub served: u64,
    /// Requests that failed to parse as HTTP (timeout included).
    pub request_errors: u64,
    /// Requests currently being handled by workers.
    pub in_flight: u64,
    /// Queries shed by the cost ceiling under queue pressure.
    pub shed: u64,
    /// Requests answered with a deadline/cancellation timeout (expired in
    /// the queue or tripped during evaluation).
    pub timed_out: u64,
    /// Connections currently waiting in the accept queue.
    pub queued: usize,
}

/// The bounded hand-off between the acceptor and the workers. Each entry
/// carries its *accept* timestamp so deadlines count queue time and
/// already-expired requests can be rejected without evaluation.
#[derive(Debug)]
struct ConnQueue {
    inner: Mutex<VecQueue>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug, Default)]
struct VecQueue {
    connections: std::collections::VecDeque<(TcpStream, Instant)>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecQueue::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admission control: enqueue, or hand the connection back on overflow.
    fn try_push(&self, connection: TcpStream, accepted_at: Instant) -> Result<(), TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if queue.closed || queue.connections.len() >= self.capacity {
            return Err(connection);
        }
        queue.connections.push_back((connection, accepted_at));
        drop(queue);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available; `None` once closed and empty.
    fn pop(&self) -> Option<(TcpStream, Instant)> {
        let mut queue = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(entry) = queue.connections.pop_front() {
                return Some(entry);
            }
            if queue.closed {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .connections
            .len()
    }

    /// Closes the queue: workers drain what is left, then exit. Remaining
    /// connections after the drain are dropped (the peer sees a close).
    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.available.notify_all();
    }
}

/// Watches a connection for client disconnect while its query evaluates,
/// raising `cancel` on EOF so the engine's budget checkpoints abandon the
/// work (there is nobody left to answer).
///
/// Mechanics: the socket fd is duplicated (`try_clone`) and polled with a
/// non-blocking `peek` every ~20 ms. `O_NONBLOCK` lives on the shared open
/// file description, so the watcher **must** be dropped (which joins the
/// poller and restores blocking mode) before the worker writes the
/// response. A client that half-closes its write side after sending the
/// request is indistinguishable from one that hung up and is treated as
/// gone.
struct DisconnectWatcher {
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<TcpStream>>,
}

impl DisconnectWatcher {
    fn spawn(connection: &TcpStream, cancel: CancelHandle) -> DisconnectWatcher {
        let done = Arc::new(AtomicBool::new(false));
        let handle = connection.try_clone().ok().and_then(|probe| {
            let done = Arc::clone(&done);
            std::thread::Builder::new()
                .name("stuc-serve-watch".into())
                .spawn(move || {
                    if probe.set_nonblocking(true).is_err() {
                        return probe;
                    }
                    let mut buffer = [0u8; 1];
                    while !done.load(Ordering::SeqCst) {
                        match probe.peek(&mut buffer) {
                            // EOF: the client is gone (or half-closed).
                            Ok(0) => {
                                cancel.cancel();
                                break;
                            }
                            // Early bytes of a pipelined request; ignore.
                            Ok(_) => {}
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                            // Reset/any hard error: nobody to answer.
                            Err(_) => {
                                cancel.cancel();
                                break;
                            }
                        }
                        // Parked, not slept: the worker's Drop unparks us,
                        // so finishing a request never waits out the poll
                        // interval.
                        std::thread::park_timeout(Duration::from_millis(20));
                    }
                    probe
                })
                .ok()
        });
        DisconnectWatcher { done, handle }
    }
}

impl Drop for DisconnectWatcher {
    fn drop(&mut self) {
        self.done.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            // Join first so no poll races the restore, then put the shared
            // file description back in blocking mode for the response write.
            if let Ok(probe) = handle.join() {
                let _ = probe.set_nonblocking(false);
            }
        }
    }
}

/// A running `stuc-serve` instance: acceptor + bounded queue + worker pool
/// over one shared [`ServiceState`]. Dropping without calling
/// [`Server::shutdown`] detaches the threads (the process-exit case);
/// tests call `shutdown` for a clean join.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stats: Arc<ServeStats>,
    queue: Arc<ConnQueue>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving. Returns as soon as the acceptor and the
    /// workers are running; [`Server::addr`] has the actual address (useful
    /// with port 0).
    pub fn spawn(config: ServeConfig, state: ServiceState) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(state);
        let stats = Arc::new(ServeStats::default());
        let queue = Arc::new(ConnQueue::new(config.queue_capacity));
        let stop = Arc::new(AtomicBool::new(false));

        let worker_count = match config.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let state = Arc::clone(&state);
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let config = config.clone();
            let worker = std::thread::Builder::new()
                .name(format!("stuc-serve-worker-{index}"))
                .spawn(move || {
                    while let Some((connection, accepted_at)) = queue.pop() {
                        let metrics = serve_metrics();
                        metrics.queue_depth.sub(1);
                        metrics.in_flight.add(1);
                        stats.in_flight.fetch_add(1, Ordering::SeqCst);
                        // Belt and braces over the per-request catch inside
                        // handle_connection: even a panic while *writing*
                        // the response (past that catch) must not kill the
                        // worker — the connection is lost, the pool is not.
                        let _ = crate::engine::catch_panic(|| {
                            handle_connection(
                                connection,
                                accepted_at,
                                &state,
                                &stats,
                                &config,
                                &queue,
                            );
                            Ok(())
                        });
                        stats.in_flight.fetch_sub(1, Ordering::SeqCst);
                        metrics.in_flight.sub(1);
                    }
                })?;
            workers.push(worker);
        }

        let acceptor = {
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let capacity = config.queue_capacity;
            let io_timeout = config.io_timeout;
            std::thread::Builder::new()
                .name("stuc-serve-acceptor".into())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        // A panic on the accept path (e.g. an injected
                        // serve-accept fault) drops this one connection,
                        // never the acceptor thread.
                        let _ = crate::engine::catch_panic(|| {
                            stuc_fault::failpoint!("serve-accept");
                            let Ok(mut connection) = connection else {
                                return Ok(());
                            };
                            match queue.try_push(connection, Instant::now()) {
                                Ok(()) => {
                                    stats.accepted.fetch_add(1, Ordering::SeqCst);
                                    serve_metrics().queue_depth.add(1);
                                }
                                Err(rejected) => {
                                    // Admission control: typed rejection,
                                    // written inline (small fixed-size
                                    // response), never a stall.
                                    connection = rejected;
                                    let _ = connection.set_write_timeout(Some(io_timeout));
                                    stats.rejected_overload.fetch_add(1, Ordering::SeqCst);
                                    serve_metrics().rejected_overload.inc();
                                    Response::error(
                                        503,
                                        "overload",
                                        &format!(
                                            "request queue full (capacity {capacity}); retry later"
                                        ),
                                    )
                                    .with_retry_after(1)
                                    .write_to(&mut connection);
                                    reject_close(connection);
                                }
                            }
                            Ok(())
                        });
                    }
                })?
        };

        Ok(Server {
            addr,
            state,
            stats,
            queue,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (engine, instance, rules).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> ServeSnapshot {
        ServeSnapshot {
            accepted: self.stats.accepted.load(Ordering::SeqCst),
            rejected_overload: self.stats.rejected_overload.load(Ordering::SeqCst),
            served: self.stats.served.load(Ordering::SeqCst),
            request_errors: self.stats.request_errors.load(Ordering::SeqCst),
            in_flight: self.stats.in_flight.load(Ordering::SeqCst),
            shed: self.stats.shed.load(Ordering::SeqCst),
            timed_out: self.stats.timed_out.load(Ordering::SeqCst),
            queued: self.queue.len(),
        }
    }

    /// Blocks forever serving requests — the `stuc-serve` binary's main
    /// loop (the process is stopped by signal/kill).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Closes a rejected connection without triggering a TCP reset. The
/// rejection path never reads the request, so the client's bytes are still
/// in our receive buffer; closing now would send RST and the client could
/// lose the 503 it was owed. Instead: FIN our side, then drain whatever the
/// client sends until it sees the response and closes (bounded by a short
/// timeout so a stalled peer cannot hold the acceptor).
fn reject_close(mut connection: TcpStream) {
    use std::io::Read;
    let _ = connection.shutdown(std::net::Shutdown::Write);
    let _ = connection.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    while let Ok(n) = connection.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// The client's `?deadline_ms=` request parameter, when present and
/// numeric.
fn deadline_ms_param(path: &str) -> Option<u64> {
    let (_, params) = path.split_once('?')?;
    params
        .split('&')
        .find_map(|p| p.strip_prefix("deadline_ms=")?.parse().ok())
}

/// Handles `POST /query` under the fault-tolerance policies, in order:
///
/// 1. **Deadline-aware queueing** — the effective deadline is the server's
///    cap tightened by `?deadline_ms=`, anchored at *accept* time; a
///    request that expired while queued is answered `504` immediately,
///    sparing the engine work nobody is waiting for.
/// 2. **Cost-ceiling shedding** — under pressure (other connections are
///    waiting in the queue right now), a query whose cost-model estimate
///    exceeds the configured ceiling is shed with `503` + `Retry-After`
///    (estimate errors fail open: evaluation produces the typed error).
/// 3. **Budgeted evaluation** — the budget (deadline + a disconnect-raised
///    cancel flag) is installed for the evaluation scope; the engine's
///    checkpoints surface trips as typed `504` responses.
fn handle_query(
    connection: &TcpStream,
    request: &Request,
    accepted_at: Instant,
    state: &ServiceState,
    stats: &ServeStats,
    config: &ServeConfig,
    queue: &ConnQueue,
) -> Response {
    let client_ms = deadline_ms_param(&request.path).map(Duration::from_millis);
    let effective = match (config.deadline, client_ms) {
        (Some(server), Some(client)) => Some(server.min(client)),
        (server, client) => server.or(client),
    };
    let deadline_at = effective.map(|limit| accepted_at + limit);

    if let Some(deadline) = deadline_at {
        if Instant::now() >= deadline {
            stats.timed_out.fetch_add(1, Ordering::SeqCst);
            engine_metrics().deadline_exceeded.inc();
            slowlog::global().note_failure(
                "serve-queue",
                "deadline-exceeded",
                accepted_at.elapsed(),
                0,
                || "deadline expired while the request was queued".to_string(),
            );
            return Response::error(
                504,
                "deadline",
                "deadline expired while the request was queued; evaluation was not started",
            );
        }
    }

    if let Some(ceiling) = config.shed_cost_ceiling {
        let under_pressure = queue.len() > 0;
        if under_pressure {
            if let Ok(cost) = state.estimate_cost(&request.body) {
                if cost > ceiling {
                    stats.shed.fetch_add(1, Ordering::SeqCst);
                    serve_metrics().shed.inc();
                    return Response::error(
                        503,
                        "shed",
                        &format!(
                            "query cost estimate {cost:.1} exceeds the ceiling {ceiling:.1} \
                             and the server is under load; retry later"
                        ),
                    )
                    .with_retry_after(1);
                }
            }
        }
    }

    let cancel = CancelHandle::new();
    let mut budget = match deadline_at {
        Some(deadline) => EvalBudget::with_deadline_at(deadline),
        None => EvalBudget::unlimited(),
    };
    budget = budget.cancelled_by(&cancel);
    let watcher = DisconnectWatcher::spawn(connection, cancel);
    let (response, budget_stats) =
        stuc_fault::budget::scope_with_stats(budget, || state.respond(request));
    // Joins the poller and restores blocking mode before the response write.
    drop(watcher);
    engine_metrics()
        .budget_check_seconds
        .observe(budget_stats.spent);
    if response.status == 504 {
        stats.timed_out.fetch_add(1, Ordering::SeqCst);
    }
    response
}

/// One connection end to end: read a request, route it, write the
/// response, close. Errors become typed 4xx/5xx responses (best effort),
/// and a panic anywhere on the request path (reading included) becomes a
/// typed 500 — the worker thread always survives to take the next
/// connection.
fn handle_connection(
    mut connection: TcpStream,
    accepted_at: Instant,
    state: &ServiceState,
    stats: &ServeStats,
    config: &ServeConfig,
    queue: &ConnQueue,
) {
    let watch = Stopwatch::start();
    let _ = connection.set_read_timeout(Some(config.io_timeout));
    let _ = connection.set_write_timeout(Some(config.io_timeout));
    let response = crate::engine::catch_panic(|| {
        Ok(route_request(
            &connection,
            accepted_at,
            state,
            stats,
            config,
            queue,
        ))
    })
    .unwrap_or_else(|error| match error {
        StucError::Internal { message } => Response::error(500, "internal", &message),
        other => Response::error(500, "internal", &other.to_string()),
    });
    response.write_to(&mut connection);
    stats.served.fetch_add(1, Ordering::SeqCst);
    let metrics = serve_metrics();
    metrics.served.inc();
    metrics.request_seconds.observe(watch.elapsed());
}

/// Reads and routes one request (the panic-isolated part of
/// [`handle_connection`]).
fn route_request(
    connection: &TcpStream,
    accepted_at: Instant,
    state: &ServiceState,
    stats: &ServeStats,
    config: &ServeConfig,
    queue: &ConnQueue,
) -> Response {
    match http::read_request(connection, config.max_body) {
        Ok(request) => {
            let path = request.path.split('?').next().unwrap_or("");
            match (request.method.as_str(), path) {
                ("GET", "/stats") => {
                    let snapshot = ServeSnapshot {
                        accepted: stats.accepted.load(Ordering::SeqCst),
                        rejected_overload: stats.rejected_overload.load(Ordering::SeqCst),
                        served: stats.served.load(Ordering::SeqCst),
                        request_errors: stats.request_errors.load(Ordering::SeqCst),
                        in_flight: stats.in_flight.load(Ordering::SeqCst),
                        shed: stats.shed.load(Ordering::SeqCst),
                        timed_out: stats.timed_out.load(Ordering::SeqCst),
                        queued: 0,
                    };
                    let caches = state.engine().cache_stats();
                    Response::json(
                        200,
                        format!(
                            "{{\"accepted\":{},\"served\":{},\"rejected_overload\":{},\"request_errors\":{},\"in_flight\":{},\"shed\":{},\"timed_out\":{},\
                             \"caches\":{{\"decompositions\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}},\
                             \"lineages\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}}}}}",
                            snapshot.accepted,
                            snapshot.served,
                            snapshot.rejected_overload,
                            snapshot.request_errors,
                            snapshot.in_flight,
                            snapshot.shed,
                            snapshot.timed_out,
                            caches.decompositions.hits,
                            caches.decompositions.misses,
                            caches.decompositions.evictions,
                            caches.lineages.hits,
                            caches.lineages.misses,
                            caches.lineages.evictions,
                        ),
                    )
                }
                ("POST", "/query") => handle_query(
                    connection,
                    &request,
                    accepted_at,
                    state,
                    stats,
                    config,
                    queue,
                ),
                _ => state.respond(&request),
            }
        }
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(
                413,
                "too-large",
                &format!("body of {declared} bytes exceeds limit {limit}"),
            )
        }
        Err(HttpError::Malformed(what)) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(400, "malformed", &format!("malformed request: {what}"))
        }
        Err(HttpError::Io(error)) => {
            stats.request_errors.fetch_add(1, Ordering::SeqCst);
            serve_metrics().request_errors.inc();
            Response::error(408, "read", &format!("could not read request: {error}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    const PROGRAM: &str = "\
        0.9 :: Train(\"paris\", \"lyon\").\n\
        0.8 :: Train(\"lyon\", \"nice\").\n\
        Hop(x, y) :- Train(x, y).\n";

    fn request(addr: SocketAddr, payload: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn post_query(addr: SocketAddr, body: &str) -> String {
        request(
            addr,
            &format!(
                "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        )
    }

    #[test]
    fn serves_goals_health_and_errors_end_to_end() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let server = Server::spawn(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();

        let health = request(addr, "GET /health HTTP/1.1\r\n\r\n");
        assert!(health.contains("200 OK"));
        assert!(health.ends_with("{\"status\":\"ok\",\"facts\":2,\"rules\":1}"));

        let answer = post_query(addr, "?- Train(x, y).");
        assert!(answer.contains("200 OK"), "{answer}");
        assert!(answer.contains("\"probability\":0.980000000"), "{answer}");
        assert!(answer.contains("\"route\":\"safe-plan\""), "{answer}");

        // Rules from the loaded program stay in scope.
        let hop = post_query(addr, "?- Hop(x, y), Hop(y, z).");
        assert!(hop.contains("200 OK"), "{hop}");
        assert!(hop.contains("\"route\":\"circuit\""), "{hop}");

        let parse_error = post_query(addr, "?- Train(x");
        assert!(parse_error.contains("400 Bad Request"), "{parse_error}");
        assert!(parse_error.contains("\"kind\":\"parse\""), "{parse_error}");

        let facts = post_query(addr, "0.5 :: Train(\"a\", \"b\").");
        assert!(facts.contains("\"kind\":\"facts\""), "{facts}");

        let missing = request(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.contains("404 Not Found"), "{missing}");

        let snapshot = server.stats();
        assert!(snapshot.served >= 6);
        assert_eq!(snapshot.rejected_overload, 0);
        server.shutdown();
    }

    /// Holds the worker (or a queue slot) hostage: declares a body it never
    /// sends, so the server blocks reading until the stream is dropped.
    fn stall(addr: SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 64\r\n\r\npartial")
            .unwrap();
        stream
    }

    #[test]
    fn a_zero_deadline_request_gets_a_typed_504_without_evaluation() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let server = Server::spawn(
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();
        // Anchored at accept time, a 0 ms deadline has always expired by
        // the time a worker dequeues the connection.
        let body = "?- Train(x, y).";
        let response = request(
            addr,
            &format!(
                "POST /query?deadline_ms=0 HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(response.contains("504 Gateway Timeout"), "{response}");
        assert!(response.contains("\"kind\":\"deadline\""), "{response}");
        assert!(
            response.contains("expired while the request was queued"),
            "{response}"
        );
        let stats = server.stats();
        assert_eq!(stats.timed_out, 1, "{stats:?}");
        // The engine stays healthy: the same goal without a deadline
        // answers exactly.
        let ok = post_query(addr, body);
        assert!(ok.contains("\"probability\":0.980000000"), "{ok}");
        server.shutdown();
    }

    #[test]
    fn expensive_queries_are_shed_under_pressure_while_cheap_ones_answer() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let cheap_goal = "?- Train(x, y).";
        let pricey_goal = "?- Train(x, y), Train(y, z), Train(z, w).";
        let cheap_cost = state.estimate_cost(cheap_goal).unwrap();
        let pricey_cost = state.estimate_cost(pricey_goal).unwrap();
        assert!(
            pricey_cost > cheap_cost,
            "cost model must separate the goals: {cheap_cost} vs {pricey_cost}"
        );
        let server = Server::spawn(
            ServeConfig {
                workers: 1,
                queue_capacity: 8,
                // Short, so dropped hostages release the worker quickly.
                io_timeout: Duration::from_millis(500),
                shed_cost_ceiling: Some((cheap_cost + pricey_cost) / 2.0),
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();

        let wait_until = |what: &str, ready: &dyn Fn(&ServeSnapshot) -> bool| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let stats = server.stats();
                if ready(&stats) {
                    break;
                }
                assert!(Instant::now() < deadline, "server never {what}: {stats:?}");
                std::thread::sleep(Duration::from_millis(2));
            }
        };

        // Occupy the single worker, then queue the expensive probe and one
        // more hostage behind it: when the worker finally dequeues the
        // probe, the queue is provably non-empty — pressure, not a race.
        let hostage_worker = stall(addr);
        wait_until("picked up the first hostage", &|s| {
            s.in_flight == 1 && s.queued == 0
        });
        let probe = std::thread::spawn(move || post_query(addr, pricey_goal));
        wait_until("queued the probe", &|s| s.queued == 1);
        let hostage_queue = stall(addr);
        wait_until("queued the second hostage", &|s| s.queued == 2);
        drop(hostage_worker);

        let shed = probe.join().unwrap();
        assert!(shed.contains("503 Service Unavailable"), "{shed}");
        assert!(shed.contains("\"kind\":\"shed\""), "{shed}");
        assert!(shed.contains("Retry-After: 1"), "{shed}");
        drop(hostage_queue);
        wait_until("drained the hostages", &|s| {
            s.queued == 0 && s.in_flight == 0
        });

        // Cheap goals keep answering — exactly — and an idle server serves
        // even the expensive goal (shedding needs pressure, not just cost).
        let cheap = post_query(addr, cheap_goal);
        assert!(cheap.contains("\"probability\":0.980000000"), "{cheap}");
        let pricey = post_query(addr, pricey_goal);
        assert!(pricey.contains("200 OK"), "{pricey}");
        let stats = server.stats();
        assert_eq!(stats.shed, 1, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn repeated_goals_hit_the_shared_lineage_cache() {
        let state = ServiceState::from_program(Engine::new(), PROGRAM).unwrap();
        let server = Server::spawn(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            state,
        )
        .unwrap();
        let addr = server.addr();
        let goal = "?- Hop(x, y), Hop(y, z).";
        let cold = post_query(addr, goal);
        assert!(cold.contains("\"lineage_cached\":false"), "{cold}");
        let warm = post_query(addr, goal);
        assert!(warm.contains("\"lineage_cached\":true"), "{warm}");
        let stats = server.state().engine().cache_stats();
        assert!(stats.lineages.hits >= 1, "{stats:?}");
        server.shutdown();
    }
}
