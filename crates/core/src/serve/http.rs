//! A deliberately small HTTP/1.1 subset for [`stuc-serve`](super):
//! request parsing and deterministic response rendering over `std::net`
//! only — the container is offline, so no HTTP crate is an option, and the
//! golden protocol test wants byte-exact transcripts anyway.
//!
//! Supported shape: one request per connection (`Connection: close` on
//! every response), `GET`/`POST`, headers up to a fixed count, an optional
//! `Content-Length` body. Responses carry exactly four headers in a fixed
//! order and no date, so a transcript replays identically across runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on header count per request — beyond this the request is
/// malformed (also the defence against unbounded header streams).
const MAX_HEADERS: usize = 64;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request path verbatim (`/query`, `/health`, …).
    pub path: String,
    /// The body, decoded per `Content-Length` (empty when absent).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not the HTTP subset we speak.
    Malformed(String),
    /// The declared body exceeds the server's `max_body`.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The socket failed (timeout included) before a full request arrived.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
            HttpError::Io(error) => write!(f, "i/o while reading request: {error}"),
        }
    }
}

/// Reads one request from the stream (blocking, honouring the stream's
/// read timeout). `max_body` bounds the accepted `Content-Length`.
pub fn read_request(stream: &TcpStream, max_body: usize) -> Result<Request, HttpError> {
    stuc_fault::failpoint!("serve-read", |m| HttpError::Io(std::io::Error::other(m)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(HttpError::Io)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line {:?}",
                line.trim_end()
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("version {version:?}")));
    }

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(HttpError::Io)?;
        let header = header.trim_end();
        if header.is_empty() {
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader.read_exact(&mut body).map_err(HttpError::Io)?;
            }
            let body = String::from_utf8(body)
                .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
            return Ok(Request { method, path, body });
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("header {header:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("content-length {value:?}")))?;
            if content_length > max_body {
                return Err(HttpError::BodyTooLarge {
                    declared: content_length,
                    limit: max_body,
                });
            }
        }
    }
    Err(HttpError::Malformed(format!(
        "more than {MAX_HEADERS} headers"
    )))
}

/// One response: status plus a body. Rendering is deterministic —
/// fixed header set, fixed order, no timestamps.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body.
    pub body: String,
    /// The `Content-Type` header value (`application/json` unless built
    /// with [`Response::text`]).
    pub content_type: &'static str,
    /// Optional `Retry-After` header in seconds, rendered only when set —
    /// load-shedding and overload responses carry it so clients can back
    /// off a sensible amount instead of guessing.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A response with the given status and JSON body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            retry_after: None,
        }
    }

    /// A plain-text response (the Prometheus exposition format of
    /// `GET /metrics` is text, not JSON).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            retry_after: None,
        }
    }

    /// Adds a `Retry-After` header (seconds). The value is a fixed small
    /// integer chosen by policy, so rendering stays deterministic.
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// A typed error body: `{"error":{"kind":…,"message":…}}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
                escape_json(kind),
                escape_json(message)
            ),
        )
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The exact bytes on the wire. `Retry-After` renders between
    /// `Content-Length` and `Connection` only when set, so responses
    /// without it are byte-identical to earlier releases.
    pub fn to_bytes(&self) -> Vec<u8> {
        let retry_after = match self.retry_after {
            Some(seconds) => format!("Retry-After: {seconds}\r\n"),
            None => String::new(),
        };
        format!(
            "HTTP/1.1 {} {}\r\nServer: stuc-serve\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            retry_after,
            self.body
        )
        .into_bytes()
    }

    /// Writes the response (best-effort: a peer that hung up mid-write is
    /// its own problem, not the server's).
    pub fn write_to(&self, stream: &mut TcpStream) {
        stuc_fault::failpoint!("serve-write");
        let _ = stream.write_all(&self.to_bytes());
        let _ = stream.flush();
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_render_deterministically() {
        let response = Response::error(503, "overload", "queue full");
        let bytes = response.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n"));
        assert!(text.ends_with("{\"error\":{\"kind\":\"overload\",\"message\":\"queue full\"}}"));
        assert_eq!(bytes, response.to_bytes(), "rendering must be stable");
        // No Retry-After header unless explicitly set.
        assert!(!text.contains("Retry-After"));
    }

    #[test]
    fn retry_after_renders_only_when_set() {
        let shed = Response::error(503, "shed", "cost over ceiling").with_retry_after(1);
        let text = String::from_utf8(shed.to_bytes()).unwrap();
        assert!(
            text.contains("\r\nRetry-After: 1\r\nConnection: close\r\n"),
            "{text}"
        );
        let timeout = Response::error(504, "deadline", "too slow");
        let text = String::from_utf8(timeout.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"));
        assert!(!text.contains("Retry-After"));
    }

    #[test]
    fn json_escaping_covers_the_control_set() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }
}
