//! Deterministic workload generators shared by tests, examples and benches.

use std::collections::BTreeMap;
use stuc_circuit::circuit::VarId;
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;
use stuc_graph::generators::SplitMix64;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::eval::all_matches;

/// A path-shaped TID instance: `R(c0, c1), R(c1, c2), …` with per-fact
/// probabilities jittered deterministically around `base_probability`.
pub fn path_tid(n: usize, base_probability: f64, seed: u64) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let mut tid = TidInstance::new();
    for i in 0..n {
        let p = (base_probability + 0.2 * (rng.next_f64() - 0.5)).clamp(0.05, 0.95);
        tid.add_fact_named("R", &[&format!("c{i}"), &format!("c{}", i + 1)], p);
    }
    tid
}

/// A star-shaped TID for the hierarchical query `R(x), S(x, y)`: `n` hubs,
/// each with `fan` spokes.
pub fn rst_star_tid(n: usize, base_probability: f64, seed: u64) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let mut tid = TidInstance::new();
    for i in 0..n {
        let p = (base_probability + 0.3 * (rng.next_f64() - 0.5)).clamp(0.05, 0.95);
        tid.add_fact_named("R", &[&format!("h{i}")], p);
        for j in 0..2 {
            let q = (base_probability + 0.3 * (rng.next_f64() - 0.5)).clamp(0.05, 0.95);
            tid.add_fact_named("S", &[&format!("h{i}"), &format!("s{i}_{j}")], q);
        }
    }
    tid
}

/// The paper's hard query `R(x), S(x, y), T(y)` on *path-shaped* data:
/// `S` only links consecutive elements, so the Gaifman graph is a path and
/// the instance has treewidth 1 regardless of size.
pub fn rst_path_tid(n: usize, probability: f64, seed: u64) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let mut tid = TidInstance::new();
    for i in 0..n {
        let jitter =
            |rng: &mut SplitMix64| (probability + 0.2 * (rng.next_f64() - 0.5)).clamp(0.05, 0.95);
        tid.add_fact_named("R", &[&format!("v{i}")], jitter(&mut rng));
        tid.add_fact_named("T", &[&format!("v{i}")], jitter(&mut rng));
        if i + 1 < n {
            tid.add_fact_named(
                "S",
                &[&format!("v{i}"), &format!("v{}", i + 1)],
                jitter(&mut rng),
            );
        }
    }
    tid
}

/// The same query on a *complete bipartite* instance: `n` left elements, `n`
/// right elements, all `S` pairs present — the Gaifman graph contains
/// `K_{n,n}`, so the treewidth grows with `n` (the `#P`-hard regime).
pub fn rst_bipartite_tid(n: usize, probability: f64, seed: u64) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let mut tid = TidInstance::new();
    let jitter =
        |rng: &mut SplitMix64| (probability + 0.2 * (rng.next_f64() - 0.5)).clamp(0.05, 0.95);
    for i in 0..n {
        tid.add_fact_named("R", &[&format!("l{i}")], jitter(&mut rng));
        tid.add_fact_named("T", &[&format!("r{i}")], jitter(&mut rng));
    }
    for i in 0..n {
        for j in 0..n {
            tid.add_fact_named("S", &[&format!("l{i}"), &format!("r{j}")], jitter(&mut rng));
        }
    }
    tid
}

/// A partial-k-tree-shaped TID of `R`-facts: one binary fact per edge of a
/// random partial `k`-tree, so the instance's treewidth is at most `k`.
pub fn partial_k_tree_tid(n: usize, k: usize, probability: f64, seed: u64) -> TidInstance {
    let graph = stuc_graph::generators::partial_k_tree(n, k, 0.7, seed);
    let mut tid = TidInstance::new();
    for (u, v) in graph.edges() {
        tid.add_fact_named(
            "R",
            &[&format!("c{}", u.0), &format!("c{}", v.0)],
            probability,
        );
    }
    tid
}

/// A "core + tentacles" TID (experiment E7): a dense Erdős–Rényi core of
/// `core_size` constants with `S`-facts on its edges, plus `tentacles` paths
/// of `R`-facts of length `tentacle_length` hanging off core constants.
pub fn core_tentacle_tid(
    core_size: usize,
    core_density: f64,
    tentacles: usize,
    tentacle_length: usize,
    probability: f64,
    seed: u64,
) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let mut tid = TidInstance::new();
    for i in 0..core_size {
        for j in (i + 1)..core_size {
            if rng.next_bool(core_density) {
                tid.add_fact_named(
                    "S",
                    &[&format!("core{i}"), &format!("core{j}")],
                    probability,
                );
            }
        }
    }
    for t in 0..tentacles {
        let attach = rng.next_below(core_size.max(1));
        let mut previous = format!("core{attach}");
        for step in 0..tentacle_length {
            let next = format!("t{t}_{step}");
            tid.add_fact_named("R", &[&previous, &next], probability);
            previous = next;
        }
    }
    tid
}

/// A small random TID instance for property tests: `facts` binary `R`-facts
/// drawn uniformly over a `domain`-constant universe (duplicates collapse,
/// so the result may have fewer facts), each with an independent probability
/// in `[0.05, 0.95]`. Deterministic in `seed`.
pub fn random_sparse_tid(facts: usize, domain: usize, seed: u64) -> TidInstance {
    let mut rng = SplitMix64::new(seed);
    let domain = domain.max(1);
    let mut tid = TidInstance::new();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..facts {
        let a = rng.next_below(domain);
        let b = rng.next_below(domain);
        if !seen.insert((a, b)) {
            continue;
        }
        let p = 0.05 + 0.9 * rng.next_f64();
        tid.add_fact_named("R", &[&format!("c{a}"), &format!("c{b}")], p);
    }
    tid
}

/// A Wikidata-style pcc-instance (Theorem 2 workload): `claims` facts
/// `Claim(entity, value)`, each attributed to one of `contributors`
/// contributors; a fact is present when its contributor is trustworthy AND
/// its own extraction event holds — a correlated annotation shared across
/// the contributor's facts.
pub fn contributor_pcc(
    claims: usize,
    contributors: usize,
    extraction_probability: f64,
    trust_probability: f64,
    seed: u64,
) -> PccInstance {
    let mut rng = SplitMix64::new(seed);
    let mut pcc = PccInstance::new();
    // Events: contributors first, then one extraction event per claim.
    let contributor_vars: Vec<VarId> = (0..contributors.max(1)).map(VarId).collect();
    for &v in &contributor_vars {
        pcc.probabilities_mut().set(v, trust_probability);
    }
    let mut contributor_gates = Vec::new();
    for &v in &contributor_vars {
        let gate = pcc.annotation_circuit_mut().add_input(v);
        contributor_gates.push(gate);
    }
    for i in 0..claims {
        let contributor = rng.next_below(contributor_vars.len());
        let extraction = VarId(contributor_vars.len() + i);
        pcc.probabilities_mut()
            .set(extraction, extraction_probability);
        let extraction_gate = pcc.annotation_circuit_mut().add_input(extraction);
        let gate = pcc
            .annotation_circuit_mut()
            .add_and(vec![contributor_gates[contributor], extraction_gate]);
        pcc.add_fact_with_gate(
            "Claim",
            &[&format!("entity{}", i / 2), &format!("value{i}")],
            gate,
        );
    }
    pcc
}

/// Ground-truth query probability on a pcc-instance by enumerating all event
/// valuations (exponential; only for small instances in tests).
pub fn pcc_query_probability_by_enumeration(pcc: &PccInstance, query: &ConjunctiveQuery) -> f64 {
    let events: Vec<VarId> = pcc.event_variables().into_iter().collect();
    assert!(events.len() <= 24, "too many events for enumeration");
    let mut total = 0.0;
    for bits in 0..(1u64 << events.len()) {
        let mut probability = 1.0;
        let valuation: BTreeMap<VarId, bool> = events
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let value = bits & (1 << i) != 0;
                probability *= pcc
                    .probabilities()
                    .weight(v, value)
                    .expect("all events weighted");
                (v, value)
            })
            .collect();
        if probability == 0.0 {
            continue;
        }
        let present = pcc.world(&valuation);
        // Check whether the query has a match using only present facts.
        let holds = all_matches(pcc.instance(), query)
            .into_iter()
            .any(|m| m.witnesses.iter().all(|w| present.contains(w)));
        if holds {
            total += probability;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};

    #[test]
    fn path_tid_shape_and_determinism() {
        let a = path_tid(10, 0.5, 3);
        let b = path_tid(10, 0.5, 3);
        assert_eq!(a, b);
        assert_eq!(a.fact_count(), 10);
        let td = decompose_with_heuristic(&a.gaifman_graph(), EliminationHeuristic::MinDegree);
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn rst_path_tid_has_width_one() {
        let tid = rst_path_tid(20, 0.5, 1);
        let td = decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinFill);
        assert_eq!(td.width(), 1);
    }

    #[test]
    fn rst_bipartite_tid_width_grows() {
        let small = rst_bipartite_tid(2, 0.5, 1);
        let large = rst_bipartite_tid(5, 0.5, 1);
        let w_small =
            decompose_with_heuristic(&small.gaifman_graph(), EliminationHeuristic::MinFill).width();
        let w_large =
            decompose_with_heuristic(&large.gaifman_graph(), EliminationHeuristic::MinFill).width();
        assert!(w_large > w_small);
    }

    #[test]
    fn partial_k_tree_tid_respects_width_bound() {
        let tid = partial_k_tree_tid(30, 3, 0.5, 9);
        let td = decompose_with_heuristic(&tid.gaifman_graph(), EliminationHeuristic::MinFill);
        assert!(td.width() <= 3);
    }

    #[test]
    fn contributor_pcc_is_consistent() {
        let pcc = contributor_pcc(6, 2, 0.7, 0.9, 4);
        assert_eq!(pcc.fact_count(), 6);
        assert!(pcc.event_variables().len() <= 2 + 6);
        // All events weighted.
        for v in pcc.event_variables() {
            assert!(pcc.probabilities().get(v).is_some());
        }
    }

    #[test]
    fn core_tentacle_tid_shape() {
        let tid = core_tentacle_tid(6, 0.8, 3, 4, 0.5, 7);
        assert!(tid.fact_count() >= 3 * 4);
    }
}
