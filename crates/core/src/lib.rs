//! # stuc-core — the unified engine over structurally tractable uncertain data
//!
//! The paper's headline contribution as a single façade:
//!
//! ```text
//! uncertain representation ──► tree decomposition ──► automaton/lineage ──►
//!   lineage circuit ──► exact probability (back-end auto-selected)
//! ```
//!
//! * [`engine`] — **the** public entry point: [`engine::Engine::evaluate`]
//!   covers TID, c-, pc-, pcc-instances and PrXML documents through the
//!   [`engine::Representation`] trait, dispatching to pluggable
//!   [`engine::Backend`]s (safe plan, treewidth WMC, DPLL, enumeration)
//!   under an automatic selection policy, with a fingerprint-keyed
//!   decomposition cache and a unified [`engine::StucError`].
//! * [`pipeline`] — the pre-engine API, kept as thin deprecated shims over
//!   the engine (see its module docs for the migration table).
//! * [`hybrid`] — the partial-decomposition idea sketched in Section 2.2:
//!   a high-treewidth core handled by sampling, low-treewidth tentacles
//!   handled exactly.
//! * [`workloads`] — deterministic TID / pcc workload generators shared by
//!   the examples, the integration tests and the benchmark harness.

#![warn(missing_docs)]

pub mod engine;
pub mod hybrid;
pub mod pipeline;
pub mod serve;
pub mod workloads;

pub use engine::{
    Backend, BackendKind, BackendPolicy, BatchReport, Engine, EngineBuilder,
    EvaluationReport as EngineReport, ReprKind, Representation, StucError,
};
#[allow(deprecated)]
pub use pipeline::TractablePipeline;
pub use pipeline::{EvaluationReport, PipelineError};
