//! # stuc-core — the structurally tractable query evaluation pipeline
//!
//! The paper's headline contribution as a single façade:
//!
//! ```text
//! uncertain instance ──► tree decomposition ──► automaton run over the
//!   decomposition ──► lineage circuit ──► exact probability
//! ```
//!
//! * [`pipeline`] — [`pipeline::TractablePipeline`]: Theorem 1 (linear-time
//!   exact probability of a query on a bounded-treewidth TID instance) and
//!   Theorem 2 (bounded-treewidth pcc-instances with correlated
//!   annotations), together with possibility/certainty variants and the
//!   intensional/extensional baselines the benchmarks compare against.
//! * [`hybrid`] — the partial-decomposition idea sketched in Section 2.2:
//!   a high-treewidth core handled by sampling, low-treewidth tentacles
//!   handled exactly.
//! * [`workloads`] — deterministic TID / pcc workload generators shared by
//!   the examples, the integration tests and the benchmark harness.

pub mod hybrid;
pub mod pipeline;
pub mod workloads;

pub use pipeline::{EvaluationReport, PipelineError, TractablePipeline};
