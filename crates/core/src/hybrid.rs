//! Hybrid evaluation: exact on the low-treewidth tentacles, sampling on the
//! high-treewidth core.
//!
//! The paper (Section 2.2) proposes to "structure uncertain instances as a
//! high-treewidth core and low-treewidth tentacles, and evaluate queries by
//! combining [the exact method] on the tentacles and sampling-based
//! approximate methods on the core". This module implements that idea for
//! TID instances:
//!
//! 1. core facts are identified (either given explicitly or detected as the
//!    facts all of whose constants survive iterated low-degree peeling of
//!    the Gaifman graph);
//! 2. the presence of the core facts is sampled Monte-Carlo style;
//! 3. conditioned on each sample, the residual uncertainty only involves
//!    tentacle facts, whose lineage is evaluated *exactly*;
//! 4. the average over samples estimates the query probability — with much
//!    lower variance than sampling everything, because the tentacle part is
//!    integrated out exactly (Rao–Blackwellisation).

use crate::pipeline::PipelineError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use stuc_circuit::circuit::{Circuit, GateId};
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::weights::Weights;
use stuc_data::instance::FactId;
use stuc_data::tid::TidInstance;
use stuc_graph::graph::VertexId;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::eval::all_matches;

/// Identifies core facts by iteratively peeling vertices of degree at most
/// `peel_degree` from the Gaifman graph: facts whose constants all survive
/// the peeling belong to the core.
pub fn detect_core_facts(tid: &TidInstance, peel_degree: usize) -> BTreeSet<FactId> {
    let graph = tid.gaifman_graph();
    let n = graph.vertex_count();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(VertexId(v))).collect();
    loop {
        let mut changed = false;
        for v in 0..n {
            if alive[v] && degree[v] <= peel_degree {
                alive[v] = false;
                changed = true;
                for u in graph.neighbors(VertexId(v)) {
                    if alive[u.0] {
                        degree[u.0] = degree[u.0].saturating_sub(1);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    tid.instance()
        .facts()
        .filter(|(_, fact)| !fact.args.is_empty() && fact.args.iter().all(|c| alive[c.0]))
        .map(|(id, _)| id)
        .collect()
}

/// The result of a hybrid evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReport {
    /// The estimated query probability.
    pub probability: f64,
    /// Number of Monte-Carlo samples drawn for the core facts.
    pub samples: usize,
    /// Number of facts treated as core (sampled).
    pub core_fact_count: usize,
    /// Number of facts treated as tentacles (integrated exactly).
    pub tentacle_fact_count: usize,
}

/// Hybrid exact/sampling evaluation of a Boolean CQ on a TID instance.
///
/// `core_facts` are sampled; everything else is handled exactly per sample.
pub fn hybrid_probability(
    tid: &TidInstance,
    query: &ConjunctiveQuery,
    core_facts: &BTreeSet<FactId>,
    samples: usize,
    seed: u64,
) -> Result<HybridReport, PipelineError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let matches = all_matches(tid.instance(), query);
    let mut accumulator = 0.0;
    for _ in 0..samples {
        // Sample the presence of every core fact.
        let mut core_present: BTreeSet<FactId> = BTreeSet::new();
        for &f in core_facts {
            if rng.random::<f64>() < tid.probability(f) {
                core_present.insert(f);
            }
        }
        // Residual lineage over tentacle facts only: a match contributes if
        // all its core witnesses are present; its tentacle witnesses stay
        // symbolic.
        let mut circuit = Circuit::new();
        let mut weights = Weights::new();
        let mut fact_gate: std::collections::BTreeMap<FactId, GateId> = Default::default();
        let mut disjuncts = Vec::new();
        for m in &matches {
            let mut conjuncts = Vec::new();
            let mut dead = false;
            for &witness in &m.witnesses {
                if core_facts.contains(&witness) {
                    if !core_present.contains(&witness) {
                        dead = true;
                        break;
                    }
                } else {
                    let gate = *fact_gate.entry(witness).or_insert_with(|| {
                        weights.set(tid.fact_event(witness), tid.probability(witness));
                        circuit.add_input(tid.fact_event(witness))
                    });
                    conjuncts.push(gate);
                }
            }
            if dead {
                continue;
            }
            conjuncts.sort();
            conjuncts.dedup();
            disjuncts.push(circuit.add_and(conjuncts));
        }
        let output = circuit.add_or(disjuncts);
        circuit.set_output(output);
        // The tentacle lineage is small and tree-like: DPLL handles it
        // exactly (and cheaply); this integrates the tentacles out.
        let residual = DpllCounter::default()
            .probability(&circuit, &weights)
            .map_err(|e| PipelineError::Backend(e.to_string()))?;
        accumulator += residual;
    }
    Ok(HybridReport {
        probability: accumulator / samples.max(1) as f64,
        samples,
        core_fact_count: core_facts.len(),
        tentacle_fact_count: tid.fact_count() - core_facts.len(),
    })
}

/// Pure Monte-Carlo baseline: sample *every* fact and evaluate the query per
/// sampled world. Same sample budget, higher variance — the comparison the
/// benchmark E7 reports.
pub fn naive_sampling_probability(
    tid: &TidInstance,
    query: &ConjunctiveQuery,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let matches = all_matches(tid.instance(), query);
    let mut hits = 0usize;
    for _ in 0..samples {
        let present: BTreeSet<FactId> = tid
            .instance()
            .facts()
            .filter(|(id, _)| rng.random::<f64>() < tid.probability(*id))
            .map(|(id, _)| id)
            .collect();
        if matches
            .iter()
            .any(|m| m.witnesses.iter().all(|w| present.contains(w)))
        {
            hits += 1;
        }
    }
    hits as f64 / samples.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BackendKind, Engine};
    use crate::workloads;

    #[test]
    fn core_detection_finds_dense_part() {
        let tid = workloads::core_tentacle_tid(6, 0.9, 3, 4, 0.5, 3);
        let core = detect_core_facts(&tid, 1);
        assert!(!core.is_empty());
        // Tentacle facts (R relation) must not be in the core.
        let r = tid.instance().find_relation("R").unwrap();
        for f in tid.instance().facts_of(r) {
            assert!(
                !core.contains(&f),
                "tentacle fact {f:?} wrongly classified as core"
            );
        }
    }

    #[test]
    fn hybrid_estimate_matches_exact_on_small_instances() {
        let tid = workloads::core_tentacle_tid(4, 1.0, 2, 3, 0.5, 9);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let core = detect_core_facts(&tid, 1);
        let exact = Engine::builder()
            .backend(BackendKind::Enumeration)
            .build()
            .evaluate(&tid, &query)
            .unwrap()
            .probability;
        let hybrid = hybrid_probability(&tid, &query, &core, 600, 42).unwrap();
        assert!(
            (hybrid.probability - exact).abs() < 0.05,
            "hybrid {} vs exact {exact}",
            hybrid.probability
        );
    }

    #[test]
    fn hybrid_with_empty_core_is_exact() {
        // No core facts: a single sample integrates everything exactly.
        let tid = workloads::path_tid(6, 0.5, 8);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let exact = Engine::new().evaluate(&tid, &query).unwrap().probability;
        let hybrid = hybrid_probability(&tid, &query, &BTreeSet::new(), 1, 0).unwrap();
        assert!((hybrid.probability - exact).abs() < 1e-9);
    }

    #[test]
    fn naive_sampling_converges_roughly() {
        let tid = workloads::path_tid(5, 0.5, 4);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let exact = Engine::new().evaluate(&tid, &query).unwrap().probability;
        let estimate = naive_sampling_probability(&tid, &query, 4000, 7);
        assert!((estimate - exact).abs() < 0.05, "{estimate} vs {exact}");
    }

    #[test]
    fn hybrid_has_lower_error_than_naive_at_equal_budget() {
        // Average absolute error over several seeds; the hybrid estimator
        // integrates the tentacles exactly so it should not be worse.
        let tid = workloads::core_tentacle_tid(5, 1.0, 3, 3, 0.5, 13);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let core = detect_core_facts(&tid, 1);
        let exact = Engine::builder()
            .backend(BackendKind::Enumeration)
            .build()
            .evaluate(&tid, &query)
            .unwrap()
            .probability;
        let budget = 120;
        let mut hybrid_error = 0.0;
        let mut naive_error = 0.0;
        for seed in 0..8 {
            let h = hybrid_probability(&tid, &query, &core, budget, seed).unwrap();
            hybrid_error += (h.probability - exact).abs();
            naive_error += (naive_sampling_probability(&tid, &query, budget, seed) - exact).abs();
        }
        assert!(
            hybrid_error <= naive_error + 0.05,
            "hybrid {hybrid_error} vs naive {naive_error}"
        );
    }
}
