//! The [`Representation`] trait: what the engine needs from an uncertain
//! data representation, and its implementations for every formalism in the
//! workspace (TID, c-/pc-/pcc-instances, probabilistic XML).
//!
//! The paper's central claim is that *one* structural pipeline — instance →
//! decomposition → automaton/lineage → circuit → weighted model counting —
//! uniformly covers all of these. This trait is that claim as an interface:
//! a representation must expose its structure graph (whose treewidth is the
//! tractability parameter), a lineage-circuit constructor for its query
//! language, and the probability weights of its lineage variables.

use super::error::StucError;
use stuc_circuit::circuit::{Circuit, VarId};
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_data::cinstance::{CInstance, PcInstance};
use stuc_data::pcc::PccInstance;
use stuc_data::tid::TidInstance;
use stuc_graph::graph::Graph;
use stuc_graph::TreeDecomposition;
use stuc_prxml::document::PrXmlDocument;
use stuc_prxml::queries::{query_lineage, PrxmlQuery};
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::lineage::{cinstance_lineage, pcc_lineage};

/// Which representation formalism an implementation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReprKind {
    /// Tuple-independent probabilistic instance (Theorem 1).
    Tid,
    /// c-instance: facts annotated with event formulas, no probabilities.
    CInstance,
    /// pc-instance: a c-instance whose events carry probabilities.
    PcInstance,
    /// pcc-instance: facts annotated with gates of a shared circuit
    /// (Theorem 2).
    PccInstance,
    /// Probabilistic XML document (`ind`/`mux`/`cie`).
    PrXml,
}

impl ReprKind {
    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReprKind::Tid => "tid-instance",
            ReprKind::CInstance => "c-instance",
            ReprKind::PcInstance => "pc-instance",
            ReprKind::PccInstance => "pcc-instance",
            ReprKind::PrXml => "prxml-document",
        }
    }
}

impl std::fmt::Display for ReprKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A lineage circuit plus an optional note about how it was built (e.g. a
/// fallback from the decomposition-guided construction).
#[derive(Debug, Clone)]
pub struct LineageOutcome {
    /// Circuit over the representation's event variables, true exactly in
    /// the possible worlds where the query holds.
    pub circuit: Circuit,
    /// Strategy note for the evaluation report, if anything noteworthy
    /// happened during construction.
    pub note: Option<String>,
}

impl LineageOutcome {
    fn plain(circuit: Circuit) -> Self {
        LineageOutcome {
            circuit,
            note: None,
        }
    }
}

/// The input of the extensional (safe-plan) fast path: only representations
/// that are plain TID instances with conjunctive queries offer it.
#[derive(Debug, Clone, Copy)]
pub struct ExtensionalInput<'a> {
    /// The tuple-independent instance to evaluate on.
    pub tid: &'a TidInstance,
    /// The conjunctive query to evaluate.
    pub query: &'a ConjunctiveQuery,
}

/// An uncertain data representation the engine can evaluate queries on.
///
/// Implementations exist for [`TidInstance`], [`CInstance`], [`PcInstance`],
/// [`PccInstance`] and [`PrXmlDocument`]; user-defined representations only
/// need to answer the same four questions (structure, lineage, weights,
/// identity) to plug into [`crate::engine::Engine`] unchanged.
pub trait Representation: std::fmt::Debug {
    /// The query language this representation is evaluated against. The
    /// `Debug` bound gives the engine a deterministic rendering to
    /// fingerprint queries for its compiled-lineage cache; `Clone + Send +
    /// Sync + 'static` lets the cache keep the query itself, so
    /// [`crate::engine::Engine::apply_update`] can re-derive delta lineages
    /// for every cached entry when the instance changes.
    type Query: std::fmt::Debug + Clone + Send + Sync + 'static;

    /// Which formalism this is (used in reports and error messages).
    fn kind(&self) -> ReprKind;

    /// Number of facts (or document nodes) — reported, never interpreted.
    fn fact_count(&self) -> usize;

    /// The graph whose treewidth is the representation's structural
    /// tractability parameter: the Gaifman graph for TID and c-instances,
    /// the joint instance+circuit graph for pcc-instances (Theorem 2), the
    /// presence-circuit graph for PrXML.
    fn structure_graph(&self) -> Graph;

    /// The lineage circuit of `query`: true in exactly the possible worlds
    /// where the query holds. `decomposition` is a tree decomposition of
    /// [`Representation::structure_graph`]; implementations that build the
    /// lineage by a decomposition-guided automaton run consume it, others
    /// ignore it.
    fn lineage(
        &self,
        query: &Self::Query,
        decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError>;

    /// Probabilities of the lineage variables.
    fn weights(&self) -> Result<Weights, StucError>;

    /// A structural fingerprint identifying this instance for the engine's
    /// decomposition cache. Two equal representations must fingerprint
    /// equally within one process; collisions merely cost a wrong-width
    /// cache entry, never a wrong probability, because cached decompositions
    /// are validated against the structure graph before reuse.
    fn fingerprint(&self) -> u64 {
        fingerprint_debug(self)
    }

    /// The extensional fast path, if this representation supports one.
    fn extensional<'a>(&'a self, query: &'a Self::Query) -> Option<ExtensionalInput<'a>> {
        let _ = query;
        None
    }

    /// Per-relation fact counts for the textual front-end's cost model
    /// ([`stuc_lang::cost::CostModel`]). `None` for non-relational
    /// representations, which makes the cost model fall back to zero
    /// fan-ins (and hence to the structurally-determined route).
    fn relation_stats(&self) -> Option<stuc_lang::cost::RelationStats> {
        None
    }
}

/// The standard FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over the `Debug` rendering: a cheap, deterministic-per-process
/// identity good enough for cache keying (see `Representation::fingerprint`).
pub(crate) fn fingerprint_debug<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    fingerprint_debug_with(value, FNV_OFFSET_BASIS)
}

/// The same FNV-1a pass from a caller-chosen offset basis. The engine's
/// lineage cache stores a second, differently-seeded hash of the instance
/// next to the primary fingerprint, so a wrong cache reuse needs two
/// simultaneous 64-bit collisions (plus identical query text) instead of
/// one.
pub(crate) fn fingerprint_debug_with<T: std::fmt::Debug + ?Sized>(value: &T, basis: u64) -> u64 {
    fingerprint_debug_pair_with(value, basis, basis).0
}

/// Two differently-seeded FNV-1a hashes computed in a *single* `Debug`
/// rendering pass — the rendering, not the hashing, is the linear cost, so
/// the lineage cache's primary + check hashes together cost one pass.
pub(crate) fn fingerprint_debug_pair_with<T: std::fmt::Debug + ?Sized>(
    value: &T,
    basis_a: u64,
    basis_b: u64,
) -> (u64, u64) {
    use std::fmt::Write;
    struct Fnv2(u64, u64);
    impl Write for Fnv2 {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
                self.1 = (self.1 ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv2(basis_a, basis_b);
    let _ = write!(h, "{value:?}");
    (h.0, h.1)
}

impl Representation for TidInstance {
    type Query = ConjunctiveQuery;

    fn kind(&self) -> ReprKind {
        ReprKind::Tid
    }

    fn fact_count(&self) -> usize {
        TidInstance::fact_count(self)
    }

    fn structure_graph(&self) -> Graph {
        self.gaifman_graph()
    }

    fn lineage(
        &self,
        query: &ConjunctiveQuery,
        decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError> {
        // Theorem 1 construction: nondeterministic automaton run over the
        // tree decomposition, linear-time at fixed width. Falls back to the
        // match-enumeration lineage when the run refuses the query (too many
        // atoms / anchoring limits) — same circuit semantics, no width bound.
        match stuc_automata::courcelle::cq_lineage_circuit(
            self.instance(),
            decomposition,
            query,
            |f| self.fact_event(f),
        ) {
            Ok(circuit) => Ok(LineageOutcome::plain(circuit)),
            Err(refusal) => Ok(LineageOutcome {
                circuit: stuc_query::lineage::tid_lineage(self, query),
                note: Some(format!(
                    "automaton lineage refused ({refusal}); fell back to match-enumeration lineage"
                )),
            }),
        }
    }

    fn weights(&self) -> Result<Weights, StucError> {
        Ok(self.fact_weights())
    }

    fn extensional<'a>(&'a self, query: &'a ConjunctiveQuery) -> Option<ExtensionalInput<'a>> {
        Some(ExtensionalInput { tid: self, query })
    }

    fn relation_stats(&self) -> Option<stuc_lang::cost::RelationStats> {
        Some(stuc_lang::cost::RelationStats::from_instance(
            self.instance(),
        ))
    }
}

impl Representation for CInstance {
    type Query = ConjunctiveQuery;

    fn kind(&self) -> ReprKind {
        ReprKind::CInstance
    }

    fn fact_count(&self) -> usize {
        self.instance().fact_count()
    }

    fn structure_graph(&self) -> Graph {
        self.instance().gaifman_graph()
    }

    fn lineage(
        &self,
        query: &ConjunctiveQuery,
        _decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError> {
        Ok(LineageOutcome::plain(cinstance_lineage(self, query)))
    }

    /// A plain c-instance carries no probabilities; evaluating one computes
    /// the *fraction of event valuations* satisfying the query (each event
    /// uniform at 1/2), so `probability > 0` is possibility and
    /// `probability = 1` is certainty — the c-instance questions of the
    /// paper's Table 1. Attach real probabilities with
    /// [`CInstance::with_probabilities`] to get a pc-instance instead.
    fn weights(&self) -> Result<Weights, StucError> {
        Ok(Weights::uniform(self.events().variables(), 0.5))
    }

    fn relation_stats(&self) -> Option<stuc_lang::cost::RelationStats> {
        Some(stuc_lang::cost::RelationStats::from_instance(
            self.instance(),
        ))
    }
}

impl Representation for PcInstance {
    type Query = ConjunctiveQuery;

    fn kind(&self) -> ReprKind {
        ReprKind::PcInstance
    }

    fn fact_count(&self) -> usize {
        self.instance().fact_count()
    }

    fn structure_graph(&self) -> Graph {
        self.instance().gaifman_graph()
    }

    fn lineage(
        &self,
        query: &ConjunctiveQuery,
        _decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError> {
        Ok(LineageOutcome::plain(cinstance_lineage(
            self.cinstance(),
            query,
        )))
    }

    fn weights(&self) -> Result<Weights, StucError> {
        if !self.is_fully_weighted() {
            return Err(StucError::MissingProbabilities {
                representation: "pc-instance",
            });
        }
        Ok(self.probabilities().clone())
    }

    fn relation_stats(&self) -> Option<stuc_lang::cost::RelationStats> {
        Some(stuc_lang::cost::RelationStats::from_instance(
            self.instance(),
        ))
    }
}

impl Representation for PccInstance {
    type Query = ConjunctiveQuery;

    fn kind(&self) -> ReprKind {
        ReprKind::PccInstance
    }

    fn fact_count(&self) -> usize {
        PccInstance::fact_count(self)
    }

    /// The joint instance + annotation-circuit graph, whose treewidth is the
    /// Theorem 2 parameter.
    fn structure_graph(&self) -> Graph {
        self.joint_graph()
    }

    fn lineage(
        &self,
        query: &ConjunctiveQuery,
        _decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError> {
        Ok(LineageOutcome::plain(pcc_lineage(self, query)))
    }

    fn weights(&self) -> Result<Weights, StucError> {
        Ok(self.probabilities().clone())
    }

    fn relation_stats(&self) -> Option<stuc_lang::cost::RelationStats> {
        Some(stuc_lang::cost::RelationStats::from_instance(
            self.instance(),
        ))
    }
}

impl Representation for PrXmlDocument {
    type Query = PrxmlQuery;

    fn kind(&self) -> ReprKind {
        ReprKind::PrXml
    }

    fn fact_count(&self) -> usize {
        self.len()
    }

    /// The graph of the document's presence circuit: tree-shaped documents
    /// with local uncertainty stay width-bounded, and long-range `cie`
    /// events widen it exactly as the paper's event scopes predict.
    fn structure_graph(&self) -> Graph {
        let (presence, _) = self.presence_circuit();
        TreewidthWmc::circuit_graph(&presence)
    }

    fn lineage(
        &self,
        query: &PrxmlQuery,
        _decomposition: &TreeDecomposition,
    ) -> Result<LineageOutcome, StucError> {
        Ok(LineageOutcome::plain(query_lineage(self, query)))
    }

    fn weights(&self) -> Result<Weights, StucError> {
        let weights = self.probabilities().clone();
        let covered: Vec<VarId> = self.variables().into_iter().collect();
        if !weights.covers(covered.iter()) {
            return Err(StucError::MissingProbabilities {
                representation: "prxml-document",
            });
        }
        Ok(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_deterministic_and_content_sensitive() {
        let mut a = TidInstance::new();
        a.add_fact_named("R", &["x", "y"], 0.5);
        let mut b = TidInstance::new();
        b.add_fact_named("R", &["x", "y"], 0.5);
        assert_eq!(
            Representation::fingerprint(&a),
            Representation::fingerprint(&b)
        );
        b.add_fact_named("R", &["y", "z"], 0.25);
        assert_ne!(
            Representation::fingerprint(&a),
            Representation::fingerprint(&b)
        );
    }

    #[test]
    fn tid_offers_the_extensional_path_and_cinstance_does_not() {
        let tid = TidInstance::new();
        let q = ConjunctiveQuery::parse("R(x)").unwrap();
        assert!(tid.extensional(&q).is_some());
        let ci = CInstance::new();
        assert!(Representation::extensional(&ci, &q).is_none());
    }

    #[test]
    fn repr_kind_names_are_stable() {
        assert_eq!(ReprKind::Tid.name(), "tid-instance");
        assert_eq!(ReprKind::PccInstance.to_string(), "pcc-instance");
    }
}
