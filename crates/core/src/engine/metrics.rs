//! Pre-resolved metric handles for the engine's hot paths.
//!
//! Registration against the [`stuc_obs`] process-global registry happens
//! once (lazily, on first engine use); afterwards every update is a relaxed
//! atomic operation on a pre-resolved `Arc` handle. Metrics are
//! process-cumulative: several engines in one process share the same
//! counters, as is conventional for Prometheus exposition.

use std::sync::{Arc, OnceLock};
use std::time::Duration;
use stuc_obs::metrics::{registry, Counter, Gauge, Histogram};

/// Calls / errors / latency of one engine entry point.
pub(crate) struct EntryMetrics {
    calls: Arc<Counter>,
    errors: Arc<Counter>,
    seconds: Arc<Histogram>,
}

impl EntryMetrics {
    fn register(entry: &str, what: &str) -> Self {
        let reg = registry();
        EntryMetrics {
            calls: reg.counter(
                &format!("stuc_engine_{entry}_total"),
                &format!("Calls to {what}."),
            ),
            errors: reg.counter(
                &format!("stuc_engine_{entry}_errors_total"),
                &format!("Failed calls to {what}."),
            ),
            seconds: reg.histogram(
                &format!("stuc_engine_{entry}_seconds"),
                &format!("Wall time of {what} calls."),
            ),
        }
    }

    /// One successful call of the given wall time.
    pub(crate) fn observe_ok(&self, wall: Duration) {
        self.calls.inc();
        self.seconds.observe(wall);
    }

    /// One failed call.
    pub(crate) fn observe_err(&self) {
        self.calls.inc();
        self.errors.inc();
    }

    /// Record from a `Result`: successes land in the latency histogram at
    /// `wall`, failures only bump the counters.
    pub(crate) fn observe<T, E>(&self, result: &Result<T, E>, wall: Duration) {
        match result {
            Ok(_) => self.observe_ok(wall),
            Err(_) => self.observe_err(),
        }
    }
}

/// One bundle per public entry point, plus the fault-tolerance families.
pub(crate) struct EngineMetrics {
    pub(crate) evaluate: EntryMetrics,
    pub(crate) evaluate_text: EntryMetrics,
    pub(crate) evaluate_goal: EntryMetrics,
    pub(crate) evaluate_batch: EntryMetrics,
    pub(crate) reevaluate: EntryMetrics,
    pub(crate) apply_update: EntryMetrics,
    pub(crate) marginals: EntryMetrics,
    pub(crate) sample_worlds: EntryMetrics,
    pub(crate) most_probable_world: EntryMetrics,
    /// Evaluations that tripped their deadline (any stage).
    pub(crate) deadline_exceeded: Arc<Counter>,
    /// Evaluations cut short by a raised cancel flag.
    pub(crate) cancelled: Arc<Counter>,
    /// Panics caught and converted to `StucError::Internal`.
    pub(crate) panics_caught: Arc<Counter>,
    /// Total wall time one budgeted evaluation spent inside budget-checkpoint
    /// polls (one observation per budgeted entry-point call).
    pub(crate) budget_check_seconds: Arc<Histogram>,
}

/// The lazily-registered, process-global engine metrics.
pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        evaluate: EntryMetrics::register("evaluate", "Engine::evaluate"),
        evaluate_text: EntryMetrics::register("evaluate_text", "Engine::evaluate_text"),
        evaluate_goal: EntryMetrics::register(
            "evaluate_goal",
            "Engine::evaluate_goal (per textual goal, including via evaluate_text)",
        ),
        evaluate_batch: EntryMetrics::register("evaluate_batch", "Engine::evaluate_batch"),
        reevaluate: EntryMetrics::register(
            "reevaluate",
            "Engine::reevaluate_with_weights (single and many)",
        ),
        apply_update: EntryMetrics::register("apply_update", "Engine::apply_update"),
        marginals: EntryMetrics::register("marginals", "Engine::marginals"),
        sample_worlds: EntryMetrics::register(
            "sample_worlds",
            "Engine::sample_worlds / Engine::world_sampler",
        ),
        most_probable_world: EntryMetrics::register(
            "most_probable_world",
            "Engine::most_probable_world",
        ),
        deadline_exceeded: registry().counter(
            "stuc_engine_deadline_exceeded_total",
            "Evaluations that exceeded their wall-clock deadline.",
        ),
        cancelled: registry().counter(
            "stuc_engine_cancelled_total",
            "Evaluations cancelled via a raised cancel flag.",
        ),
        panics_caught: registry().counter(
            "stuc_engine_panics_caught_total",
            "Panics caught at an isolation boundary and converted to StucError::Internal.",
        ),
        budget_check_seconds: registry().histogram(
            "stuc_engine_budget_check_seconds",
            "Per-call wall time spent inside budget checkpoint polls.",
        ),
    })
}

/// Live counters of one engine cache, mirrored into the global registry
/// alongside the per-engine [`CacheCounters`](super::CacheCounters)
/// snapshots (which tests and `Engine::cache_stats` keep using).
#[derive(Debug, Clone)]
pub(crate) struct CacheMetricHandles {
    pub(crate) hits: Arc<Counter>,
    pub(crate) misses: Arc<Counter>,
    pub(crate) races_lost: Arc<Counter>,
    pub(crate) evictions: Arc<Counter>,
    pub(crate) entries: Arc<Gauge>,
}

fn cache_metrics(cache: &str) -> CacheMetricHandles {
    let reg = registry();
    CacheMetricHandles {
        hits: reg.counter(
            &format!("stuc_cache_{cache}_hits_total"),
            &format!("Validated hits on the {cache} cache (all engines)."),
        ),
        misses: reg.counter(
            &format!("stuc_cache_{cache}_misses_total"),
            &format!("Misses (absent or failed revalidation) on the {cache} cache."),
        ),
        races_lost: reg.counter(
            &format!("stuc_cache_{cache}_races_lost_total"),
            &format!("First-writer-wins publish races lost on the {cache} cache."),
        ),
        evictions: reg.counter(
            &format!("stuc_cache_{cache}_evictions_total"),
            &format!("Capacity (FIFO) evictions from the {cache} cache."),
        ),
        entries: reg.gauge(
            &format!("stuc_cache_{cache}_entries"),
            &format!("Entries resident in the {cache} cache (all engines)."),
        ),
    }
}

/// Global live counters of the structure-decomposition cache.
pub(crate) fn decomposition_cache_metrics() -> CacheMetricHandles {
    static METRICS: OnceLock<CacheMetricHandles> = OnceLock::new();
    METRICS
        .get_or_init(|| cache_metrics("decomposition"))
        .clone()
}

/// Global live counters of the compiled-lineage cache.
pub(crate) fn lineage_cache_metrics() -> CacheMetricHandles {
    static METRICS: OnceLock<CacheMetricHandles> = OnceLock::new();
    METRICS.get_or_init(|| cache_metrics("lineage")).clone()
}
