//! The engine's textual front-end: [`Engine::evaluate_text`].
//!
//! Everything else on [`Engine`] takes programmatically built queries; this
//! module accepts the `stuc-lang` surface syntax instead. A source program
//! is parsed, safety-checked and lowered (rule unfolding, union
//! inclusion–exclusion, ground-negation expansion) into signed sums of
//! [`ConjunctiveQuery`] terms, and a [`CostModel`] routes each goal to the
//! extensional safe plan or to lineage/circuit compilation — the choice the
//! engine's `Auto` policy makes structurally, made here by estimated cost
//! with per-relation fan-in statistics from the instance.
//!
//! ```
//! use stuc_core::engine::Engine;
//! use stuc_data::tid::TidInstance;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a"], 0.4);
//! tid.add_fact_named("S", &["a", "b"], 0.5);
//!
//! let engine = Engine::new();
//! let outcome = engine
//!     .evaluate_text(&tid, "Both(x) :- R(x), S(x, y).  ?- Both(x).")
//!     .unwrap();
//! assert!((outcome.goals[0].probability - 0.2).abs() < 1e-9);
//! println!("{}", outcome.goals[0].report.notes[0]);
//! ```

use super::backend::{Backend, EvaluationTask, SafePlanBackend};
use super::metrics::engine_metrics;
use super::report::{BackendKind, BackendPolicy, EvaluationReport};
use super::representation::Representation;
use super::{Engine, StucError};
use stuc_lang::ast::{RuleAst, UnionAst};
use stuc_lang::cost::{CostModel, Route, RouteDecision};
use stuc_lang::lower::{lower_goal, LoweredGoal};
use stuc_lang::{parse_program, LangError};
use stuc_obs::timer::{StageRecorder, Stopwatch};
use stuc_obs::{slowlog, trace};
use stuc_query::cq::ConjunctiveQuery;

/// The outcome of evaluating one textual goal (`?- …`).
#[derive(Debug, Clone)]
pub struct GoalEvaluation {
    /// Canonical rendering of the goal (as the pretty-printer spells it).
    pub source: String,
    /// The probability of the goal.
    pub probability: f64,
    /// An aggregate report over the goal's inclusion–exclusion terms, with
    /// [`EvaluationReport::route`] set to the cost model's choice.
    pub report: EvaluationReport,
    /// The cost model's routing decision with the evidence behind it.
    pub decision: RouteDecision,
}

/// The outcome of [`Engine::evaluate_text`]: one [`GoalEvaluation`] per
/// `?-` goal of the source program, in order.
#[derive(Debug, Clone, Default)]
pub struct TextEvaluation {
    /// Per-goal outcomes, in source order.
    pub goals: Vec<GoalEvaluation>,
}

impl TextEvaluation {
    /// Number of goals evaluated.
    pub fn len(&self) -> usize {
        self.goals.len()
    }

    /// True when the program declared no goals.
    pub fn is_empty(&self) -> bool {
        self.goals.is_empty()
    }

    /// The probability of each goal, in source order.
    pub fn probabilities(&self) -> Vec<f64> {
        self.goals.iter().map(|g| g.probability).collect()
    }
}

impl Engine {
    /// Parses, safety-checks, lowers and evaluates a `stuc-lang` program
    /// against `representation`, returning one [`GoalEvaluation`] per `?-`
    /// goal. Rules in the program are unfolded into the goals; inline fact
    /// statements are rejected (the instance is the argument — build one
    /// from facts with [`stuc_lang::lower::program_instance`]).
    pub fn evaluate_text<R>(
        &self,
        representation: &R,
        src: &str,
    ) -> Result<TextEvaluation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        let _span = trace::span("evaluate_text");
        let watch = Stopwatch::start();
        let result = self.evaluate_text_inner(representation, src);
        engine_metrics()
            .evaluate_text
            .observe(&result, watch.elapsed());
        match &result {
            Ok(outcome) => {
                for goal in &outcome.goals {
                    slowlog::global().note(
                        "evaluate_text",
                        goal.report.wall_time,
                        goal.report.trace_id,
                        || goal.source.clone(),
                    );
                }
            }
            Err(err) => super::note_eval_failure("evaluate_text", err, watch.elapsed()),
        }
        result
    }

    /// [`Engine::evaluate_text`] under a cooperative
    /// [`EvalBudget`](super::EvalBudget): lowering/unfolding, decomposition,
    /// compilation and every counting sweep poll the budget, so a tripped
    /// deadline or cancellation surfaces as
    /// [`StucError::DeadlineExceeded`] / [`StucError::Cancelled`] naming the
    /// stage.
    pub fn evaluate_text_with_budget<R>(
        &self,
        representation: &R,
        src: &str,
        budget: &super::EvalBudget,
    ) -> Result<TextEvaluation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        self.budgeted(budget, || self.evaluate_text(representation, src))
    }

    /// Parses and lowers `src` without evaluating anything, returning the
    /// cost model's estimate for the *cheaper* route of each goal, summed.
    /// This is the admission-control signal behind the HTTP server's
    /// cost-ceiling load shedding: abstract cost units, comparable across
    /// queries against the same instance, cheap to compute (no
    /// decomposition, no circuits).
    pub fn estimate_text_cost<R>(&self, representation: &R, src: &str) -> Result<f64, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        let program = parse_program(src).map_err(LangError::from)?;
        let fact_count = program.facts().count();
        if fact_count > 0 {
            return Err(StucError::TextFacts { count: fact_count });
        }
        let rules = program.rules();
        let stats = representation.relation_stats().unwrap_or_default();
        let mut total = 0.0f64;
        for query in program.queries() {
            let lowered = lower_goal(&query.goal, &rules).map_err(LangError::from)?;
            let cached = !lowered.terms.is_empty()
                && lowered
                    .terms
                    .iter()
                    .filter_map(|t| t.query.as_ref())
                    .all(|q| self.has_cached_lineage(representation, q));
            let decision = CostModel::default().choose(&lowered, &stats, cached);
            total += decision.safe_cost.min(decision.circuit_cost);
        }
        Ok(total)
    }

    fn evaluate_text_inner<R>(
        &self,
        representation: &R,
        src: &str,
    ) -> Result<TextEvaluation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        // Parse is program-level (one parse serves every goal), so it shows
        // up in the tracer rather than in any single goal's stage breakdown.
        let parse_watch = Stopwatch::start();
        let program = parse_program(src).map_err(LangError::from)?;
        trace::record_complete("parse", parse_watch.started_at(), parse_watch.elapsed());
        let fact_count = program.facts().count();
        if fact_count > 0 {
            return Err(StucError::TextFacts { count: fact_count });
        }
        let rules = program.rules();
        let mut goals = Vec::new();
        for query in program.queries() {
            stuc_fault::budget::check("goal evaluation")?;
            goals.push(self.evaluate_goal(representation, &query.goal, &rules)?);
        }
        Ok(TextEvaluation { goals })
    }

    /// Evaluates one parsed goal with `rules` in scope: lowers it to signed
    /// inclusion–exclusion terms, routes it with the cost model, and runs
    /// every term on the chosen evaluator. This is the per-goal core of
    /// [`Engine::evaluate_text`], exposed for callers (such as the REPL)
    /// that keep a parsed program around.
    pub fn evaluate_goal<R>(
        &self,
        representation: &R,
        goal: &UnionAst,
        rules: &[&RuleAst],
    ) -> Result<GoalEvaluation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        let _span = trace::span("evaluate_goal");
        let watch = Stopwatch::start();
        let result = self.evaluate_goal_inner(representation, goal, rules);
        engine_metrics()
            .evaluate_goal
            .observe(&result, watch.elapsed());
        result
    }

    fn evaluate_goal_inner<R>(
        &self,
        representation: &R,
        goal: &UnionAst,
        rules: &[&RuleAst],
    ) -> Result<GoalEvaluation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        // Safety analysis runs inside lowering, so the "lower" stage covers
        // both; per-term circuit stages are absorbed from the term reports.
        let mut rec = StageRecorder::new();
        let lowered = lower_goal(goal, rules).map_err(LangError::from)?;
        rec.mark("lower");

        // Route with the cost model, then force the route when the engine's
        // policy pins a back-end (mirroring `evaluate`'s fixed-policy
        // semantics: a pinned back-end either runs or errors, it never
        // silently reroutes).
        let stats = representation.relation_stats().unwrap_or_default();
        let cached = !lowered.terms.is_empty()
            && lowered
                .terms
                .iter()
                .filter_map(|t| t.query.as_ref())
                .all(|q| self.has_cached_lineage(representation, q));
        let mut decision = CostModel::default().choose(&lowered, &stats, cached);
        rec.mark("route");
        match self.config.policy {
            BackendPolicy::Fixed(BackendKind::SafePlan) => decision.route = Route::SafePlan,
            BackendPolicy::Fixed(_) => decision.route = Route::Circuit,
            BackendPolicy::Auto => {}
        }

        let mut notes = vec![decision.summary()];
        notes.push(lowering_note(&lowered));

        // The safe-plan route needs the extensional fast path; when the
        // representation offers none, a pinned safe-plan policy errors (as
        // `evaluate` does) and a cost-model choice falls back to circuits.
        if decision.route == Route::SafePlan {
            let missing_extensional = lowered
                .terms
                .iter()
                .filter_map(|t| t.query.as_ref())
                .any(|q| representation.extensional(q).is_none());
            if missing_extensional {
                if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
                    return Err(StucError::BackendUnsupported {
                        backend: BackendKind::SafePlan.name(),
                        reason: format!(
                            "{} offers no extensional evaluation; only TID instances do",
                            representation.kind()
                        ),
                    });
                }
                decision.route = Route::Circuit;
                notes.push(
                    "representation offers no extensional evaluation; circuit route used"
                        .to_string(),
                );
            }
        }

        // Evaluate every term on the chosen route. `combine` applies the
        // inclusion–exclusion signs, scores the tautology term as 1, and
        // clamps the signed sum into [0, 1].
        let mut term_reports: Vec<EvaluationReport> = Vec::new();
        let probability = match decision.route {
            Route::SafePlan => {
                let p = lowered.combine(|query| {
                    let extensional = representation
                        .extensional(query)
                        .expect("checked above: every term offers the extensional path");
                    SafePlanBackend.solve(&EvaluationTask::Extensional {
                        tid: extensional.tid,
                        query: extensional.query,
                    })
                })?;
                rec.mark("safe-plan");
                p
            }
            Route::Circuit => lowered.combine(|query| {
                stuc_fault::budget::check("inclusion-exclusion term")?;
                let report = self.evaluate_on_circuit(
                    representation,
                    query,
                    None,
                    StageRecorder::new(),
                    Vec::new(),
                )?;
                let p = report.probability;
                rec.absorb(&report.stage_timings);
                term_reports.push(report);
                Ok::<f64, StucError>(p)
            })?,
        };

        // Fold the per-term reports into one goal-level report.
        let backend = match decision.route {
            Route::SafePlan => BackendKind::SafePlan,
            Route::Circuit => term_reports
                .first()
                .map(|r| r.backend)
                .unwrap_or(BackendKind::TreewidthWmc),
        };
        if decision.route == Route::Circuit && term_reports.is_empty() {
            notes.push("no satisfiable terms remained after lowering".to_string());
        }
        for report in &term_reports {
            for note in &report.notes {
                if !notes.iter().any(|n| n == note) {
                    notes.push(note.clone());
                }
            }
        }
        let report = EvaluationReport {
            probability,
            backend,
            decomposition_width: term_reports
                .iter()
                .filter_map(|r| r.decomposition_width)
                .max(),
            circuit_gates: term_reports.iter().map(|r| r.circuit_gates).sum(),
            fact_count: representation.fact_count(),
            wall_time: rec.elapsed(),
            decomposition_cached: !term_reports.is_empty()
                && term_reports.iter().all(|r| r.decomposition_cached),
            lineage_cached: !term_reports.is_empty()
                && term_reports.iter().all(|r| r.lineage_cached),
            notes,
            route: Some(decision.route),
            trace_id: stuc_obs::next_trace_id(),
            stage_timings: rec.finish(),
        };
        Ok(GoalEvaluation {
            source: goal.to_string(),
            probability,
            report,
            decision,
        })
    }
}

/// A deterministic, float-free one-liner describing what lowering did —
/// golden-output friendly for the REPL.
pub(crate) fn lowering_note(lowered: &LoweredGoal) -> String {
    let mut parts = vec![format!(
        "lowered to {} inclusion-exclusion term(s) over {} conjunct(s)",
        lowered.terms.len(),
        lowered.disjunct_count
    )];
    if lowered.used_rules {
        parts.push("rules unfolded".to_string());
    }
    if lowered.has_negation {
        parts.push("ground negation expanded".to_string());
    }
    parts.join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use stuc_circuit::weights::Weights;
    use stuc_data::cinstance::{CInstance, PcInstance};
    use stuc_data::tid::TidInstance;

    fn one_fact_pc() -> PcInstance {
        let mut ci = CInstance::new();
        ci.add_fact_with_condition("R", &["a"], "e1").unwrap();
        let e1 = ci.events().find("e1").unwrap();
        let mut weights = Weights::new();
        weights.set(e1, 0.5);
        ci.with_probabilities(weights)
    }

    fn two_fact_tid() -> TidInstance {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.4);
        tid.add_fact_named("S", &["a", "b"], 0.5);
        tid
    }

    #[test]
    fn a_hierarchical_goal_takes_the_safe_plan_route() {
        let tid = two_fact_tid();
        let outcome = Engine::new()
            .evaluate_text(&tid, "?- R(x), S(x, y).")
            .unwrap();
        let goal = &outcome.goals[0];
        assert!((goal.probability - 0.2).abs() < 1e-9);
        assert_eq!(goal.report.route, Some(Route::SafePlan));
        assert_eq!(goal.report.backend, BackendKind::SafePlan);
        assert_eq!(goal.report.circuit_gates, 0);
    }

    #[test]
    fn a_self_join_takes_the_circuit_route() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "b"], 0.5);
        tid.add_fact_named("R", &["b", "c"], 0.5);
        let outcome = Engine::new()
            .evaluate_text(&tid, "?- R(x, y), R(y, z).")
            .unwrap();
        let goal = &outcome.goals[0];
        assert!((goal.probability - 0.25).abs() < 1e-9);
        assert_eq!(goal.report.route, Some(Route::Circuit));
        assert!(!goal.decision.safe_eligible);
    }

    #[test]
    fn rules_unfold_into_the_goal() {
        let tid = two_fact_tid();
        let outcome = Engine::new()
            .evaluate_text(&tid, "Both(x) :- R(x), S(x, y). ?- Both(x).")
            .unwrap();
        assert!((outcome.goals[0].probability - 0.2).abs() < 1e-9);
        assert!(outcome.goals[0]
            .report
            .notes
            .iter()
            .any(|n| n.contains("rules unfolded")));
    }

    #[test]
    fn text_evaluation_matches_the_programmatic_engine() {
        let tid = two_fact_tid();
        let engine = Engine::new();
        let text = engine.evaluate_text(&tid, "?- R(x); S(x, y).").unwrap();
        // P(R ∨ S) = 0.4 + 0.5 − 0.2 under independence.
        assert!((text.goals[0].probability - 0.7).abs() < 1e-9);
    }

    #[test]
    fn inline_facts_are_rejected() {
        let tid = two_fact_tid();
        let err = Engine::new()
            .evaluate_text(&tid, "0.5 :: R(\"a\"). ?- R(x).")
            .unwrap_err();
        assert!(matches!(err, StucError::TextFacts { count: 1 }));
        assert!(err.to_string().contains("program_instance"));
    }

    #[test]
    fn syntax_and_safety_errors_surface_as_lang_errors() {
        let tid = two_fact_tid();
        let engine = Engine::new();
        assert!(matches!(
            engine.evaluate_text(&tid, "?- R(x"),
            Err(StucError::Lang(LangError::Parse(_)))
        ));
        assert!(matches!(
            engine.evaluate_text(&tid, "?- R(x), !S(y, z)."),
            Err(StucError::Lang(LangError::Safety(_)))
        ));
    }

    #[test]
    fn a_pinned_safe_plan_policy_errors_on_non_extensional_representations() {
        let pc = one_fact_pc();
        let engine = EngineBuilder::default()
            .policy(BackendPolicy::Fixed(BackendKind::SafePlan))
            .build();
        let err = engine.evaluate_text(&pc, "?- R(x).").unwrap_err();
        assert!(matches!(err, StucError::BackendUnsupported { .. }));
    }

    #[test]
    fn non_extensional_representations_fall_back_to_circuits_under_auto() {
        let pc = one_fact_pc();
        let outcome = Engine::new().evaluate_text(&pc, "?- R(x).").unwrap();
        let goal = &outcome.goals[0];
        assert!((goal.probability - 0.5).abs() < 1e-9);
        assert_eq!(goal.report.route, Some(Route::Circuit));
    }

    #[test]
    fn multiple_goals_come_back_in_order() {
        let tid = two_fact_tid();
        let outcome = Engine::new()
            .evaluate_text(&tid, "?- R(x). ?- S(x, y). ?- Missing(x).")
            .unwrap();
        let probabilities = outcome.probabilities();
        assert!((probabilities[0] - 0.4).abs() < 1e-9);
        assert!((probabilities[1] - 0.5).abs() < 1e-9);
        assert!(probabilities[2].abs() < 1e-9);
        assert_eq!(outcome.len(), 3);
        assert!(!outcome.is_empty());
    }

    #[test]
    fn ground_negation_evaluates_by_inclusion_exclusion() {
        let tid = two_fact_tid();
        let outcome = Engine::new()
            .evaluate_text(&tid, "?- R(x), !S(\"a\", \"b\").")
            .unwrap();
        // P(R ∧ ¬S) = 0.4 · (1 − 0.5).
        assert!((outcome.goals[0].probability - 0.2).abs() < 1e-9);
        assert!(outcome.goals[0]
            .report
            .notes
            .iter()
            .any(|n| n.contains("ground negation expanded")));
    }

    #[test]
    fn a_cached_goal_reports_its_lineage_as_cached() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "b"], 0.5);
        tid.add_fact_named("R", &["b", "c"], 0.5);
        let engine = Engine::new();
        let cold = engine.evaluate_text(&tid, "?- R(x, y), R(y, z).").unwrap();
        assert!(!cold.goals[0].report.lineage_cached);
        let warm = engine.evaluate_text(&tid, "?- R(x, y), R(y, z).").unwrap();
        assert!(warm.goals[0].report.lineage_cached);
        assert!(warm.goals[0].decision.cached_lineage);
        assert!((cold.goals[0].probability - warm.goals[0].probability).abs() < 1e-12);
    }
}
