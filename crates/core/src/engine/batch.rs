//! Batched parallel evaluation: many queries, one instance, one engine.
//!
//! The paper's pipeline amortizes beautifully across queries on the same
//! instance: the structure decomposition is shared by every query, and each
//! compiled lineage is shared by every later re-evaluation. U-relations
//! (Antova et al., "Fast and Simple Relational Processing of Uncertain
//! Data") and the challenges survey (Amarilli, Maniu & Monet) both point at
//! batch/shared evaluation as the practical route to throughput on
//! structured probabilistic data — this module is that route:
//! [`Engine::evaluate_batch`] partitions a query batch across scoped worker
//! threads (std only, no extra dependencies) that all hammer the shared
//! engine directly; the engine's [sharded, clone-on-read
//! caches](super::cache) make that contention-free (hits take one shard
//! read lock, misses compile without holding any lock and publish
//! first-writer-wins).
//!
//! Work is distributed by an atomic cursor, so long-running queries do not
//! stall the rest of the batch behind a static partition. Per-query errors
//! stay per-query: one unsupported query does not poison the batch.

use super::metrics::engine_metrics;
use super::report::BatchReport;
use super::{Engine, EvaluationReport, Representation, StucError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use stuc_obs::timer::Stopwatch;
use stuc_obs::trace;

impl Engine {
    /// Evaluates a batch of Boolean queries on one instance, in parallel.
    ///
    /// The batch is spread over a scoped-thread worker pool (size: the
    /// builder's [`batch_threads`](super::EngineBuilder::batch_threads)
    /// setting, defaulting to [`std::thread::available_parallelism`], always
    /// capped by the batch size). All workers share `self`'s caches, so the
    /// instance is decomposed at most once for the whole batch and repeated
    /// queries are answered from the compiled-lineage cache.
    ///
    /// Results come back in input order, one per query; a query that fails
    /// carries its error in its slot while the rest of the batch completes.
    /// Identical queries are evaluated once — duplicate slots receive a
    /// copy of the result, flagged as lineage-cache hits. The
    /// [`BatchReport`] also records the worker count and aggregate
    /// cache-hit statistics.
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let tid = workloads::path_tid(8, 0.5, 13);
    /// let queries: Vec<ConjunctiveQuery> = [
    ///     "R(x, y)",
    ///     "R(x, y), R(y, z)",
    ///     "R(x, y), R(y, z), R(z, w)",
    /// ]
    /// .iter()
    /// .map(|q| ConjunctiveQuery::parse(q).unwrap())
    /// .collect();
    ///
    /// let engine = Engine::new();
    /// let batch = engine.evaluate_batch(&tid, &queries);
    /// assert_eq!(batch.len(), 3);
    /// assert_eq!(batch.succeeded(), 3);
    /// for report in batch.successes() {
    ///     assert!(report.probability > 0.0);
    /// }
    /// ```
    ///
    /// A panic inside one evaluation is caught at the per-query boundary
    /// and surfaces as [`StucError::Internal`] in that query's slot — the
    /// worker, the rest of the batch, and the engine's caches all survive.
    pub fn evaluate_batch<R>(&self, representation: &R, queries: &[R::Query]) -> BatchReport
    where
        R: Representation + Sync + ?Sized,
        R::Query: Sync,
    {
        let _span = trace::span("evaluate_batch");
        let started = Stopwatch::start();

        // Deduplicate identical queries up front (by their `Debug`
        // rendering, the same identity the lineage cache uses): each
        // distinct query is evaluated exactly once, and duplicate slots
        // receive a copy of its report — without this, duplicates racing on
        // different workers would all miss the lineage cache at the same
        // moment and compile the same lineage once per worker.
        let mut unique_of: HashMap<String, usize> = HashMap::new();
        let mut unique: Vec<&R::Query> = Vec::new();
        let slot_to_unique: Vec<usize> = queries
            .iter()
            .map(|query| {
                *unique_of.entry(format!("{query:?}")).or_insert_with(|| {
                    unique.push(query);
                    unique.len() - 1
                })
            })
            .collect();

        let threads = self.batch_worker_count(unique.len());
        // The ambient budget (if any) is captured here and re-installed in
        // every worker, so a deadline on the batch bounds all of its lanes.
        let ambient = stuc_fault::budget::current();
        let unique_reports: Vec<Result<EvaluationReport, StucError>> = if threads <= 1 {
            unique
                .iter()
                .map(|query| super::catch_panic(|| self.evaluate(representation, query)))
                .collect()
        } else {
            // No pre-warm: workers that race on the same fingerprint publish
            // their decompositions first-writer-wins and converge on one
            // shared Arc, so the worst case is a bounded handful of
            // duplicate decompositions instead of a serial warm-up pass
            // blocking the whole pool.
            let cursor = AtomicUsize::new(0);
            let mut indexed = Vec::with_capacity(unique.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let work = || {
                                let mut local = Vec::new();
                                loop {
                                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                                    if index >= unique.len() {
                                        break;
                                    }
                                    // Panic isolation per query: a panicking
                                    // evaluation fills its own slot with
                                    // `StucError::Internal` and the worker
                                    // moves on to the next query.
                                    local.push((
                                        index,
                                        super::catch_panic(|| {
                                            self.evaluate(representation, unique[index])
                                        }),
                                    ));
                                }
                                local
                            };
                            match ambient.clone() {
                                Some(budget) => stuc_fault::budget::scope(budget, work),
                                None => work(),
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    // Workers cannot panic on the evaluation path (caught
                    // above); this only guards allocation failure.
                    indexed.extend(handle.join().expect("batch worker panicked"));
                }
            });
            indexed.sort_by_key(|(index, _)| *index);
            indexed.into_iter().map(|(_, report)| report).collect()
        };

        // Fan the unique results back out to the input slots. A duplicate
        // slot reused the representative's compiled lineage, and its report
        // says so.
        let mut first_use = vec![true; unique.len()];
        let reports = slot_to_unique
            .into_iter()
            .map(|u| {
                let mut report = unique_reports[u].clone();
                if std::mem::replace(&mut first_use[u], false) {
                    return report;
                }
                if let Ok(r) = report.as_mut() {
                    r.lineage_cached = true;
                    r.decomposition_cached = true;
                }
                report
            })
            .collect();
        let batch = BatchReport::assemble(reports, threads, started.elapsed());
        // A batch never fails as a whole; count one call, and time it,
        // regardless of per-query errors (which evaluate() already counted).
        engine_metrics()
            .evaluate_batch
            .observe_ok(started.elapsed());
        batch
    }

    /// [`Engine::evaluate_batch`] under a cooperative
    /// [`EvalBudget`](super::EvalBudget): the budget is re-installed in
    /// every worker thread, so one deadline bounds the whole batch. Queries
    /// that trip it carry [`StucError::DeadlineExceeded`] /
    /// [`StucError::Cancelled`] in their slots; queries that finished before
    /// the trip keep their answers.
    pub fn evaluate_batch_with_budget<R>(
        &self,
        representation: &R,
        queries: &[R::Query],
        budget: &super::EvalBudget,
    ) -> BatchReport
    where
        R: Representation + Sync + ?Sized,
        R::Query: Sync,
    {
        let (batch, stats) = stuc_fault::budget::scope_with_stats(budget.clone(), || {
            self.evaluate_batch(representation, queries)
        });
        let metrics = engine_metrics();
        metrics.budget_check_seconds.observe(stats.spent);
        for report in &batch.reports {
            match report {
                Err(StucError::DeadlineExceeded { .. }) => metrics.deadline_exceeded.inc(),
                Err(StucError::Cancelled { .. }) => metrics.cancelled.inc(),
                _ => {}
            }
        }
        batch
    }

    /// How many workers a batch of `batch_size` queries runs on.
    fn batch_worker_count(&self, batch_size: usize) -> usize {
        let configured = match self.config.batch_threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        configured.clamp(1, batch_size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BackendKind, Engine};
    use crate::workloads;
    use stuc_query::cq::ConjunctiveQuery;

    fn queries(texts: &[&str]) -> Vec<ConjunctiveQuery> {
        texts
            .iter()
            .map(|t| ConjunctiveQuery::parse(t).unwrap())
            .collect()
    }

    #[test]
    fn batch_matches_sequential_evaluation() {
        let tid = workloads::path_tid(10, 0.5, 3);
        let qs = queries(&[
            "R(x, y)",
            "R(x, y), R(y, z)",
            "R(x, y), R(y, z), R(z, w)",
            "R(x, y), R(y, z)", // duplicate: exercises the lineage cache
        ]);
        let engine = Engine::builder().batch_threads(3).build();
        let batch = engine.evaluate_batch(&tid, &qs);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.succeeded(), 4);
        assert_eq!(batch.failed(), 0);

        let sequential = Engine::new();
        for (query, result) in qs.iter().zip(&batch.reports) {
            let expected = sequential.evaluate(&tid, query).unwrap();
            let got = result.as_ref().unwrap();
            assert!(
                (expected.probability - got.probability).abs() < 1e-9,
                "{query:?}: {} vs {}",
                expected.probability,
                got.probability
            );
            assert_eq!(expected.backend, got.backend);
        }
    }

    #[test]
    fn batch_reports_lineage_cache_hits_for_repeated_queries() {
        let tid = workloads::path_tid(8, 0.5, 5);
        let q = "R(x, y), R(y, z)";
        let qs = queries(&[q, q, q, q]);
        // Duplicates are deduplicated up front, so the hit count is
        // deterministic at any worker count: one compile, three reuses.
        for threads in [1, 4] {
            let engine = Engine::builder().batch_threads(threads).build();
            let batch = engine.evaluate_batch(&tid, &qs);
            assert_eq!(batch.succeeded(), 4);
            assert_eq!(batch.lineage_cache_hits, 3);
            assert_eq!(engine.cached_lineages(), 1);
            let probabilities = batch.probabilities();
            for p in &probabilities {
                assert_eq!(*p, probabilities[0]);
            }
        }
    }

    #[test]
    fn engine_caches_stay_within_capacity() {
        let engine = Engine::builder().cache_capacity(3).build();
        for seed in 0..10 {
            let tid = workloads::path_tid(5, 0.5, seed);
            let q = queries(&["R(x, y), R(y, z)"]);
            let batch = engine.evaluate_batch(&tid, &q);
            assert_eq!(batch.succeeded(), 1);
            assert!(engine.cached_lineages() <= 3);
            assert!(engine.cached_decompositions() <= 3);
        }
        // Capacity 0 disables caching entirely.
        let uncached = Engine::builder().cache_capacity(0).build();
        let tid = workloads::path_tid(5, 0.5, 1);
        let q = queries(&["R(x, y), R(y, z)"]);
        uncached.evaluate(&tid, &q[0]).unwrap();
        assert_eq!(uncached.cached_lineages(), 0);
        assert_eq!(uncached.cached_decompositions(), 0);
    }

    #[test]
    fn batch_keeps_per_query_errors_isolated() {
        let tid = workloads::rst_path_tid(4, 0.5, 5);
        let qs = queries(&["R(x)", "R(x), S(x, y), T(y)", "R(x), S(x, y)"]);
        // Pinned safe plan: the middle query is not hierarchical and fails,
        // the others succeed.
        let engine = Engine::builder()
            .backend(BackendKind::SafePlan)
            .batch_threads(2)
            .build();
        let batch = engine.evaluate_batch(&tid, &qs);
        assert_eq!(batch.succeeded(), 2);
        assert_eq!(batch.failed(), 1);
        assert!(batch.reports[0].is_ok());
        assert!(batch.reports[1].is_err());
        assert!(batch.reports[2].is_ok());
        let probabilities = batch.probabilities();
        assert!(probabilities[0].is_some());
        assert!(probabilities[1].is_none());
    }

    #[test]
    fn empty_batch_is_fine() {
        let tid = workloads::path_tid(4, 0.5, 5);
        let engine = Engine::new();
        let batch = engine.evaluate_batch(&tid, &[]);
        assert!(batch.is_empty());
        assert_eq!(batch.succeeded(), 0);
    }

    #[test]
    fn worker_count_respects_configuration_and_batch_size() {
        let engine = Engine::builder().batch_threads(8).build();
        assert_eq!(engine.batch_worker_count(3), 3);
        assert_eq!(engine.batch_worker_count(100), 8);
        assert_eq!(engine.batch_worker_count(0), 1);
        let auto = Engine::new();
        assert!(auto.batch_worker_count(64) >= 1);
    }

    #[test]
    fn batch_works_on_non_relational_representations() {
        use stuc_prxml::document::PrXmlDocument;
        use stuc_prxml::queries::PrxmlQuery;
        let doc = PrXmlDocument::figure1_example();
        let qs = vec![
            PrxmlQuery::LabelExists("musician".into()),
            PrxmlQuery::LabelExists("painter".into()),
            PrxmlQuery::LabelExists("no-such-label".into()),
        ];
        let engine = Engine::builder().batch_threads(2).build();
        let batch = engine.evaluate_batch(&doc, &qs);
        assert_eq!(batch.succeeded(), 3);
        let sequential = Engine::new();
        for (query, result) in qs.iter().zip(&batch.reports) {
            let expected = sequential.evaluate(&doc, query).unwrap().probability;
            assert!((expected - result.as_ref().unwrap().probability).abs() < 1e-9);
        }
    }
}
