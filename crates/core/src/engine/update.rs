//! Incremental updates: patch the caches, don't rebuild the world.
//!
//! [`Engine::apply_update`] is the write path of the engine. It applies a
//! typed [`Delta`] to the instance and then *maintains* both engine caches
//! across the mutation instead of evicting them:
//!
//! * the **decomposition cache** entry is rekeyed verbatim when the
//!   structure graph did not grow (weight changes, deletions), repaired
//!   locally through [`stuc_graph::repair`] when it grew by fact cliques,
//!   and rebuilt from scratch only when the repair would exceed the
//!   engine's width budget or the representation reports an opaque change;
//! * every **compiled-lineage cache** entry for the instance is patched
//!   according to the representation's [`LineagePatch`]: reused verbatim
//!   for weight-only deltas, input-rewired for deletions (pin + renumber,
//!   no recompilation), extended with the delta lineage of the new matches
//!   for insertions — and dropped for rebuilds the patch model does not
//!   cover.
//!
//! The returned [`UpdateReport`] says exactly what was reused vs rebuilt,
//! so operational dashboards (and the `a5_incremental_updates` bench) can
//! watch the patch rate and the width drift.

use super::metrics::engine_metrics;
use super::{lineage_fingerprint_pair, Engine, Representation, StucError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;
use stuc_circuit::circuit::Gate;
use stuc_graph::elimination::decompose_with_heuristic;
use stuc_graph::repair::repair_decomposition;
use stuc_graph::TreeDecomposition;
use stuc_incr::{Delta, LineagePatch, LineagePatchStep, StructureImpact, Updatable};
use stuc_obs::timer::Stopwatch;
use stuc_obs::{slowlog, trace};

/// What one [`Engine::apply_update`] call reused, patched and rebuilt.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateReport {
    /// Facts inserted by the delta.
    pub inserted: usize,
    /// Facts deleted by the delta.
    pub deleted: usize,
    /// Probabilities overwritten by the delta.
    pub reweighted: usize,
    /// Decomposition bags grown or added across all repairs (structure
    /// graph and circuit graphs).
    pub bags_touched: usize,
    /// Lineage gates rewired or appended across all patched circuits; 0 for
    /// a weights-only update.
    pub gates_rebuilt: usize,
    /// Width of the cached structure decomposition before the update (when
    /// one was cached).
    pub width_before: Option<usize>,
    /// Width after patching / rebuilding (when a decomposition is cached
    /// again). The difference is the update's width drift.
    pub width_after: Option<usize>,
    /// True when any patch was abandoned for a full rebuild (repair over
    /// the width budget, opaque structural change, unpatchable lineage).
    pub fell_back: bool,
    /// Compiled lineages patched (or rekeyed) and kept warm.
    pub lineages_patched: usize,
    /// Compiled lineages dropped; they rebuild lazily on the next query.
    pub lineages_dropped: usize,
    /// Wall-clock time of the whole update, mutation included.
    pub wall_time: Duration,
    /// Human-readable trace of the patch decisions.
    pub notes: Vec<String>,
}

impl UpdateReport {
    /// Width drift of this update: `width_after - width_before`, when both
    /// are known. Positive drift accumulating across updates is the signal
    /// to schedule a full re-decomposition.
    pub fn width_drift(&self) -> Option<isize> {
        match (self.width_before, self.width_after) {
            (Some(before), Some(after)) => Some(after as isize - before as isize),
            _ => None,
        }
    }
}

impl Engine {
    /// Applies a [`Delta`] to the instance **and** incrementally maintains
    /// the engine's caches across the mutation: the decomposition and every
    /// compiled lineage of the instance are patched and rekeyed from the
    /// old fingerprint to the new one, falling back to targeted eviction
    /// (see [`Engine::evict_instance`]) plus lazy rebuild only where a
    /// patch is impossible or would exceed the width budget.
    ///
    /// Fact identifiers in the delta refer to the pre-update instance; see
    /// [`Delta`] for the in-transaction application order. A rejected delta
    /// (unknown fact, NaN probability, unsupported op) leaves the instance
    /// and the caches untouched.
    ///
    /// ```
    /// use stuc_core::engine::Engine;
    /// use stuc_core::workloads;
    /// use stuc_incr::Delta;
    /// use stuc_data::instance::FactId;
    /// use stuc_query::cq::ConjunctiveQuery;
    ///
    /// let mut tid = workloads::path_tid(8, 0.5, 7);
    /// let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
    /// let engine = Engine::new();
    /// engine.evaluate(&tid, &query).unwrap(); // caches decomposition + lineage
    ///
    /// let delta = Delta::new().set_probability(FactId(0), 0.95);
    /// let report = engine.apply_update(&mut tid, &delta).unwrap();
    /// assert_eq!(report.gates_rebuilt, 0); // weights-only: everything reused
    /// assert!(!report.fell_back);
    ///
    /// // The very next evaluation is served from the patched caches.
    /// let after = engine.evaluate(&tid, &query).unwrap();
    /// assert!(after.lineage_cached);
    /// ```
    pub fn apply_update<R>(
        &self,
        representation: &mut R,
        delta: &Delta,
    ) -> Result<UpdateReport, StucError>
    where
        R: Representation + Updatable<Query = <R as Representation>::Query> + ?Sized,
    {
        let _span = trace::span("apply_update");
        let watch = Stopwatch::start();
        let result = self.apply_update_inner(representation, delta, watch);
        engine_metrics()
            .apply_update
            .observe(&result, watch.elapsed());
        if let Ok(report) = &result {
            slowlog::global().note("apply_update", report.wall_time, 0, || {
                format!(
                    "+{} -{} ~{} patched={} dropped={}",
                    report.inserted,
                    report.deleted,
                    report.reweighted,
                    report.lineages_patched,
                    report.lineages_dropped
                )
            });
        }
        result
    }

    /// [`Engine::apply_update`] under a cooperative
    /// [`EvalBudget`](super::EvalBudget). Budget checkpoints sit between the
    /// maintenance phases (and inside the repair/patch loops they call), so
    /// a tripped deadline surfaces as
    /// [`StucError::DeadlineExceeded`](super::StucError) after the current
    /// phase completes — the instance mutation itself is never torn.
    pub fn apply_update_with_budget<R>(
        &self,
        representation: &mut R,
        delta: &Delta,
        budget: &super::EvalBudget,
    ) -> Result<UpdateReport, StucError>
    where
        R: Representation + Updatable<Query = <R as Representation>::Query> + ?Sized,
    {
        self.budgeted(budget, || self.apply_update(representation, delta))
    }

    fn apply_update_inner<R>(
        &self,
        representation: &mut R,
        delta: &Delta,
        watch: Stopwatch,
    ) -> Result<UpdateReport, StucError>
    where
        R: Representation + Updatable<Query = <R as Representation>::Query> + ?Sized,
    {
        let mut report = UpdateReport::default();

        let old_fingerprint = representation.fingerprint();
        let (old_lineage_fp, old_check) = lineage_fingerprint_pair(representation);
        let application = representation.apply_delta(delta)?;
        let new_fingerprint = representation.fingerprint();
        let (new_lineage_fp, new_check) = lineage_fingerprint_pair(representation);
        report.inserted = application.inserted.len();
        report.deleted = application.deleted;
        report.reweighted = application.reweighted;

        // Pull the instance's stale lineage entries out first — targeted
        // eviction below must not throw them away before they are patched.
        // The drain matches on the primary hash only, so entries that merely
        // *collide* with this instance (different secondary check hash) are
        // put back untouched: rekeying validates against the same dual-hash
        // discipline as a cold lookup.
        let mut stale_lineages = self
            .lineage_cache
            .drain_matching(|key| key.0 == old_lineage_fp);
        let colliding: Vec<_> = {
            let (ours, theirs) = stale_lineages
                .into_iter()
                .partition(|(_, entry)| entry.instance_check == old_check);
            stale_lineages = ours;
            theirs
        };
        let old_decomposition = self.cache.get(&(old_fingerprint, self.config.heuristic));
        // Everything still keyed by the old fingerprint is now stale (other
        // heuristics, collision leftovers): evict it in one targeted sweep —
        // and only then restore the colliding strangers it must not touch.
        self.evict_instance(old_fingerprint);
        for (key, entry) in colliding {
            self.lineage_cache.insert_replacing(key, entry);
        }

        // --- decomposition maintenance -------------------------------------
        // The mutation is committed and the stale entries are already pulled
        // out: from here on a budget trip only costs cache warmth (dropped
        // entries rebuild lazily), never consistency.
        stuc_fault::budget::check("update: decomposition maintenance")?;
        if let Some(old) = old_decomposition {
            report.width_before = Some(old.width());
            let patched: Option<TreeDecomposition> = match &application.structure {
                StructureImpact::Unchanged | StructureImpact::Shrunk => {
                    report
                        .notes
                        .push("structure decomposition rekeyed unchanged".into());
                    Some((*old).clone())
                }
                StructureImpact::Grown {
                    vertex_remap,
                    new_cliques,
                } => {
                    let graph = representation.structure_graph();
                    let base = match vertex_remap {
                        Some(map) => old.remap_vertices(map),
                        None => (*old).clone(),
                    };
                    match repair_decomposition(&base, &graph, new_cliques, self.config.width_budget)
                    {
                        Ok((patched, stats)) => {
                            report.bags_touched += stats.bags_touched + stats.bags_added;
                            report.notes.push(format!(
                                "structure decomposition repaired in place ({} bags touched, {} added)",
                                stats.bags_touched, stats.bags_added
                            ));
                            Some(patched)
                        }
                        Err(refusal) => {
                            report.fell_back = true;
                            report.notes.push(format!(
                                "decomposition repair refused ({refusal}); re-decomposed from scratch"
                            ));
                            Some(decompose_with_heuristic(&graph, self.config.heuristic))
                        }
                    }
                }
                StructureImpact::Opaque => {
                    report.fell_back = true;
                    report.notes.push(
                        "structural change is opaque for this representation; re-decomposed".into(),
                    );
                    Some(decompose_with_heuristic(
                        &representation.structure_graph(),
                        self.config.heuristic,
                    ))
                }
            };
            if let Some(patched) = patched {
                report.width_after = Some(patched.width());
                self.cache
                    .insert_replacing((new_fingerprint, self.config.heuristic), Arc::new(patched));
            }
        }

        // --- compiled-lineage maintenance ----------------------------------
        let structure_width = report.width_after;
        let mut budget_gate = stuc_fault::budget::Gate::every(4);
        for (key, entry) in stale_lineages {
            budget_gate.check("update: lineage maintenance")?;
            if key.2 != self.config.heuristic {
                report.lineages_dropped += 1;
                continue;
            }
            let patched = match &application.lineage {
                LineagePatch::Rebuild => None,
                LineagePatch::Reusable => Some(entry.reusing(new_check)),
                LineagePatch::Steps(steps) => {
                    let mut compiled = entry.compiled.clone();
                    let mut alive = true;
                    for step in steps {
                        match step {
                            LineagePatchStep::RewireInputs { pin_false, remap } => {
                                let pins: BTreeSet<_> = pin_false.iter().copied().collect();
                                let map: BTreeMap<_, _> = remap.iter().copied().collect();
                                let (rewired, gates) = compiled.rewire_inputs(&pins, &map);
                                compiled = rewired;
                                report.gates_rebuilt += gates;
                            }
                            LineagePatchStep::ExtendWithNewMatches { inserted } => {
                                let Some(query) =
                                    entry.query.downcast_ref::<<R as Representation>::Query>()
                                else {
                                    alive = false;
                                    break;
                                };
                                let Some(delta_circuit) =
                                    representation.delta_lineage(query, inserted)
                                else {
                                    alive = false;
                                    break;
                                };
                                let Ok(simplified) = delta_circuit.simplify() else {
                                    alive = false;
                                    break;
                                };
                                let constant_false = simplified
                                    .output()
                                    .map(|out| matches!(simplified.gate(out), Gate::Const(false)))
                                    .unwrap_or(true);
                                if constant_false {
                                    // The insertion created no new match for
                                    // this query: the old circuit is exact.
                                    continue;
                                }
                                match compiled.extend_or(&simplified, self.config.width_budget) {
                                    Ok((extended, stats)) => {
                                        compiled = extended;
                                        report.gates_rebuilt += stats.gates_appended;
                                        report.bags_touched +=
                                            stats.bags_touched + stats.bags_added;
                                    }
                                    Err(refusal) => {
                                        report.fell_back = true;
                                        report.notes.push(format!(
                                            "lineage patch refused ({refusal}); dropped for lazy rebuild"
                                        ));
                                        alive = false;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    // Patches only ever grow a circuit (dead cones become
                    // constants, new cones are appended): once the patched
                    // size has outrun the cold-compiled watermark, drop the
                    // entry so the next query recompiles it compactly —
                    // sustained churn amortizes to a rebuild instead of
                    // degrading every sweep forever.
                    if alive && entry.is_bloated(compiled.len()) {
                        report.notes.push(format!(
                            "patched lineage grew to {} gates (cold: {}); dropped for compacting rebuild",
                            compiled.len(),
                            entry.cold_gates
                        ));
                        alive = false;
                    }
                    alive.then(|| entry.with_patched_circuit(compiled, new_check, structure_width))
                }
            };
            match patched {
                Some(fresh) => {
                    report.lineages_patched += 1;
                    self.lineage_cache
                        .insert_replacing((new_lineage_fp, key.1, key.2), Arc::new(fresh));
                }
                None => report.lineages_dropped += 1,
            }
        }
        if report.lineages_dropped > 0 && matches!(application.lineage, LineagePatch::Rebuild) {
            report.notes.push(format!(
                "{} compiled lineage(s) dropped: this update class rebuilds lineage",
                report.lineages_dropped
            ));
            report.fell_back = true;
        }

        report.wall_time = watch.elapsed();
        Ok(report)
    }
}
