//! Contention-free sharded caches for the engine's hot read path.
//!
//! The engine's two caches (structure decompositions, compiled lineages)
//! used to be single `Mutex<HashMap>`s: correct, but every cache *hit* —
//! the overwhelmingly common operation for a warm engine serving a query
//! workload — serialized all workers behind one lock. `ShardedCache` is
//! the replacement:
//!
//! * **Sharding** — entries are spread over N independent
//!   [`RwLock`]-guarded shards keyed by a hash of the key (for the engine,
//!   the leading component is an instance fingerprint). Readers on
//!   different shards never touch the same lock; readers on the *same*
//!   shard share a read lock.
//! * **Clone-on-read** — values are `Arc`s (or other cheap clones): a hit
//!   clones the `Arc` under the read lock and releases immediately, so no
//!   lock is ever held while the entry is *used*.
//! * **Publish-once, first-writer-wins** — a cache miss never holds any
//!   lock across the expensive work (decomposition, lineage compilation).
//!   Each worker computes its own value and calls `ShardedCache::publish`;
//!   the first writer installs its value, later writers *adopt* the
//!   installed one and drop their own, so every thread converges on one
//!   shared `Arc` per key.
//! * **Global FIFO bound** — a small side ledger (one mutex-guarded
//!   `VecDeque` of keys, touched only on insert/evict, never on read)
//!   preserves the exact capacity + oldest-first eviction semantics the
//!   single-lock cache promised: the cache never exceeds its capacity and
//!   churn never evicts the entry that was just inserted.
//!
//! Hit/miss counters are atomics bumped by the owner (the engine bumps
//! them only after validating an entry), surfaced through
//! [`CacheCounters`] so concurrency tests can prove that sharing actually
//! happened. Caches built with `ShardedCache::with_metrics` additionally
//! mirror every counter bump into pre-resolved global
//! [`stuc_obs`] handles, making hits/misses/races/evictions live metrics
//! (`/metrics`) instead of pull-only snapshots.

use super::metrics::CacheMetricHandles;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default shard count of the engine caches. More shards than cores is
/// harmless (a shard is one `RwLock` + one `HashMap`); fewer would make
/// unrelated fingerprints contend.
pub(crate) const DEFAULT_SHARDS: usize = 16;

/// A point-in-time snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Validated cache hits: an entry was found *and* passed the owner's
    /// revalidation (dual-hash check, structural validation).
    pub hits: u64,
    /// Misses: no entry, or an entry that failed revalidation.
    pub misses: u64,
    /// Publishes that lost the first-writer-wins race and adopted the
    /// already-installed entry instead. Nonzero means several workers
    /// compiled the same key concurrently — possible, never wrong.
    pub races_lost: u64,
    /// Entries dropped by the capacity (FIFO) bound. Explicit invalidation
    /// (`drain_matching`, `clear`) is not counted here.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Hit/miss/entry counters of both engine caches, from
/// [`Engine::cache_stats`](super::Engine::cache_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Counters of the structure-decomposition cache.
    pub decompositions: CacheCounters,
    /// Counters of the compiled-lineage cache.
    pub lineages: CacheCounters,
}

/// A sharded, bounded, clone-on-read concurrent map. See the [module
/// docs](self) for the locking discipline.
#[derive(Debug)]
pub(crate) struct ShardedCache<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
    /// Insert-order ledger backing the global FIFO bound. Only insert and
    /// eviction paths lock it; reads never do. May transiently hold keys
    /// that were already drained elsewhere — eviction skips those.
    order: Mutex<VecDeque<K>>,
    /// Maximum resident entries across all shards; 0 disables storage.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    races_lost: AtomicU64,
    evictions: AtomicU64,
    /// Global registry mirrors; `None` for bare test caches.
    metrics: Option<CacheMetricHandles>,
}

impl<K: Hash + Eq + Copy, V: Clone> ShardedCache<K, V> {
    /// A cache bounded to `capacity` entries across `shards` shards.
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            order: Mutex::new(VecDeque::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            races_lost: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Like [`ShardedCache::new`], with every counter mirrored into the
    /// given global metric handles.
    pub(crate) fn with_metrics(
        capacity: usize,
        shards: usize,
        metrics: CacheMetricHandles,
    ) -> Self {
        let mut cache = Self::new(capacity, shards);
        cache.metrics = Some(metrics);
        cache
    }

    /// Adjusts the global resident-entry gauge by a delta. The gauge sums
    /// over every cache sharing the handles (several engines may), so
    /// mutations report deltas rather than overwriting the level.
    fn gauge_entries(&self, delta: i64) {
        if let Some(metrics) = &self.metrics {
            metrics.entries.add(delta);
        }
    }

    /// Shard index of a key. Uses `DefaultHasher` (keyed deterministically)
    /// rather than the raw fingerprint so that structured keys sharing a
    /// leading component still spread.
    fn shard_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Read-locks a shard, surviving poisoning: a cache only ever holds
    /// revalidated-on-read entries, so a panic elsewhere must not take the
    /// cache down with it.
    fn read(&self, index: usize) -> RwLockReadGuard<'_, HashMap<K, V>> {
        self.shards[index]
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self, index: usize) -> RwLockWriteGuard<'_, HashMap<K, V>> {
        self.shards[index]
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn order_lock(&self) -> MutexGuard<'_, VecDeque<K>> {
        self.order
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Total resident entries (sums the shards; no global lock).
    pub(crate) fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// Clone-on-read lookup: the shard's read lock is held only for the
    /// clone, never while the caller uses the value. Does **not** bump the
    /// hit/miss counters — the owner does, after revalidating the entry.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        self.read(self.shard_of(key)).get(key).cloned()
    }

    /// Publishes a freshly computed value under first-writer-wins: if the
    /// key is vacant the value is installed and returned; if another worker
    /// got there first, *their* value is returned and `value` is dropped,
    /// so every racer converges on the one installed clone. The boolean is
    /// true when this call won the race.
    ///
    /// No lock is held across any caller work — compute first, publish
    /// after. With capacity 0 nothing is stored and the caller keeps its
    /// own value.
    pub(crate) fn publish(&self, key: K, value: V) -> (V, bool) {
        if self.capacity == 0 {
            return (value, true);
        }
        // Chaos probe *before* the shard lock: a panic here must leave the
        // cache exactly as it was (no entry, no ledger slot, no gauge skew).
        stuc_fault::failpoint!("cache-publish");
        {
            let mut shard = self.write(self.shard_of(&key));
            match shard.entry(key) {
                Entry::Occupied(existing) => {
                    self.races_lost.fetch_add(1, Ordering::Relaxed);
                    if let Some(metrics) = &self.metrics {
                        metrics.races_lost.inc();
                    }
                    return (existing.get().clone(), false);
                }
                Entry::Vacant(vacant) => {
                    vacant.insert(value.clone());
                }
            }
        }
        self.gauge_entries(1);
        self.order_lock().push_back(key);
        self.enforce_capacity();
        (value, true)
    }

    /// Inserts, replacing any existing entry — the update path's rekeying
    /// (a patched entry *must* supersede what is under the key, e.g. a
    /// fingerprint-colliding stranger being restored, or a reader's
    /// concurrently republished stale value).
    pub(crate) fn insert_replacing(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let fresh_key = self.write(self.shard_of(&key)).insert(key, value).is_none();
        if fresh_key {
            self.gauge_entries(1);
            self.order_lock().push_back(key);
            self.enforce_capacity();
        }
    }

    /// Evicts oldest-first until the cache is back within capacity. Ledger
    /// entries whose key is no longer resident (drained or replaced) are
    /// skipped. No two locks are ever held at once.
    fn enforce_capacity(&self) {
        // Chaos probe outside both locks, once per eviction pass.
        stuc_fault::failpoint!("cache-evict");
        while self.len() > self.capacity {
            let Some(victim) = self.order_lock().pop_front() else {
                break;
            };
            if self.write(self.shard_of(&victim)).remove(&victim).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.gauge_entries(-1);
                if let Some(metrics) = &self.metrics {
                    metrics.evictions.inc();
                }
            }
        }
    }

    /// Removes and returns every entry whose key matches the predicate.
    pub(crate) fn drain_matching(&self, mut matches: impl FnMut(&K) -> bool) -> Vec<(K, V)> {
        let mut drained = Vec::new();
        for index in 0..self.shards.len() {
            let mut shard = self.write(index);
            let keys: Vec<K> = shard.keys().copied().filter(|k| matches(k)).collect();
            for key in keys {
                let value = shard.remove(&key).expect("key listed under this lock");
                drained.push((key, value));
            }
        }
        if !drained.is_empty() {
            self.gauge_entries(-(drained.len() as i64));
            self.order_lock()
                .retain(|k| !drained.iter().any(|(drained_key, _)| drained_key == k));
        }
        drained
    }

    /// Drops every entry (counters are kept — they are lifetime totals).
    pub(crate) fn clear(&self) {
        let mut dropped = 0i64;
        for index in 0..self.shards.len() {
            let mut shard = self.write(index);
            dropped += shard.len() as i64;
            shard.clear();
        }
        self.gauge_entries(-dropped);
        self.order_lock().clear();
    }

    /// Records one validated hit (bumped by the owner, not by `get`).
    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = &self.metrics {
            metrics.hits.inc();
        }
    }

    /// Records one miss (absent entry or failed revalidation).
    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = &self.metrics {
            metrics.misses.inc();
        }
    }

    /// Snapshot of the counters plus the current entry count.
    pub(crate) fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            races_lost: self.races_lost.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl<K, V> Drop for ShardedCache<K, V> {
    fn drop(&mut self) {
        // The global entries gauge sums over every cache sharing the
        // handles; a dropped cache (engine torn down) must give its
        // residents back or the gauge would drift upward forever.
        if let Some(metrics) = &self.metrics {
            let resident: usize = self
                .shards
                .iter_mut()
                .map(|shard| shard.get_mut().map_or(0, |m| m.len()))
                .sum();
            metrics.entries.sub(resident as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_and_get_round_trip() {
        let cache: ShardedCache<u64, Arc<String>> = ShardedCache::new(8, 4);
        let (value, won) = cache.publish(1, Arc::new("one".into()));
        assert!(won);
        assert_eq!(*value, "one");
        assert_eq!(cache.get(&1).as_deref().map(String::as_str), Some("one"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn first_writer_wins_and_losers_adopt() {
        let cache: ShardedCache<u64, Arc<String>> = ShardedCache::new(8, 4);
        let (winner, won) = cache.publish(7, Arc::new("first".into()));
        assert!(won);
        let (adopted, won_second) = cache.publish(7, Arc::new("second".into()));
        assert!(!won_second);
        assert!(
            Arc::ptr_eq(&winner, &adopted),
            "loser must adopt the installed Arc"
        );
        assert_eq!(*adopted, "first");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().races_lost, 1);
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let cache: ShardedCache<u64, Arc<u32>> = ShardedCache::new(0, 4);
        let (value, won) = cache.publish(1, Arc::new(10));
        assert!(won);
        assert_eq!(*value, 10);
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&1).is_none());
        cache.insert_replacing(2, Arc::new(20));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn eviction_is_globally_oldest_first_across_shards() {
        // Capacity 2 over many shards: no matter which shards the keys land
        // in, the global FIFO ledger guarantees the oldest goes first.
        let cache: ShardedCache<u64, Arc<u64>> = ShardedCache::new(2, 16);
        for key in 0..10 {
            cache.publish(key, Arc::new(key));
            assert!(cache.len() <= 2, "capacity must hold after every insert");
            assert!(
                cache.get(&key).is_some(),
                "the just-inserted entry must be resident"
            );
        }
        // Survivors are exactly the two newest.
        assert!(cache.get(&9).is_some());
        assert!(cache.get(&8).is_some());
        for key in 0..8 {
            assert!(cache.get(&key).is_none(), "key {key} should be evicted");
        }
    }

    #[test]
    fn drain_matching_removes_only_matches_and_cleans_the_ledger() {
        let cache: ShardedCache<(u64, u64), Arc<u64>> = ShardedCache::new(16, 4);
        for i in 0..6 {
            cache.publish((i % 2, i), Arc::new(i));
        }
        let drained = cache.drain_matching(|key| key.0 == 0);
        assert_eq!(drained.len(), 3);
        assert_eq!(cache.len(), 3);
        // Ledger is clean: filling to capacity again never double-counts.
        for i in 10..23 {
            cache.publish((2, i), Arc::new(i));
            assert!(cache.len() <= 16);
        }
    }

    #[test]
    fn a_reader_holding_an_arc_survives_eviction() {
        let cache: ShardedCache<u64, Arc<String>> = ShardedCache::new(1, 4);
        let (held, _) = cache.publish(1, Arc::new("held".into()));
        cache.publish(2, Arc::new("evictor".into())); // evicts key 1
        assert!(cache.get(&1).is_none());
        assert_eq!(*held, "held", "the reader's Arc outlives the cache entry");
    }

    // --- loom-style schedule exploration -----------------------------------
    //
    // Every public cache operation is linearizable (each takes its internal
    // locks for the whole call), so any concurrent execution of a set of
    // operations is equivalent to SOME sequential interleaving of them. The
    // harness below enumerates ALL interleavings of the per-thread operation
    // sequences and checks the first-writer-wins invariants on each — a
    // hand-rolled, dependency-free stand-in for loom's schedule exploration.

    #[derive(Default)]
    struct ScheduleState {
        /// Value each publisher ended up holding after its publish call.
        adopted: Vec<(usize, u64, bool)>, // (thread, value, won)
        /// What the reader observed (None = not yet / absent).
        read: Option<Option<u64>>,
    }

    /// One atomic operation of a modelled thread: (thread index, cache,
    /// shared observation state).
    type Step = fn(usize, &ShardedCache<u64, Arc<u64>>, &mut ScheduleState);

    /// Enumerates every interleaving of the given per-thread step sequences
    /// and runs `check` on the final state of each.
    fn explore(
        threads: &[Vec<Step>],
        check: impl Fn(&ShardedCache<u64, Arc<u64>>, &ScheduleState, &[usize]),
    ) {
        fn recurse(
            threads: &[Vec<Step>],
            progress: &mut Vec<usize>,
            schedule: &mut Vec<usize>,
            run: &mut dyn FnMut(&[usize]),
        ) {
            let mut advanced = false;
            for thread in 0..threads.len() {
                if progress[thread] < threads[thread].len() {
                    advanced = true;
                    progress[thread] += 1;
                    schedule.push(thread);
                    recurse(threads, progress, schedule, run);
                    schedule.pop();
                    progress[thread] -= 1;
                }
            }
            if !advanced {
                run(schedule);
            }
        }
        let mut progress = vec![0; threads.len()];
        let mut schedule = Vec::new();
        let mut schedules_run = 0usize;
        recurse(threads, &mut progress, &mut schedule, &mut |schedule| {
            schedules_run += 1;
            // Replay this interleaving against a fresh cache.
            let cache = ShardedCache::new(8, 4);
            let mut state = ScheduleState::default();
            let mut cursors = vec![0usize; threads.len()];
            for &thread in schedule {
                let step = threads[thread][cursors[thread]];
                cursors[thread] += 1;
                step(thread, &cache, &mut state);
            }
            check(&cache, &state, schedule);
        });
        assert!(
            schedules_run > 1,
            "the exploration must enumerate schedules"
        );
    }

    #[test]
    fn all_publish_publish_read_interleavings_converge() {
        // Two publishers racing on the same key (with different payloads, so
        // a wrong winner is detectable) plus one reader. In EVERY
        // interleaving: exactly one publisher wins; both publishers hold the
        // winner's value afterwards; the reader sees either nothing (ran
        // before any publish) or the winner's value — never a torn or
        // superseded one; and the final resident value is the winner's.
        fn read(_: usize, cache: &ShardedCache<u64, Arc<u64>>, state: &mut ScheduleState) {
            state.read = Some(cache.get(&42).map(|v| *v));
        }
        fn publish_100(t: usize, c: &ShardedCache<u64, Arc<u64>>, s: &mut ScheduleState) {
            publisher_impl(t, c, s, 100)
        }
        fn publish_200(t: usize, c: &ShardedCache<u64, Arc<u64>>, s: &mut ScheduleState) {
            publisher_impl(t, c, s, 200)
        }
        fn publisher_impl(
            thread: usize,
            cache: &ShardedCache<u64, Arc<u64>>,
            state: &mut ScheduleState,
            value: u64,
        ) {
            let (adopted, won) = cache.publish(42, Arc::new(value));
            state.adopted.push((thread, *adopted, won));
        }
        explore(
            &[vec![publish_100], vec![publish_200], vec![read]],
            |cache, state, schedule| {
                let winners: Vec<_> = state.adopted.iter().filter(|(_, _, won)| *won).collect();
                assert_eq!(winners.len(), 1, "exactly one winner in {schedule:?}");
                let winning_value = winners[0].1;
                for (thread, adopted, _) in &state.adopted {
                    assert_eq!(
                        *adopted, winning_value,
                        "thread {thread} must adopt the winner in {schedule:?}"
                    );
                }
                let resident = cache.get(&42).map(|v| *v);
                assert_eq!(resident, Some(winning_value), "in {schedule:?}");
                match state.read.expect("reader ran in every complete schedule") {
                    None => {} // read before any publish: a miss, fine
                    Some(seen) => assert_eq!(
                        seen, winning_value,
                        "reader must never see a non-winning value in {schedule:?}"
                    ),
                }
            },
        );
    }

    #[test]
    fn all_publish_evict_read_interleavings_are_safe() {
        // One publisher on key 1, one evictor draining key 1, one reader.
        // In every interleaving the reader sees the published value or
        // nothing; a drained cache never resurrects the value; and the
        // ledger stays consistent (len matches residency).
        fn publish(_: usize, cache: &ShardedCache<u64, Arc<u64>>, state: &mut ScheduleState) {
            let (v, won) = cache.publish(1, Arc::new(7));
            state.adopted.push((0, *v, won));
        }
        fn evict(_: usize, cache: &ShardedCache<u64, Arc<u64>>, _: &mut ScheduleState) {
            let _ = cache.drain_matching(|k| *k == 1);
        }
        fn read(_: usize, cache: &ShardedCache<u64, Arc<u64>>, state: &mut ScheduleState) {
            state.read = Some(cache.get(&1).map(|v| *v));
        }
        explore(
            &[vec![publish], vec![evict], vec![read]],
            |cache, state, schedule| {
                match state.read.expect("reader ran") {
                    None => {}
                    Some(seen) => assert_eq!(seen, 7, "only the published value in {schedule:?}"),
                }
                let resident = cache.get(&1).map(|v| *v);
                assert!(
                    resident.is_none() || resident == Some(7),
                    "resident value must be the published one in {schedule:?}"
                );
                assert_eq!(
                    cache.len(),
                    usize::from(resident.is_some()),
                    "ledger/len consistency in {schedule:?}"
                );
            },
        );
    }
}
