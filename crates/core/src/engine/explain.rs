//! EXPLAIN: evaluate-free query-plan introspection.
//!
//! [`Engine::explain`] answers "what would [`Engine::evaluate`] do with this
//! query, and why" without running a counting sweep: which route (extensional
//! safe plan vs. compiled lineage), which back-end and the evidence behind
//! the choice, the circuit's width against the engine's budget, the sweep
//! plan's table volume, and which caches would serve the work. The decision
//! logic is a faithful mirror of `evaluate_inner` — same policy handling,
//! same hierarchy/self-join checks in the same order, same width-vs-budget
//! rule — so an explanation always agrees with the [`EvaluationReport`] of
//! an actual run on route, back-end, width and cache provenance.
//!
//! "Evaluate-free" means no probability is computed; the circuit path still
//! fetches (or builds) the compiled lineage through the engine's shared
//! cache, because width, gate counts and sweep-plan shape *are* the
//! explanation. A cold explain therefore warms the cache for the run that
//! follows it — by design: `explain` then `evaluate` pays the compilation
//! once, like `evaluate` twice would.
//!
//! Renderings are deterministic (no floats, no timings, no pointers), so
//! both the text and the JSON form are golden-testable byte-for-byte.
//!
//! ```
//! use stuc_core::engine::Engine;
//! use stuc_data::tid::TidInstance;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a"], 0.4);
//! tid.add_fact_named("S", &["a", "b"], 0.5);
//!
//! let explanations = Engine::new().explain_text(&tid, "?- R(x), S(x, y).").unwrap();
//! assert_eq!(explanations[0].outcome, stuc_core::engine::ExplainOutcome::SafePlan);
//! println!("{}", explanations[0].render_text());
//! ```

use std::sync::Arc;

use super::report::{BackendKind, BackendPolicy};
use super::representation::Representation;
use super::text::lowering_note;
use super::{CacheFlags, CompiledLineage, Engine, StucError};
use stuc_circuit::wmc::WmcError;
use stuc_lang::ast::{RuleAst, UnionAst};
use stuc_lang::cost::{CostModel, Route, RouteDecision};
use stuc_lang::lower::lower_goal;
use stuc_lang::{parse_program, LangError};
use stuc_obs::timer::StageRecorder;
use stuc_obs::trace;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::safe::{is_hierarchical, SafePlanError};

/// What the engine would do with the query, at the top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainOutcome {
    /// Stage 1 wins: the extensional safe plan evaluates the query directly
    /// on the instance's own probabilities; no circuit is ever built.
    SafePlan,
    /// The lineage pipeline runs: decomposition → circuit → counting sweep.
    Circuit,
    /// The evaluation would be refused before any probability is computed
    /// (a pinned back-end that cannot run the task, or a width over the
    /// pinned sweep's budget); [`QueryExplanation::refusal`] carries the
    /// exact error message `evaluate` would return.
    Refused,
}

impl ExplainOutcome {
    /// Stable lowercase name, used in both renderings.
    pub fn name(self) -> &'static str {
        match self {
            ExplainOutcome::SafePlan => "safe-plan",
            ExplainOutcome::Circuit => "circuit",
            ExplainOutcome::Refused => "refused",
        }
    }
}

/// Why the extensional safe plan is (or is not) on the table — the three
/// structural conditions of the dichotomy's tractable side, each reported
/// separately so a refusal names its exact cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafePlanEligibility {
    /// The representation offers the extensional fast path at all (only
    /// TID instances do).
    pub extensional: bool,
    /// The query is hierarchical (`None` when there is no extensional path
    /// to check it on).
    pub hierarchical: Option<bool>,
    /// The query is self-join-free (`None` as above).
    pub self_join_free: Option<bool>,
    /// The query has no atoms (the safe plan refuses those too).
    pub empty: Option<bool>,
}

impl SafePlanEligibility {
    fn unavailable() -> Self {
        SafePlanEligibility {
            extensional: false,
            hierarchical: None,
            self_join_free: None,
            empty: None,
        }
    }

    fn of(query: &ConjunctiveQuery) -> Self {
        SafePlanEligibility {
            extensional: true,
            hierarchical: Some(is_hierarchical(query)),
            self_join_free: Some(query.is_self_join_free()),
            empty: Some(query.atoms.is_empty()),
        }
    }

    /// The refusal `safe_plan_probability` would produce, in its exact
    /// check order: empty query, then self-join, then hierarchy.
    fn refusal(&self) -> Option<SafePlanError> {
        if self.empty == Some(true) {
            return Some(SafePlanError::EmptyQuery);
        }
        if self.self_join_free == Some(false) {
            return Some(SafePlanError::SelfJoin);
        }
        if self.hierarchical == Some(false) {
            return Some(SafePlanError::NotHierarchical);
        }
        None
    }
}

/// Size and shape of the compiled lineage circuit the evaluation would
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitExplanation {
    /// Gate count after simplification (what the sweep walks).
    pub gates: usize,
    /// Gate count when the circuit was last compiled cold (differs from
    /// `gates` after incremental patches).
    pub cold_gates: usize,
    /// Distinct lineage variables (the dimension of the weight space).
    pub variables: usize,
    /// Bags of the circuit-graph decomposition.
    pub bags: usize,
    /// Width of the circuit-graph decomposition — the number the back-end
    /// choice compares against the budget.
    pub width: usize,
    /// Width of the *structure-graph* decomposition the lineage was built
    /// from (the paper's tractability parameter), when one was involved.
    pub decomposition_width: Option<usize>,
    /// The engine's width budget (`EngineBuilder::width_budget`).
    pub width_budget: usize,
    /// `width < width_budget` — the exact rule `Auto` uses (the WMC
    /// back-end refuses on bag size, which is width + 1).
    pub within_budget: bool,
    /// The treewidth sweep's precomputed plan, when one exists for this
    /// width and the predicted back-end would use it.
    pub sweep: Option<SweepPlanStats>,
}

/// The treewidth sweep plan in numbers: how much work one sweep performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPlanStats {
    /// Plan nodes (one per decomposition bag, in sweep order).
    pub nodes: usize,
    /// Total dense table entries across all nodes (Σ 2^|bag|) — the number
    /// of multiply-accumulate slots one sweep fills.
    pub table_entries: usize,
    /// Arena slots a single-lane sweep allocates (peak live tables).
    pub arena_slots: usize,
}

/// One engine cache, as this explanation saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSideExplanation {
    /// The cache is configured on (capacity > 0 and the flag set).
    pub enabled: bool,
    /// `"hit"`, `"miss"`, or `"untouched"` (safe-plan and refused paths
    /// never look) — matches the corresponding `EvaluationReport` flag.
    pub provenance: &'static str,
    /// Engine-lifetime validated hits.
    pub hits: u64,
    /// Engine-lifetime misses.
    pub misses: u64,
    /// Engine-lifetime publishes that lost the first-writer-wins race.
    pub races_lost: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Both engine caches (compiled lineage, structure decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheExplanation {
    /// The compiled-lineage cache.
    pub lineage: CacheSideExplanation,
    /// The structure-decomposition cache.
    pub decomposition: CacheSideExplanation,
}

/// The cost model's routing decision, for goals that went through the
/// textual front-end (the programmatic API routes structurally, not by
/// cost, so [`QueryExplanation::route`] is `None` there).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteExplanation {
    /// The chosen route (after any policy forcing).
    pub route: Route,
    /// Every term was hierarchical and self-join-free.
    pub safe_eligible: bool,
    /// The circuit route was discounted because every term's lineage was
    /// already compiled and cached.
    pub cached_lineage: bool,
    /// [`RouteDecision::summary`] — the float-free one-liner.
    pub summary: String,
}

impl RouteExplanation {
    fn from_decision(decision: &RouteDecision) -> Self {
        RouteExplanation {
            route: decision.route,
            safe_eligible: decision.safe_eligible,
            cached_lineage: decision.cached_lineage,
            summary: decision.summary(),
        }
    }
}

/// The full explanation of what [`Engine::evaluate`] (or the textual
/// front-end) would do with one query — see the [module docs](self).
///
/// Everything in here is deterministic for a fixed engine configuration,
/// instance, query and cache state: no floats, no wall times, no ids.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExplanation {
    /// The query, rendered (goal source text for the textual front-end,
    /// clipped `Debug` form for the programmatic API).
    pub query: String,
    /// Stable representation-kind name (`"tid-instance"`, …).
    pub representation: &'static str,
    /// Fact count of the instance.
    pub fact_count: usize,
    /// The engine's back-end policy (`"auto"` or `"fixed:<backend>"`).
    pub policy: String,
    /// What would happen, at the top level.
    pub outcome: ExplainOutcome,
    /// The back-end that would run (for [`ExplainOutcome::Refused`], the
    /// back-end that refuses).
    pub backend: BackendKind,
    /// One sentence of why that back-end.
    pub reason: String,
    /// For refused outcomes: the exact error message `evaluate` returns.
    pub refusal: Option<String>,
    /// The three structural safe-plan conditions, individually.
    pub safe_plan: SafePlanEligibility,
    /// The cost model's decision (textual front-end only).
    pub route: Option<RouteExplanation>,
    /// What lowering did (textual front-end only).
    pub lowering: Option<String>,
    /// The compiled circuit, when the circuit path would run. For lowered
    /// goals with several inclusion–exclusion terms the counts are folded
    /// as the goal report folds them: gates summed, widths maxed.
    pub circuit: Option<CircuitExplanation>,
    /// Both engine caches: provenance for this query plus lifetime
    /// counters (hit/miss/race).
    pub cache: CacheExplanation,
    /// The pipeline stages the evaluation would execute, in order.
    pub stages: Vec<&'static str>,
    /// The same strategy notes `evaluate` would put in its report (cache
    /// provenance, hierarchy verdicts, width-vs-budget), deduplicated.
    pub notes: Vec<String>,
}

impl QueryExplanation {
    /// Deterministic multi-line rendering for terminals (the REPL's
    /// `:explain`, `stuc-serve`'s logs). One `label: value` pair per line,
    /// notes indented last.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("explain: {}\n", self.query));
        out.push_str(&format!(
            "representation: {} ({} facts)\n",
            self.representation, self.fact_count
        ));
        out.push_str(&format!("policy: {}\n", self.policy));
        out.push_str(&format!(
            "plan: {} — backend {} ({})\n",
            self.outcome.name(),
            self.backend.name(),
            self.reason
        ));
        if let Some(refusal) = &self.refusal {
            out.push_str(&format!("refusal: {refusal}\n"));
        }
        out.push_str(&format!(
            "safe plan: extensional={} hierarchical={} self-join-free={}\n",
            yes_no(Some(self.safe_plan.extensional)),
            yes_no(self.safe_plan.hierarchical),
            yes_no(self.safe_plan.self_join_free),
        ));
        if let Some(route) = &self.route {
            out.push_str(&format!("route: {}\n", route.summary));
        }
        if let Some(lowering) = &self.lowering {
            out.push_str(&format!("lowering: {lowering}\n"));
        }
        if let Some(c) = &self.circuit {
            out.push_str(&format!(
                "circuit: {} gates ({} cold), {} variables, {} bags, width {} {} budget {}\n",
                c.gates,
                c.cold_gates,
                c.variables,
                c.bags,
                c.width,
                if c.within_budget { "within" } else { "over" },
                c.width_budget,
            ));
            if let Some(w) = c.decomposition_width {
                out.push_str(&format!("structure width: {w}\n"));
            }
            if let Some(s) = &c.sweep {
                out.push_str(&format!(
                    "sweep plan: {} nodes, {} table entries, {} arena slots\n",
                    s.nodes, s.table_entries, s.arena_slots
                ));
            }
        }
        out.push_str(&format!(
            "cache: lineage={} decomposition={}\n",
            self.cache.lineage.provenance, self.cache.decomposition.provenance
        ));
        if !self.stages.is_empty() {
            out.push_str(&format!("stages: {}\n", self.stages.join(", ")));
        }
        if !self.notes.is_empty() {
            out.push_str("notes:\n");
            for note in &self.notes {
                out.push_str(&format!("  - {note}\n"));
            }
        }
        out
    }

    /// Deterministic single-line JSON rendering (fixed key order, no
    /// floats) for `POST /query?explain=1` and golden tests.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"query\":");
        json_str(&mut out, &self.query);
        out.push_str(",\"representation\":");
        json_str(&mut out, self.representation);
        out.push_str(&format!(",\"facts\":{}", self.fact_count));
        out.push_str(",\"policy\":");
        json_str(&mut out, &self.policy);
        out.push_str(",\"outcome\":");
        json_str(&mut out, self.outcome.name());
        out.push_str(",\"backend\":");
        json_str(&mut out, self.backend.name());
        out.push_str(",\"reason\":");
        json_str(&mut out, &self.reason);
        out.push_str(",\"refusal\":");
        match &self.refusal {
            Some(refusal) => json_str(&mut out, refusal),
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"safe_plan\":{{\"extensional\":{},\"hierarchical\":{},\"self_join_free\":{},\"empty\":{}}}",
            self.safe_plan.extensional,
            json_opt_bool(self.safe_plan.hierarchical),
            json_opt_bool(self.safe_plan.self_join_free),
            json_opt_bool(self.safe_plan.empty),
        ));
        out.push_str(",\"route\":");
        match &self.route {
            Some(route) => {
                out.push_str(&format!(
                    "{{\"route\":\"{}\",\"safe_eligible\":{},\"cached_lineage\":{},\"summary\":",
                    route.route, route.safe_eligible, route.cached_lineage
                ));
                json_str(&mut out, &route.summary);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"lowering\":");
        match &self.lowering {
            Some(lowering) => json_str(&mut out, lowering),
            None => out.push_str("null"),
        }
        out.push_str(",\"circuit\":");
        match &self.circuit {
            Some(c) => {
                out.push_str(&format!(
                    "{{\"gates\":{},\"cold_gates\":{},\"variables\":{},\"bags\":{},\"width\":{},\"decomposition_width\":{},\"width_budget\":{},\"within_budget\":{},\"sweep\":",
                    c.gates,
                    c.cold_gates,
                    c.variables,
                    c.bags,
                    c.width,
                    c.decomposition_width
                        .map(|w| w.to_string())
                        .unwrap_or_else(|| "null".into()),
                    c.width_budget,
                    c.within_budget,
                ));
                match &c.sweep {
                    Some(s) => out.push_str(&format!(
                        "{{\"nodes\":{},\"table_entries\":{},\"arena_slots\":{}}}",
                        s.nodes, s.table_entries, s.arena_slots
                    )),
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(&format!(
            ",\"cache\":{{\"lineage\":{},\"decomposition\":{}}}",
            json_cache_side(&self.cache.lineage),
            json_cache_side(&self.cache.decomposition),
        ));
        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(&mut out, stage);
        }
        out.push_str("],\"notes\":[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(&mut out, note);
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Display for QueryExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_text())
    }
}

fn yes_no(value: Option<bool>) -> &'static str {
    match value {
        Some(true) => "yes",
        Some(false) => "no",
        None => "n/a",
    }
}

fn json_opt_bool(value: Option<bool>) -> String {
    match value {
        Some(b) => b.to_string(),
        None => "null".into(),
    }
}

fn json_cache_side(side: &CacheSideExplanation) -> String {
    format!(
        "{{\"enabled\":{},\"provenance\":\"{}\",\"hits\":{},\"misses\":{},\"races_lost\":{},\"entries\":{}}}",
        side.enabled, side.provenance, side.hits, side.misses, side.races_lost, side.entries
    )
}

/// Minimal JSON string escape (quotes, backslashes, control characters) —
/// the same dialect the HTTP server emits.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Clip a `Debug`-rendered query for display; explanations are for humans,
/// the full rendering lives in the lineage-cache key.
fn clip(text: &str) -> String {
    const MAX: usize = 120;
    if text.chars().count() <= MAX {
        return text.to_string();
    }
    let clipped: String = text.chars().take(MAX - 1).collect();
    format!("{clipped}…")
}

fn push_unique(notes: &mut Vec<String>, note: String) {
    if !notes.iter().any(|n| n == &note) {
        notes.push(note);
    }
}

/// What stage 1 of `evaluate_inner` would decide.
enum Stage1 {
    SafePlan,
    Circuit,
    Refuse(StucError),
}

impl Engine {
    /// Explains — without evaluating — what [`Engine::evaluate`] would do
    /// with `query` on `representation`: route, back-end, width vs.
    /// budget, sweep-plan volume, cache provenance, and the same strategy
    /// notes the evaluation report would carry.
    ///
    /// The circuit path fetches (or builds and caches) the compiled
    /// lineage, so a cold explain warms the cache for the evaluation that
    /// follows; no counting sweep ever runs. Errors that would strike
    /// while *building* the lineage (decomposition, compilation, a tripped
    /// budget) propagate exactly as they would from `evaluate`; refusals
    /// that the back-end choice can predict are reported in
    /// [`QueryExplanation::refusal`] instead of being returned as errors.
    pub fn explain<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<QueryExplanation, StucError> {
        let _span = trace::span("explain");
        let mut notes = Vec::new();
        let extensional = representation.extensional(query);
        let safe_plan = match &extensional {
            Some(ext) => SafePlanEligibility::of(ext.query),
            None => SafePlanEligibility::unavailable(),
        };

        // Stage 1 mirror: the same decision tree as `evaluate_inner`,
        // producing the same notes in the same order.
        let stage1 = match (self.config.policy, safe_plan.extensional) {
            (BackendPolicy::Fixed(BackendKind::SafePlan), true) => match safe_plan.refusal() {
                None => Stage1::SafePlan,
                Some(refusal) => Stage1::Refuse(refusal.into()),
            },
            (BackendPolicy::Fixed(BackendKind::SafePlan), false) => {
                Stage1::Refuse(StucError::BackendUnsupported {
                    backend: BackendKind::SafePlan.name(),
                    reason: format!(
                        "{} offers no extensional evaluation; only TID instances do",
                        representation.kind()
                    ),
                })
            }
            (BackendPolicy::Auto, true) => {
                if safe_plan.hierarchical == Some(true) {
                    match safe_plan.refusal() {
                        None => {
                            notes.push(
                                "query is hierarchical; extensional safe plan selected".to_string(),
                            );
                            Stage1::SafePlan
                        }
                        Some(refusal) => {
                            let refusal: StucError = refusal.into();
                            notes.push(format!("safe plan refused ({refusal}); using lineage"));
                            Stage1::Circuit
                        }
                    }
                } else {
                    notes.push(
                        "query is not hierarchical; extensional safe plan skipped".to_string(),
                    );
                    Stage1::Circuit
                }
            }
            _ => Stage1::Circuit,
        };

        let mut explanation = QueryExplanation {
            query: clip(&format!("{query:?}")),
            representation: representation.kind().name(),
            fact_count: representation.fact_count(),
            policy: policy_name(self.config.policy),
            outcome: ExplainOutcome::Circuit,
            backend: BackendKind::TreewidthWmc,
            reason: String::new(),
            refusal: None,
            safe_plan,
            route: None,
            lowering: None,
            circuit: None,
            cache: self.cache_explanation(None),
            stages: Vec::new(),
            notes: Vec::new(),
        };

        match stage1 {
            Stage1::SafePlan => {
                explanation.outcome = ExplainOutcome::SafePlan;
                explanation.backend = BackendKind::SafePlan;
                explanation.reason = match self.config.policy {
                    BackendPolicy::Fixed(_) => "policy pins the extensional safe plan".to_string(),
                    _ => "query is hierarchical and self-join-free; no circuit needed".to_string(),
                };
                explanation.stages = vec!["safe-plan"];
            }
            Stage1::Refuse(err) => {
                explanation.outcome = ExplainOutcome::Refused;
                explanation.backend = BackendKind::SafePlan;
                explanation.reason = "the pinned back-end cannot run this task".to_string();
                explanation.refusal = Some(err.to_string());
            }
            Stage1::Circuit => {
                let (entry, flags) = self.explained_lineage(representation, query, &mut notes)?;
                let (backend, reason, refusal) =
                    self.predict_backend(entry.compiled.width(), &mut notes);
                explanation.backend = backend;
                explanation.reason = reason;
                explanation.circuit =
                    Some(self.circuit_explanation(&entry, backend, entry.decomposition_width));
                explanation.cache = self.cache_explanation(Some(flags));
                explanation.stages = if flags.lineage_cached {
                    vec!["cache-lookup", "sweep"]
                } else {
                    vec!["cache-lookup", "decompose", "compile-lineage", "sweep"]
                };
                if let Some(err) = refusal {
                    explanation.outcome = ExplainOutcome::Refused;
                    explanation.refusal = Some(err.to_string());
                    explanation.stages.pop(); // the sweep never happens
                }
            }
        }
        explanation.notes = notes;
        Ok(explanation)
    }

    /// Renders [`Engine::explain`] as the deterministic text block.
    pub fn explain_to_string<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<String, StucError> {
        Ok(self.explain(representation, query)?.render_text())
    }

    /// Explains every `?-` goal of a `stuc-lang` program: parse → lower →
    /// cost-model route (mirroring [`Engine::evaluate_text`]'s decision
    /// per goal, including policy forcing and the missing-extensional
    /// fallback), then the circuit analysis of [`Engine::explain`] for
    /// every inclusion–exclusion term the circuit route would compile.
    pub fn explain_text<R>(
        &self,
        representation: &R,
        src: &str,
    ) -> Result<Vec<QueryExplanation>, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        let program = parse_program(src).map_err(LangError::from)?;
        let fact_count = program.facts().count();
        if fact_count > 0 {
            return Err(StucError::TextFacts { count: fact_count });
        }
        let rules = program.rules();
        let mut explanations = Vec::new();
        for query in program.queries() {
            explanations.push(self.explain_goal(representation, &query.goal, &rules)?);
        }
        Ok(explanations)
    }

    /// Explains one parsed goal with `rules` in scope — the per-goal core
    /// of [`Engine::explain_text`], exposed for callers (the REPL) that
    /// keep a parsed program around.
    pub fn explain_goal<R>(
        &self,
        representation: &R,
        goal: &UnionAst,
        rules: &[&RuleAst],
    ) -> Result<QueryExplanation, StucError>
    where
        R: Representation<Query = ConjunctiveQuery> + ?Sized,
    {
        let _span = trace::span("explain_goal");
        let lowered = lower_goal(goal, rules).map_err(LangError::from)?;
        let stats = representation.relation_stats().unwrap_or_default();
        let cached = !lowered.terms.is_empty()
            && lowered
                .terms
                .iter()
                .filter_map(|t| t.query.as_ref())
                .all(|q| self.has_cached_lineage(representation, q));
        let mut decision = CostModel::default().choose(&lowered, &stats, cached);
        match self.config.policy {
            BackendPolicy::Fixed(BackendKind::SafePlan) => decision.route = Route::SafePlan,
            BackendPolicy::Fixed(_) => decision.route = Route::Circuit,
            BackendPolicy::Auto => {}
        }

        let mut notes = vec![decision.summary(), lowering_note(&lowered)];
        let terms: Vec<&ConjunctiveQuery> = lowered
            .terms
            .iter()
            .filter_map(|t| t.query.as_ref())
            .collect();
        let safe_plan = match terms.first() {
            // Eligibility across the goal: every term must pass; fold the
            // three conditions the way the cost model folds them.
            Some(_)
                if terms
                    .iter()
                    .all(|q| representation.extensional(q).is_some()) =>
            {
                SafePlanEligibility {
                    extensional: true,
                    hierarchical: Some(terms.iter().all(|q| is_hierarchical(q))),
                    self_join_free: Some(terms.iter().all(|q| q.is_self_join_free())),
                    empty: Some(false),
                }
            }
            Some(_) => SafePlanEligibility::unavailable(),
            None => SafePlanEligibility::unavailable(),
        };

        let mut explanation = QueryExplanation {
            query: goal.to_string(),
            representation: representation.kind().name(),
            fact_count: representation.fact_count(),
            policy: policy_name(self.config.policy),
            outcome: ExplainOutcome::Circuit,
            backend: BackendKind::TreewidthWmc,
            reason: String::new(),
            refusal: None,
            safe_plan,
            route: None,
            lowering: Some(lowering_note(&lowered)),
            circuit: None,
            cache: self.cache_explanation(None),
            stages: vec!["lower", "route"],
            notes: Vec::new(),
        };

        // The missing-extensional fallback, mirroring `evaluate_goal`.
        if decision.route == Route::SafePlan
            && terms
                .iter()
                .any(|q| representation.extensional(q).is_none())
        {
            if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
                explanation.outcome = ExplainOutcome::Refused;
                explanation.backend = BackendKind::SafePlan;
                explanation.reason = "the pinned back-end cannot run this task".to_string();
                explanation.refusal = Some(
                    StucError::BackendUnsupported {
                        backend: BackendKind::SafePlan.name(),
                        reason: format!(
                            "{} offers no extensional evaluation; only TID instances do",
                            representation.kind()
                        ),
                    }
                    .to_string(),
                );
                explanation.route = Some(RouteExplanation::from_decision(&decision));
                explanation.notes = notes;
                return Ok(explanation);
            }
            decision.route = Route::Circuit;
            notes.push(
                "representation offers no extensional evaluation; circuit route used".to_string(),
            );
        }
        explanation.route = Some(RouteExplanation::from_decision(&decision));

        match decision.route {
            Route::SafePlan => {
                explanation.outcome = ExplainOutcome::SafePlan;
                explanation.backend = BackendKind::SafePlan;
                explanation.reason = match self.config.policy {
                    BackendPolicy::Fixed(_) => "policy pins the extensional safe plan".to_string(),
                    _ => "the cost model priced the safe plan below compilation".to_string(),
                };
                explanation.stages.push("safe-plan");
            }
            Route::Circuit if terms.is_empty() => {
                // Mirrors `evaluate_goal`: no term to compile, default
                // back-end, zero gates.
                explanation.backend = BackendKind::TreewidthWmc;
                explanation.reason = "no satisfiable terms; nothing to evaluate".to_string();
                notes.push("no satisfiable terms remained after lowering".to_string());
            }
            Route::Circuit => {
                // Fold per-term circuits as the goal report folds them:
                // gates summed, widths maxed, cache flags ANDed, back-end
                // from the first term.
                let mut folded: Option<CircuitExplanation> = None;
                let mut flags = CacheFlags {
                    decomposition_cached: true,
                    lineage_cached: true,
                };
                let mut first_backend = None;
                let mut refusal = None;
                for query in &terms {
                    let (entry, term_flags) =
                        self.explained_lineage(representation, *query, &mut notes)?;
                    flags.decomposition_cached &= term_flags.decomposition_cached;
                    flags.lineage_cached &= term_flags.lineage_cached;
                    let (backend, reason, term_refusal) =
                        self.predict_backend(entry.compiled.width(), &mut notes);
                    if first_backend.is_none() {
                        first_backend = Some((backend, reason));
                    }
                    if refusal.is_none() {
                        refusal = term_refusal;
                    }
                    let term_circuit =
                        self.circuit_explanation(&entry, backend, entry.decomposition_width);
                    folded = Some(match folded {
                        None => term_circuit,
                        Some(prior) => fold_circuits(prior, term_circuit),
                    });
                }
                let (backend, reason) = first_backend.expect("terms is non-empty in this branch");
                explanation.backend = backend;
                explanation.reason = reason;
                explanation.circuit = folded;
                explanation.cache = self.cache_explanation(Some(flags));
                if flags.lineage_cached {
                    explanation.stages.push("cache-lookup");
                } else {
                    explanation
                        .stages
                        .extend(["cache-lookup", "decompose", "compile-lineage"]);
                }
                if let Some(err) = refusal {
                    explanation.outcome = ExplainOutcome::Refused;
                    explanation.refusal = Some(err.to_string());
                } else {
                    explanation.stages.push("sweep");
                }
            }
        }
        explanation.notes = notes;
        Ok(explanation)
    }

    /// Fetch/build the compiled lineage and mirror the cache/build notes
    /// `evaluate_on_circuit` would push.
    fn explained_lineage<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
        notes: &mut Vec<String>,
    ) -> Result<(Arc<CompiledLineage>, CacheFlags), StucError> {
        let mut rec = StageRecorder::new();
        let (entry, flags) = self.compiled_lineage(representation, query, &mut rec)?;
        if flags.lineage_cached {
            push_unique(notes, "compiled lineage served from cache".to_string());
        } else if flags.decomposition_cached {
            push_unique(
                notes,
                "structure decomposition served from cache".to_string(),
            );
        }
        for note in &entry.build_notes {
            push_unique(notes, note.clone());
        }
        Ok((entry, flags))
    }

    /// The back-end stage 4 would pick for a circuit of this width — the
    /// exact `Auto` rule, with the exact notes; a pinned treewidth sweep
    /// over budget yields the refusal `evaluate` would return.
    fn predict_backend(
        &self,
        width: usize,
        notes: &mut Vec<String>,
    ) -> (BackendKind, String, Option<StucError>) {
        let budget = self.config.width_budget;
        match self.config.policy {
            BackendPolicy::Fixed(BackendKind::TreewidthWmc) => {
                let refusal = (width >= budget).then(|| {
                    StucError::from(WmcError::WidthTooLarge {
                        width,
                        limit: budget,
                    })
                });
                (
                    BackendKind::TreewidthWmc,
                    "policy pins the treewidth WMC sweep".to_string(),
                    refusal,
                )
            }
            BackendPolicy::Fixed(BackendKind::Dpll) => (
                BackendKind::Dpll,
                "policy pins the DPLL counter".to_string(),
                None,
            ),
            BackendPolicy::Fixed(BackendKind::Enumeration) => (
                BackendKind::Enumeration,
                "policy pins the enumeration baseline".to_string(),
                None,
            ),
            BackendPolicy::Auto => {
                if width < budget {
                    push_unique(
                        notes,
                        format!(
                            "lineage width estimate {width} within budget {budget}; treewidth WMC selected"
                        ),
                    );
                    (
                        BackendKind::TreewidthWmc,
                        format!("circuit width {width} fits the budget {budget}"),
                        None,
                    )
                } else {
                    push_unique(
                        notes,
                        format!(
                            "lineage width estimate {width} exceeds budget {budget}; DPLL selected"
                        ),
                    );
                    (
                        BackendKind::Dpll,
                        format!("circuit width {width} exceeds the budget {budget}"),
                        None,
                    )
                }
            }
            BackendPolicy::Fixed(BackendKind::SafePlan) => {
                unreachable!("safe-plan policy never reaches the circuit path")
            }
        }
    }

    fn circuit_explanation(
        &self,
        entry: &CompiledLineage,
        backend: BackendKind,
        decomposition_width: Option<usize>,
    ) -> CircuitExplanation {
        let width = entry.compiled.width();
        // Building the sweep plan is only worth it when the treewidth
        // sweep would actually use it; the plan is memoized on the shared
        // cache entry, so the evaluation that follows reuses it for free.
        let sweep = (backend == BackendKind::TreewidthWmc)
            .then(|| entry.compiled.sweep_plan())
            .flatten()
            .map(|plan| SweepPlanStats {
                nodes: plan.len(),
                table_entries: plan.table_entry_count(),
                arena_slots: plan.slot_count(),
            });
        CircuitExplanation {
            gates: entry.compiled.len(),
            cold_gates: entry.cold_gates,
            variables: entry.compiled.variables().len(),
            bags: entry.compiled.bag_count(),
            width,
            decomposition_width,
            width_budget: self.config.width_budget,
            within_budget: width < self.config.width_budget,
            sweep,
        }
    }

    fn cache_explanation(&self, flags: Option<CacheFlags>) -> CacheExplanation {
        let stats = self.cache_stats();
        let provenance = |cached: Option<bool>| match cached {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "untouched",
        };
        CacheExplanation {
            lineage: CacheSideExplanation {
                enabled: self.config.cache_lineages && self.config.cache_capacity > 0,
                provenance: provenance(flags.map(|f| f.lineage_cached)),
                hits: stats.lineages.hits,
                misses: stats.lineages.misses,
                races_lost: stats.lineages.races_lost,
                entries: stats.lineages.entries,
            },
            decomposition: CacheSideExplanation {
                enabled: self.config.cache_decompositions && self.config.cache_capacity > 0,
                provenance: provenance(flags.map(|f| f.decomposition_cached)),
                hits: stats.decompositions.hits,
                misses: stats.decompositions.misses,
                races_lost: stats.decompositions.races_lost,
                entries: stats.decompositions.entries,
            },
        }
    }
}

fn policy_name(policy: BackendPolicy) -> String {
    match policy {
        BackendPolicy::Auto => "auto".to_string(),
        BackendPolicy::Fixed(kind) => format!("fixed:{}", kind.name()),
    }
}

/// Fold two per-term circuit explanations the way the goal report folds
/// term reports: gates and table volumes summed, widths maxed.
fn fold_circuits(a: CircuitExplanation, b: CircuitExplanation) -> CircuitExplanation {
    CircuitExplanation {
        gates: a.gates + b.gates,
        cold_gates: a.cold_gates + b.cold_gates,
        variables: a.variables.max(b.variables),
        bags: a.bags + b.bags,
        width: a.width.max(b.width),
        decomposition_width: match (a.decomposition_width, b.decomposition_width) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        },
        width_budget: a.width_budget,
        within_budget: a.within_budget && b.within_budget,
        sweep: match (a.sweep, b.sweep) {
            (Some(x), Some(y)) => Some(SweepPlanStats {
                nodes: x.nodes + y.nodes,
                table_entries: x.table_entries + y.table_entries,
                arena_slots: x.arena_slots + y.arena_slots,
            }),
            (x, y) => x.or(y),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use stuc_data::tid::TidInstance;
    use stuc_query::cq::ConjunctiveQuery;

    fn two_fact_tid() -> TidInstance {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a"], 0.4);
        tid.add_fact_named("S", &["a", "b"], 0.5);
        tid
    }

    #[test]
    fn a_hierarchical_query_explains_as_the_safe_plan() {
        let tid = two_fact_tid();
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let engine = Engine::new();
        let explanation = engine.explain(&tid, &query).unwrap();
        assert_eq!(explanation.outcome, ExplainOutcome::SafePlan);
        assert_eq!(explanation.backend, BackendKind::SafePlan);
        assert_eq!(explanation.safe_plan.hierarchical, Some(true));
        assert_eq!(explanation.stages, vec!["safe-plan"]);
        assert_eq!(explanation.cache.lineage.provenance, "untouched");
        // And it agrees with the actual run.
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, explanation.backend);
        assert!(!report.lineage_cached);
    }

    #[test]
    fn a_self_join_explains_as_a_circuit_and_warms_the_cache() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "b"], 0.5);
        tid.add_fact_named("R", &["b", "c"], 0.5);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::new();
        let explanation = engine.explain(&tid, &query).unwrap();
        assert_eq!(explanation.outcome, ExplainOutcome::Circuit);
        assert_eq!(explanation.safe_plan.self_join_free, Some(false));
        assert_eq!(explanation.cache.lineage.provenance, "miss");
        let circuit = explanation.circuit.expect("circuit path has stats");
        assert!(circuit.gates > 0);
        assert!(circuit.within_budget);
        let sweep = circuit.sweep.expect("narrow circuit has a sweep plan");
        assert!(sweep.table_entries >= sweep.nodes);
        assert!(explanation
            .notes
            .iter()
            .any(|n| n.contains("safe plan refused (query has a self-join)")));

        // The explain warmed the cache: the evaluation and a re-explain
        // both see a hit, and the run agrees on route/backend/width.
        let report = engine.evaluate(&tid, &query).unwrap();
        assert!(report.lineage_cached);
        assert_eq!(report.backend, explanation.backend);
        assert_eq!(report.circuit_gates, circuit.gates);
        let again = engine.explain(&tid, &query).unwrap();
        assert_eq!(again.cache.lineage.provenance, "hit");
        assert_eq!(again.stages, vec!["cache-lookup", "sweep"]);
    }

    #[test]
    fn a_pinned_safe_plan_on_a_self_join_explains_the_refusal() {
        let mut tid = TidInstance::new();
        tid.add_fact_named("R", &["a", "b"], 0.5);
        tid.add_fact_named("R", &["b", "c"], 0.5);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = EngineBuilder::default()
            .backend(BackendKind::SafePlan)
            .build();
        let explanation = engine.explain(&tid, &query).unwrap();
        assert_eq!(explanation.outcome, ExplainOutcome::Refused);
        let refusal = explanation.refusal.expect("refused outcome carries text");
        let err = engine.evaluate(&tid, &query).unwrap_err();
        assert_eq!(refusal, err.to_string());
    }

    #[test]
    fn the_json_rendering_is_stable_and_escaped() {
        let tid = two_fact_tid();
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let json = Engine::new().explain(&tid, &query).unwrap().to_json();
        assert!(json.starts_with("{\"query\":\""));
        assert!(json.contains("\"outcome\":\"safe-plan\""));
        assert!(json.contains("\"stages\":[\"safe-plan\"]"));
        assert!(json.ends_with("]}"));
        // Deterministic: a second explain renders byte-identically.
        let again = Engine::new().explain(&tid, &query).unwrap().to_json();
        assert_eq!(json, again);
    }

    #[test]
    fn goal_explanations_mirror_the_text_front_end() {
        let tid = two_fact_tid();
        let engine = Engine::new();
        let src = "Both(x) :- R(x), S(x, y).  ?- Both(x).";
        let explanations = engine.explain_text(&tid, src).unwrap();
        assert_eq!(explanations.len(), 1);
        let explanation = &explanations[0];
        let route = explanation.route.as_ref().expect("goal has a route");
        let outcome = engine.evaluate_text(&tid, src).unwrap();
        let goal = &outcome.goals[0];
        assert_eq!(route.route, goal.decision.route);
        assert_eq!(explanation.backend, goal.report.backend);
        assert_eq!(
            explanation.lowering.as_deref(),
            Some(goal.report.notes[1].as_str())
        );
    }
}
