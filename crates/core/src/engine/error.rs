//! The single error type of the unified engine.
//!
//! Every per-crate error in the workspace converts into [`StucError`], so
//! `Engine::evaluate` (and everything built on top of it) has exactly one
//! error channel regardless of which representation or back-end did the
//! work. The pre-engine API surfaced seven incompatible error enums; callers
//! had to know which subsystem they were ultimately invoking to even spell
//! the return type.

use stuc_automata::courcelle::CourcelleError;
use stuc_automata::uncertain::UncertainTreeError;
use stuc_circuit::circuit::CircuitError;
use stuc_circuit::dpll::DpllError;
use stuc_circuit::enumeration::EnumerationError;
use stuc_circuit::semiring::ProvenanceError;
use stuc_circuit::weights::ProbabilityError;
use stuc_circuit::wmc::WmcError;
use stuc_data::formula::FormulaParseError;
use stuc_data::worlds::WorldError;
use stuc_graph::decomposition::DecompositionError;
use stuc_incr::UpdateError;
use stuc_infer::InferError;
use stuc_prxml::constraints::PrxmlConstraintError;
use stuc_prxml::queries::PrxmlQueryError;
use stuc_query::cq::QueryParseError;
use stuc_query::datalog::DatalogError;
use stuc_query::safe::SafePlanError;

stuc_errors::stuc_error! {
    /// The unified error enum of the STUC workspace: every per-crate error
    /// converts into it via `From`, and [`crate::engine::Engine`] returns
    /// nothing else.
    #[derive(Clone, PartialEq)]
    pub enum StucError {
        /// A tree decomposition was structurally invalid.
        Decomposition(DecompositionError),
        /// Circuit construction or evaluation failed.
        Circuit(CircuitError),
        /// The treewidth-based weighted model counter refused the circuit.
        Wmc(WmcError),
        /// The DPLL counter exhausted its branch budget.
        Dpll(DpllError),
        /// The enumeration baseline refused the circuit.
        Enumeration(EnumerationError),
        /// Semiring provenance was requested on a non-monotone circuit.
        Provenance(ProvenanceError),
        /// Possible-world enumeration failed.
        World(WorldError),
        /// An annotation formula could not be parsed.
        FormulaParse(FormulaParseError),
        /// A conjunctive query could not be parsed.
        QueryParse(QueryParseError),
        /// The extensional safe-plan baseline refused the query.
        SafePlan(SafePlanError),
        /// A Datalog program was rejected or diverged.
        Datalog(DatalogError),
        /// The Courcelle-style automaton run failed.
        Courcelle(CourcelleError),
        /// A run over an uncertain tree failed.
        UncertainTree(UncertainTreeError),
        /// PrXML query evaluation failed.
        PrxmlQuery(PrxmlQueryError),
        /// PrXML constraint conditioning failed.
        PrxmlConstraint(PrxmlConstraintError),
        /// The selected back-end cannot handle the prepared task.
        BackendUnsupported {
            /// Stable name of the back-end that refused.
            backend: &'static str,
            /// Why it cannot run the task.
            reason: String,
        },
        /// The representation carries no probability for some event, so no
        /// numeric back-end can run.
        MissingProbabilities {
            /// Stable name of the representation kind that lacks weights.
            representation: &'static str,
        },
        /// A probability offered at a mutation site was NaN or out of range.
        Probability(ProbabilityError),
        /// An incremental update delta was rejected.
        Update(UpdateError),
        /// A posterior-inference task (marginals, sampling,
        /// most-probable-world) could not run.
        Infer(InferError),
        /// The textual front-end rejected a program (syntax, safety, or
        /// lowering).
        Lang(stuc_lang::LangError),
        /// `evaluate_text` was handed a program with inline fact statements;
        /// the instance is supplied separately, so inline facts would be a
        /// second, conflicting source of data.
        TextFacts {
            /// How many fact statements the rejected program declares.
            count: usize,
        },
        /// The evaluation's wall-clock deadline passed before it finished.
        DeadlineExceeded {
            /// The checkpoint (pipeline stage) that observed the expiry.
            stage: &'static str,
        },
        /// The evaluation was cancelled (e.g. the requesting client
        /// disconnected) before it finished.
        Cancelled {
            /// The checkpoint (pipeline stage) that observed the flag.
            stage: &'static str,
        },
        /// A panic was caught and isolated (the engine stays usable); the
        /// message is the panic payload when it was a string.
        Internal {
            /// The captured panic payload (or a placeholder).
            message: String,
        },
    }
    display {
        Self::Decomposition(e) => "{e}",
        Self::Circuit(e) => "{e}",
        Self::Wmc(e) => "{e}",
        Self::Dpll(e) => "{e}",
        Self::Enumeration(e) => "{e}",
        Self::Provenance(e) => "{e}",
        Self::World(e) => "{e}",
        Self::FormulaParse(e) => "{e}",
        Self::QueryParse(e) => "{e}",
        Self::SafePlan(e) => "{e}",
        Self::Datalog(e) => "{e}",
        Self::Courcelle(e) => "{e}",
        Self::UncertainTree(e) => "{e}",
        Self::PrxmlQuery(e) => "{e}",
        Self::PrxmlConstraint(e) => "{e}",
        Self::BackendUnsupported { backend, reason } => "back-end {backend} cannot run here: {reason}",
        Self::MissingProbabilities { representation } => "{representation} carries no event probabilities",
        Self::Probability(e) => "{e}",
        Self::Update(e) => "{e}",
        Self::Infer(e) => "{e}",
        Self::Lang(e) => "{e}",
        Self::TextFacts { count } => "program declares {count} inline fact(s), but evaluate_text evaluates against the instance passed in; build an instance from the facts with stuc_lang::lower::program_instance instead",
        Self::DeadlineExceeded { stage } => "evaluation deadline exceeded during {stage}",
        Self::Cancelled { stage } => "evaluation cancelled during {stage}",
        Self::Internal { message } => "internal error (caught panic): {message}",
    }
    from {
        DecompositionError => Decomposition,
        CircuitError => Circuit,
        EnumerationError => Enumeration,
        ProvenanceError => Provenance,
        WorldError => World,
        FormulaParseError => FormulaParse,
        QueryParseError => QueryParse,
        SafePlanError => SafePlan,
        DatalogError => Datalog,
        CourcelleError => Courcelle,
        UncertainTreeError => UncertainTree,
        PrxmlQueryError => PrxmlQuery,
        PrxmlConstraintError => PrxmlConstraint,
        ProbabilityError => Probability,
        UpdateError => Update,
        InferError => Infer,
    }
}

// Budget trips are detected deep inside the back-ends (sweeps, DPLL, the
// chase, unfolding) and travel up as a `Budget` variant of the local error
// enum; the conversions below unwrap them into the two top-level variants so
// callers (and the HTTP layer) match on `DeadlineExceeded`/`Cancelled`
// without knowing which loop noticed.
impl From<stuc_fault::BudgetError> for StucError {
    fn from(e: stuc_fault::BudgetError) -> Self {
        match e {
            stuc_fault::BudgetError::DeadlineExceeded { stage } => {
                StucError::DeadlineExceeded { stage }
            }
            stuc_fault::BudgetError::Cancelled { stage } => StucError::Cancelled { stage },
        }
    }
}

impl From<WmcError> for StucError {
    fn from(e: WmcError) -> Self {
        match e {
            WmcError::Budget(b) => b.into(),
            other => StucError::Wmc(other),
        }
    }
}

impl From<DpllError> for StucError {
    fn from(e: DpllError) -> Self {
        match e {
            DpllError::Budget(b) => b.into(),
            other => StucError::Dpll(other),
        }
    }
}

// `LangError` is flattened on the way in, so an unsafe query caught during
// lowering surfaces identically whether analysis or lowering spotted it.
impl From<stuc_lang::LangError> for StucError {
    fn from(e: stuc_lang::LangError) -> Self {
        let flattened = e.flattened();
        if let stuc_lang::LangError::Lower(stuc_lang::lower::LowerError::Budget(b)) = flattened {
            return b.into();
        }
        StucError::Lang(flattened)
    }
}

// Errors from the extension crates (order, rules, conditioning) also funnel
// into `StucError`, but those enums are not simple single-field wraps in all
// cases, so the conversions are written out here rather than in the macro's
// `from` block.

impl From<stuc_order::porelation::OrderError> for StucError {
    fn from(e: stuc_order::porelation::OrderError) -> Self {
        StucError::BackendUnsupported {
            backend: "order",
            reason: e.to_string(),
        }
    }
}

impl From<stuc_order::numeric::NumericOrderError> for StucError {
    fn from(e: stuc_order::numeric::NumericOrderError) -> Self {
        StucError::BackendUnsupported {
            backend: "numeric-order",
            reason: e.to_string(),
        }
    }
}

impl From<stuc_rules::chase::ChaseError> for StucError {
    fn from(e: stuc_rules::chase::ChaseError) -> Self {
        if let stuc_rules::chase::ChaseError::Budget(b) = e {
            return b.into();
        }
        StucError::BackendUnsupported {
            backend: "chase",
            reason: e.to_string(),
        }
    }
}

impl From<stuc_rules::constraints::ConstraintError> for StucError {
    fn from(e: stuc_rules::constraints::ConstraintError) -> Self {
        StucError::BackendUnsupported {
            backend: "rule-constraints",
            reason: e.to_string(),
        }
    }
}

impl From<stuc_cond::conditioning::ConditioningError> for StucError {
    fn from(e: stuc_cond::conditioning::ConditioningError) -> Self {
        StucError::BackendUnsupported {
            backend: "conditioning",
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_wrapped_error_displays_its_cause() {
        let e: StucError = SafePlanError::NotHierarchical.into();
        assert_eq!(e.to_string(), "query is not hierarchical (unsafe)");
        let e: StucError = WmcError::WidthTooLarge {
            width: 30,
            limit: 22,
        }
        .into();
        assert!(e.to_string().contains("exceeds the configured limit 22"));
        let e = StucError::BackendUnsupported {
            backend: "safe-plan",
            reason: "task is a circuit".into(),
        };
        assert!(e.to_string().contains("safe-plan"));
    }
}
