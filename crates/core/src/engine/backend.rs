//! The [`Backend`] trait and its four implementations.
//!
//! A back-end answers one question — "with what probability is this query
//! true?" — for a prepared [`EvaluationTask`]. The engine normalises every
//! representation to one of two task shapes: an *extensional* task (the raw
//! TID + query, for the safe-plan back-end, which never builds a circuit)
//! or a *circuit* task (lineage + weights, for the counting back-ends).

use super::error::StucError;
use super::report::BackendKind;
use stuc_circuit::circuit::Circuit;
use stuc_circuit::compiled::CompiledCircuit;
use stuc_circuit::dpll::DpllCounter;
use stuc_circuit::enumeration::probability_by_enumeration;
use stuc_circuit::weights::Weights;
use stuc_circuit::wmc::TreewidthWmc;
use stuc_data::tid::TidInstance;
use stuc_graph::elimination::EliminationHeuristic;
use stuc_query::cq::ConjunctiveQuery;
use stuc_query::safe::safe_plan_probability;

/// A fully prepared evaluation task, normalised by the engine.
#[derive(Debug)]
pub enum EvaluationTask<'a> {
    /// The raw extensional inputs: only [`SafePlanBackend`] consumes these.
    Extensional {
        /// The tuple-independent instance to evaluate on.
        tid: &'a TidInstance,
        /// The (hierarchical, self-join-free) query to evaluate.
        query: &'a ConjunctiveQuery,
    },
    /// A lineage circuit and the probabilities of its variables: any
    /// counting back-end consumes these.
    Circuit {
        /// The lineage circuit of the query.
        lineage: &'a Circuit,
        /// Probabilities of the circuit's event variables.
        weights: &'a Weights,
    },
    /// A *compiled* lineage circuit (see
    /// [`stuc_circuit::compiled::CompiledCircuit`]) and the probabilities of
    /// its variables. Same semantics as [`EvaluationTask::Circuit`], but the
    /// treewidth back-end reuses the cached circuit-graph decomposition
    /// instead of rebuilding it — the engine's lineage cache and
    /// weight-only re-evaluation hand every counting back-end this shape.
    Compiled {
        /// The compiled lineage circuit of the query.
        lineage: &'a CompiledCircuit,
        /// Probabilities of the circuit's event variables.
        weights: &'a Weights,
    },
}

/// One probability-computation strategy.
pub trait Backend: std::fmt::Debug {
    /// Which strategy this is (named in reports and errors).
    fn kind(&self) -> BackendKind;

    /// Whether this back-end can run the given task shape at all. (A `true`
    /// here does not guarantee success — e.g. the safe-plan back-end still
    /// refuses non-hierarchical queries at [`Backend::solve`] time.)
    fn supports(&self, task: &EvaluationTask<'_>) -> bool;

    /// Computes the probability, or explains why it cannot.
    fn solve(&self, task: &EvaluationTask<'_>) -> Result<f64, StucError>;
}

/// Dalvi–Suciu extensional evaluation: independent joins and projects over
/// the relational plan. Linear-ish, but only for hierarchical self-join-free
/// CQs on TID instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct SafePlanBackend;

impl Backend for SafePlanBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SafePlan
    }

    fn supports(&self, task: &EvaluationTask<'_>) -> bool {
        matches!(task, EvaluationTask::Extensional { .. })
    }

    fn solve(&self, task: &EvaluationTask<'_>) -> Result<f64, StucError> {
        match task {
            EvaluationTask::Extensional { tid, query } => Ok(safe_plan_probability(tid, query)?),
            EvaluationTask::Circuit { .. } | EvaluationTask::Compiled { .. } => {
                Err(StucError::BackendUnsupported {
                    backend: self.kind().name(),
                    reason: "safe-plan evaluation needs the raw TID instance, not a circuit".into(),
                })
            }
        }
    }
}

/// The paper's flagship back-end: message passing over a tree decomposition
/// of the lineage circuit. Exact, and linear-time once the width is fixed.
#[derive(Debug, Clone, Copy)]
pub struct TreewidthWmcBackend {
    /// Heuristic used to decompose the circuit graph.
    pub heuristic: EliminationHeuristic,
    /// Bag-size budget: wider circuits are refused (so Auto can fall back).
    pub max_bag_size: usize,
}

impl Default for TreewidthWmcBackend {
    fn default() -> Self {
        TreewidthWmcBackend {
            heuristic: EliminationHeuristic::MinDegree,
            max_bag_size: 22,
        }
    }
}

impl TreewidthWmcBackend {
    fn counter(&self) -> TreewidthWmc {
        TreewidthWmc {
            heuristic: self.heuristic,
            max_bag_size: self.max_bag_size,
        }
    }

    /// Width of the decomposition the counter would use on this circuit.
    pub fn estimated_width(&self, circuit: &Circuit) -> usize {
        self.counter().estimated_width(circuit)
    }
}

impl Backend for TreewidthWmcBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TreewidthWmc
    }

    fn supports(&self, task: &EvaluationTask<'_>) -> bool {
        matches!(
            task,
            EvaluationTask::Circuit { .. } | EvaluationTask::Compiled { .. }
        )
    }

    fn solve(&self, task: &EvaluationTask<'_>) -> Result<f64, StucError> {
        match task {
            EvaluationTask::Circuit { lineage, weights } => {
                Ok(self.counter().probability(lineage, weights)?)
            }
            EvaluationTask::Compiled { lineage, weights } => {
                // The compiled circuit already holds the (nice) decomposition
                // of its circuit graph: only message passing runs here.
                Ok(lineage.probability(weights, self.max_bag_size)?)
            }
            EvaluationTask::Extensional { .. } => Err(StucError::BackendUnsupported {
                backend: self.kind().name(),
                reason: "treewidth WMC runs on lineage circuits; build one first".into(),
            }),
        }
    }
}

/// Shannon expansion with constant propagation and memoisation. No width
/// assumption; the branch budget bounds runaway instances.
#[derive(Debug, Clone)]
pub struct DpllBackend {
    /// Maximum recursive branch steps before giving up.
    pub max_branches: u64,
}

impl Default for DpllBackend {
    fn default() -> Self {
        DpllBackend {
            max_branches: DpllCounter::default().max_branches,
        }
    }
}

impl Backend for DpllBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Dpll
    }

    fn supports(&self, task: &EvaluationTask<'_>) -> bool {
        matches!(
            task,
            EvaluationTask::Circuit { .. } | EvaluationTask::Compiled { .. }
        )
    }

    fn solve(&self, task: &EvaluationTask<'_>) -> Result<f64, StucError> {
        let counter = DpllCounter {
            max_branches: self.max_branches,
        };
        match task {
            EvaluationTask::Circuit { lineage, weights } => {
                Ok(counter.probability(lineage, weights)?)
            }
            EvaluationTask::Compiled { lineage, weights } => {
                Ok(counter.probability(lineage.source(), weights)?)
            }
            EvaluationTask::Extensional { .. } => Err(StucError::BackendUnsupported {
                backend: self.kind().name(),
                reason: "DPLL runs on lineage circuits; build one first".into(),
            }),
        }
    }
}

/// Ground-truth possible-world enumeration (exponential in the variable
/// count; refused above `stuc_circuit::enumeration::ENUMERATION_LIMIT`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerationBackend;

impl Backend for EnumerationBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Enumeration
    }

    fn supports(&self, task: &EvaluationTask<'_>) -> bool {
        matches!(
            task,
            EvaluationTask::Circuit { .. } | EvaluationTask::Compiled { .. }
        )
    }

    fn solve(&self, task: &EvaluationTask<'_>) -> Result<f64, StucError> {
        match task {
            EvaluationTask::Circuit { lineage, weights } => {
                Ok(probability_by_enumeration(lineage, weights)?)
            }
            EvaluationTask::Compiled { lineage, weights } => {
                Ok(probability_by_enumeration(lineage.source(), weights)?)
            }
            EvaluationTask::Extensional { .. } => Err(StucError::BackendUnsupported {
                backend: self.kind().name(),
                reason: "enumeration runs on lineage circuits; build one first".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stuc_circuit::circuit::VarId;

    fn single_var_task() -> (Circuit, Weights) {
        let mut circuit = Circuit::new();
        let g = circuit.add_input(VarId(0));
        circuit.set_output(g);
        let mut weights = Weights::new();
        weights.set(VarId(0), 0.3);
        (circuit, weights)
    }

    #[test]
    fn circuit_backends_agree_on_a_single_variable() {
        let (circuit, weights) = single_var_task();
        let task = EvaluationTask::Circuit {
            lineage: &circuit,
            weights: &weights,
        };
        for backend in [
            Box::new(TreewidthWmcBackend::default()) as Box<dyn Backend>,
            Box::new(DpllBackend::default()),
            Box::new(EnumerationBackend),
        ] {
            assert!(backend.supports(&task));
            let p = backend.solve(&task).unwrap();
            assert!((p - 0.3).abs() < 1e-12, "{} got {p}", backend.kind());
        }
    }

    #[test]
    fn circuit_backends_agree_on_compiled_tasks() {
        let (circuit, weights) = single_var_task();
        let compiled = CompiledCircuit::compile(
            std::sync::Arc::new(circuit),
            EliminationHeuristic::MinDegree,
        )
        .unwrap();
        let task = EvaluationTask::Compiled {
            lineage: &compiled,
            weights: &weights,
        };
        assert!(!SafePlanBackend.supports(&task));
        assert!(SafePlanBackend.solve(&task).is_err());
        for backend in [
            Box::new(TreewidthWmcBackend::default()) as Box<dyn Backend>,
            Box::new(DpllBackend::default()),
            Box::new(EnumerationBackend),
        ] {
            assert!(backend.supports(&task));
            let p = backend.solve(&task).unwrap();
            assert!((p - 0.3).abs() < 1e-12, "{} got {p}", backend.kind());
        }
    }

    #[test]
    fn safe_plan_rejects_circuit_tasks() {
        let (circuit, weights) = single_var_task();
        let task = EvaluationTask::Circuit {
            lineage: &circuit,
            weights: &weights,
        };
        assert!(!SafePlanBackend.supports(&task));
        assert!(matches!(
            SafePlanBackend.solve(&task),
            Err(StucError::BackendUnsupported {
                backend: "safe-plan",
                ..
            })
        ));
    }

    #[test]
    fn circuit_backends_reject_extensional_tasks() {
        let tid = TidInstance::new();
        let query = ConjunctiveQuery::parse("R(x)").unwrap();
        let task = EvaluationTask::Extensional {
            tid: &tid,
            query: &query,
        };
        assert!(SafePlanBackend.supports(&task));
        for backend in [
            Box::new(TreewidthWmcBackend::default()) as Box<dyn Backend>,
            Box::new(DpllBackend::default()),
            Box::new(EnumerationBackend),
        ] {
            assert!(!backend.supports(&task));
            assert!(backend.solve(&task).is_err());
        }
    }
}
