//! # The unified STUC engine
//!
//! One façade over every uncertain representation and every probability
//! back-end in the workspace. The paper's claim is that a *single*
//! structural pipeline — instance → tree decomposition → automaton/lineage →
//! circuit → weighted model counting — uniformly covers tuple-independent
//! instances, c-/pc-/pcc-instances and probabilistic XML; this module is
//! that uniformity as an API:
//!
//! * [`Representation`] — what the engine needs from a representation
//!   (structure graph, lineage constructor, weights, identity). Implemented
//!   by `TidInstance`, `CInstance`, `PcInstance`, `PccInstance` and
//!   `PrXmlDocument`.
//! * [`Backend`] — one probability strategy. Four implementations:
//!   [`SafePlanBackend`], [`TreewidthWmcBackend`], [`DpllBackend`],
//!   [`EnumerationBackend`].
//! * [`Engine`] / [`EngineBuilder`] — configuration (heuristic, width
//!   budget, back-end policy) plus a decomposition cache keyed by instance
//!   fingerprint. [`Engine::evaluate`] is the one public entry point; it
//!   returns an [`EvaluationReport`] naming the back-end that actually ran,
//!   the decomposition width, the lineage gate count and the wall time.
//! * [`StucError`] — the single error enum every per-crate error converts
//!   into.
//!
//! ## Automatic strategy selection
//!
//! Under [`BackendPolicy::Auto`] (the default), [`Engine::evaluate`]:
//!
//! 1. tries the **safe plan** when the representation offers an extensional
//!    fast path (TID instances) and the query is hierarchical and
//!    self-join-free — no circuit is built at all;
//! 2. otherwise builds the lineage circuit (decomposition-guided automaton
//!    run for TIDs, match enumeration or shared-annotation extension for the
//!    other formalisms) and runs **treewidth WMC** when the circuit's
//!    estimated width fits the budget;
//! 3. otherwise falls back to **DPLL**, which assumes nothing about width.
//!
//! Every decision is recorded in [`EvaluationReport::notes`].
//!
//! ```
//! use stuc_core::engine::Engine;
//! use stuc_data::tid::TidInstance;
//! use stuc_query::cq::ConjunctiveQuery;
//!
//! let mut tid = TidInstance::new();
//! tid.add_fact_named("R", &["a", "b"], 0.5);
//! tid.add_fact_named("R", &["b", "c"], 0.5);
//! let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
//!
//! let engine = Engine::new();
//! let report = engine.evaluate(&tid, &query).unwrap();
//! assert!((report.probability - 0.25).abs() < 1e-9);
//! println!("computed by {}", report.backend_name());
//! ```

pub mod backend;
pub mod error;
pub mod report;
pub mod representation;

pub use backend::{
    Backend, DpllBackend, EnumerationBackend, EvaluationTask, SafePlanBackend, TreewidthWmcBackend,
};
pub use error::StucError;
pub use report::{BackendKind, BackendPolicy, EvaluationReport};
pub use representation::{ExtensionalInput, LineageOutcome, ReprKind, Representation};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use stuc_circuit::circuit::Circuit;
use stuc_graph::elimination::{decompose_with_heuristic, EliminationHeuristic};
use stuc_graph::TreeDecomposition;
use stuc_query::safe::is_hierarchical;

/// Builder for [`Engine`]: heuristic, width budget, back-end policy and
/// cache behaviour.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    heuristic: EliminationHeuristic,
    width_budget: usize,
    policy: BackendPolicy,
    cache_decompositions: bool,
    dpll_max_branches: u64,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            heuristic: EliminationHeuristic::MinDegree,
            width_budget: 22,
            policy: BackendPolicy::Auto,
            cache_decompositions: true,
            dpll_max_branches: DpllBackend::default().max_branches,
        }
    }
}

impl EngineBuilder {
    /// Elimination heuristic for structure and circuit decompositions.
    pub fn heuristic(mut self, heuristic: EliminationHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Bag-size budget for the treewidth back-end; wider circuits make Auto
    /// fall back to DPLL (a fixed treewidth policy fails instead).
    pub fn width_budget(mut self, budget: usize) -> Self {
        self.width_budget = budget;
        self
    }

    /// Back-end selection policy (default: [`BackendPolicy::Auto`]).
    pub fn policy(mut self, policy: BackendPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(BackendPolicy::Fixed(kind))`.
    pub fn backend(self, kind: BackendKind) -> Self {
        self.policy(BackendPolicy::Fixed(kind))
    }

    /// Branch budget of the DPLL back-end.
    pub fn dpll_max_branches(mut self, budget: u64) -> Self {
        self.dpll_max_branches = budget;
        self
    }

    /// Disables the fingerprint-keyed decomposition cache.
    pub fn without_decomposition_cache(mut self) -> Self {
        self.cache_decompositions = false;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Engine {
        Engine {
            config: self,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

/// The unified evaluation engine: one `evaluate` call over every uncertain
/// representation, with pluggable and auto-selected back-ends. See the
/// [module docs](self) for the selection rules.
///
/// The engine is `Sync`: the decomposition cache is behind a mutex, so one
/// engine can be shared across threads serving many queries against the
/// same instances.
#[derive(Debug)]
pub struct Engine {
    config: EngineBuilder,
    /// Decompositions of structure graphs, keyed by representation
    /// fingerprint + heuristic. Entries are validated against the structure
    /// graph before reuse, so a fingerprint collision can never corrupt a
    /// result — it only costs a recomputation.
    cache: Mutex<HashMap<(u64, EliminationHeuristic), Arc<TreeDecomposition>>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default configuration (min-degree heuristic, width
    /// budget 22, automatic back-end selection, caching on).
    pub fn new() -> Engine {
        EngineBuilder::default().build()
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The configured back-end policy.
    pub fn policy(&self) -> BackendPolicy {
        self.config.policy
    }

    /// Number of cached decompositions.
    pub fn cached_decompositions(&self) -> usize {
        self.cache.lock().map(|c| c.len()).unwrap_or(0)
    }

    /// Drops all cached decompositions.
    pub fn clear_cache(&self) {
        if let Ok(mut cache) = self.cache.lock() {
            cache.clear();
        }
    }

    /// Evaluates a Boolean query on any [`Representation`], returning the
    /// probability together with full provenance of how it was computed.
    ///
    /// This is the one public entry point of the STUC system: TID,
    /// c-/pc-/pcc-instances and PrXML documents all go through here, with
    /// the back-end picked by the configured [`BackendPolicy`].
    pub fn evaluate<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<EvaluationReport, StucError> {
        let started = Instant::now();
        let mut notes = Vec::new();

        // Stage 1: the extensional fast path, which skips decomposition and
        // circuit construction entirely.
        if let Some(extensional) = representation.extensional(query) {
            match self.config.policy {
                BackendPolicy::Fixed(BackendKind::SafePlan) => {
                    let task = EvaluationTask::Extensional {
                        tid: extensional.tid,
                        query: extensional.query,
                    };
                    let probability = SafePlanBackend.solve(&task)?;
                    return Ok(self.report(
                        probability,
                        BackendKind::SafePlan,
                        None,
                        0,
                        representation.fact_count(),
                        started,
                        false,
                        notes,
                    ));
                }
                BackendPolicy::Auto => {
                    if is_hierarchical(extensional.query) {
                        let task = EvaluationTask::Extensional {
                            tid: extensional.tid,
                            query: extensional.query,
                        };
                        match SafePlanBackend.solve(&task) {
                            Ok(probability) => {
                                notes.push(
                                    "query is hierarchical; extensional safe plan selected"
                                        .to_string(),
                                );
                                return Ok(self.report(
                                    probability,
                                    BackendKind::SafePlan,
                                    None,
                                    0,
                                    representation.fact_count(),
                                    started,
                                    false,
                                    notes,
                                ));
                            }
                            Err(refusal) => {
                                notes.push(format!("safe plan refused ({refusal}); using lineage"))
                            }
                        }
                    } else {
                        notes.push(
                            "query is not hierarchical; extensional safe plan skipped".to_string(),
                        );
                    }
                }
                BackendPolicy::Fixed(_) => {}
            }
        } else if self.config.policy == BackendPolicy::Fixed(BackendKind::SafePlan) {
            return Err(StucError::BackendUnsupported {
                backend: BackendKind::SafePlan.name(),
                reason: format!(
                    "{} offers no extensional evaluation; only TID instances do",
                    representation.kind()
                ),
            });
        }

        // Stage 2: decompose the structure graph (cached by fingerprint).
        let (decomposition, cached) = self.decomposition_for(representation);
        if cached {
            notes.push("structure decomposition served from cache".to_string());
        }

        // Stage 3: build the lineage circuit and collect the weights.
        let outcome = representation.lineage(query, &decomposition)?;
        if let Some(note) = outcome.note {
            notes.push(note);
        }
        let weights = representation.weights()?;
        let lineage = &outcome.circuit;

        // Stage 4: pick and run a counting back-end.
        let task = EvaluationTask::Circuit {
            lineage,
            weights: &weights,
        };
        let treewidth = TreewidthWmcBackend {
            heuristic: self.config.heuristic,
            max_bag_size: self.config.width_budget,
        };
        let chosen: Box<dyn Backend> = match self.config.policy {
            BackendPolicy::Fixed(BackendKind::TreewidthWmc) => Box::new(treewidth),
            BackendPolicy::Fixed(BackendKind::Dpll) => Box::new(DpllBackend {
                max_branches: self.config.dpll_max_branches,
            }),
            BackendPolicy::Fixed(BackendKind::Enumeration) => Box::new(EnumerationBackend),
            BackendPolicy::Fixed(BackendKind::SafePlan) => unreachable!("handled in stage 1"),
            BackendPolicy::Auto => {
                // `estimated_width` reports decomposition *width*; the WMC
                // back-end refuses on *bag size* (width + 1), so the strict
                // comparison here, or Auto would pick a back-end that refuses.
                let estimated = treewidth.estimated_width(lineage);
                if estimated < self.config.width_budget {
                    notes.push(format!(
                        "lineage width estimate {estimated} within budget {}; treewidth WMC selected",
                        self.config.width_budget
                    ));
                    Box::new(treewidth)
                } else {
                    notes.push(format!(
                        "lineage width estimate {estimated} exceeds budget {}; DPLL selected",
                        self.config.width_budget
                    ));
                    Box::new(DpllBackend {
                        max_branches: self.config.dpll_max_branches,
                    })
                }
            }
        };
        let probability = chosen.solve(&task)?;
        Ok(self.report(
            probability,
            chosen.kind(),
            Some(decomposition.width()),
            lineage.len(),
            representation.fact_count(),
            started,
            cached,
            notes,
        ))
    }

    /// Builds (or fetches) the lineage circuit of a query without computing
    /// its probability — for callers that want to inspect, transform or
    /// re-weight the circuit themselves.
    pub fn lineage<R: Representation + ?Sized>(
        &self,
        representation: &R,
        query: &R::Query,
    ) -> Result<Circuit, StucError> {
        let (decomposition, _) = self.decomposition_for(representation);
        Ok(representation.lineage(query, &decomposition)?.circuit)
    }

    /// The tree decomposition of the representation's structure graph,
    /// served from the cache when the fingerprint matches a prior call.
    ///
    /// A cache hit amortizes the decomposition itself (the superlinear
    /// part), but still pays two linear passes per call: the `Debug`-based
    /// fingerprint and the structure-graph rebuild for collision-safe
    /// validation. Making hits O(1) needs an incremental content hash on
    /// each representation and a graph cached alongside the decomposition —
    /// planned for the batching/caching PRs that build on this engine.
    pub fn decomposition_for<R: Representation + ?Sized>(
        &self,
        representation: &R,
    ) -> (Arc<TreeDecomposition>, bool) {
        let graph = representation.structure_graph();
        let key = (representation.fingerprint(), self.config.heuristic);
        if self.config.cache_decompositions {
            if let Ok(cache) = self.cache.lock() {
                if let Some(cached) = cache.get(&key) {
                    // Fingerprints are not cryptographic: re-validate the
                    // cached decomposition against today's graph so a
                    // collision degrades to a recomputation, never to a
                    // wrong width or an invalid lineage run.
                    if cached.validate(&graph).is_ok() {
                        return (Arc::clone(cached), true);
                    }
                }
            }
        }
        let decomposition = Arc::new(decompose_with_heuristic(&graph, self.config.heuristic));
        if self.config.cache_decompositions {
            if let Ok(mut cache) = self.cache.lock() {
                cache.insert(key, Arc::clone(&decomposition));
            }
        }
        (decomposition, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        probability: f64,
        backend: BackendKind,
        decomposition_width: Option<usize>,
        circuit_gates: usize,
        fact_count: usize,
        started: Instant,
        decomposition_cached: bool,
        notes: Vec<String>,
    ) -> EvaluationReport {
        EvaluationReport {
            probability,
            backend,
            decomposition_width,
            circuit_gates,
            fact_count,
            wall_time: started.elapsed(),
            decomposition_cached,
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use stuc_query::cq::ConjunctiveQuery;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn auto_uses_safe_plan_for_hierarchical_queries() {
        let tid = workloads::rst_star_tid(4, 0.4, 3);
        let query = ConjunctiveQuery::parse("R(x), S(x, y)").unwrap();
        let engine = Engine::new();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::SafePlan);
        assert_eq!(report.decomposition_width, None);
        assert_eq!(report.circuit_gates, 0);
        // Cross-check against a forced circuit back-end.
        let forced = Engine::builder().backend(BackendKind::Dpll).build();
        let reference = forced.evaluate(&tid, &query).unwrap();
        assert_eq!(reference.backend, BackendKind::Dpll);
        assert!(close(report.probability, reference.probability));
    }

    #[test]
    fn auto_uses_treewidth_for_unsafe_queries_on_narrow_data() {
        let tid = workloads::rst_path_tid(6, 0.5, 5);
        let query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let engine = Engine::new();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::TreewidthWmc);
        assert!(report.decomposition_width.unwrap() <= 2);
        assert!(report.circuit_gates > 0);
        let brute = Engine::builder()
            .backend(BackendKind::Enumeration)
            .build()
            .evaluate(&tid, &query)
            .unwrap();
        assert!(close(report.probability, brute.probability));
    }

    #[test]
    fn auto_falls_back_to_dpll_when_width_budget_is_tiny() {
        let tid = workloads::path_tid(8, 0.5, 11);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::builder().width_budget(1).build();
        let report = engine.evaluate(&tid, &query).unwrap();
        assert_eq!(report.backend, BackendKind::Dpll);
        assert!(report.notes.iter().any(|n| n.contains("DPLL selected")));
        let reference = Engine::new().evaluate(&tid, &query).unwrap();
        assert!(close(report.probability, reference.probability));
    }

    #[test]
    fn fixed_safe_plan_refuses_unsafe_queries_and_non_tid() {
        let tid = workloads::rst_path_tid(4, 0.5, 5);
        let unsafe_query = ConjunctiveQuery::parse("R(x), S(x, y), T(y)").unwrap();
        let engine = Engine::builder().backend(BackendKind::SafePlan).build();
        assert!(matches!(
            engine.evaluate(&tid, &unsafe_query),
            Err(StucError::SafePlan(_))
        ));
        let pcc = workloads::contributor_pcc(4, 2, 0.8, 0.9, 21);
        let query = ConjunctiveQuery::parse("Claim(x, y)").unwrap();
        assert!(matches!(
            engine.evaluate(&pcc, &query),
            Err(StucError::BackendUnsupported { .. })
        ));
    }

    #[test]
    fn decomposition_cache_hits_on_repeat_evaluations() {
        let tid = workloads::path_tid(10, 0.5, 7);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let engine = Engine::builder().backend(BackendKind::TreewidthWmc).build();
        let first = engine.evaluate(&tid, &query).unwrap();
        assert!(!first.decomposition_cached);
        assert_eq!(engine.cached_decompositions(), 1);
        let second = engine.evaluate(&tid, &query).unwrap();
        assert!(second.decomposition_cached);
        assert!(close(first.probability, second.probability));
        engine.clear_cache();
        assert_eq!(engine.cached_decompositions(), 0);
    }

    #[test]
    fn engine_is_sync_and_shareable_across_threads() {
        let engine = std::sync::Arc::new(Engine::new());
        let tid = std::sync::Arc::new(workloads::path_tid(8, 0.5, 13));
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let baseline = engine.evaluate(&*tid, &query).unwrap().probability;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let tid = std::sync::Arc::clone(&tid);
                let query = query.clone();
                std::thread::spawn(move || engine.evaluate(&*tid, &query).unwrap().probability)
            })
            .collect();
        for handle in handles {
            assert!(close(handle.join().unwrap(), baseline));
        }
    }

    #[test]
    fn wall_time_and_fact_count_are_populated() {
        let tid = workloads::path_tid(6, 0.3, 2);
        let query = ConjunctiveQuery::parse("R(x, y), R(y, z)").unwrap();
        let report = Engine::new().evaluate(&tid, &query).unwrap();
        assert_eq!(report.fact_count, 6);
        assert!(report.wall_time.as_nanos() > 0);
        assert!(!report.notes.is_empty());
    }
}
